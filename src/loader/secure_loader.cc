// Copyright 2026 The TrustLite Reproduction Authors.

#include "src/loader/secure_loader.h"

#include <algorithm>

#include "src/common/bytes.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"
#include "src/loader/system_image.h"
#include "src/trustlet/frame.h"

namespace trustlite {

namespace {

// Upper bound on a single record we are willing to parse (sanity check
// against corrupted PROM contents).
constexpr uint32_t kMaxRecordSize = 1u << 20;

}  // namespace

const LoadedTrustlet* LoadReport::FindById(uint32_t id) const {
  for (const LoadedTrustlet& t : trustlets) {
    if (t.meta.id == id && !t.meta.unprotected) {
      return &t;
    }
  }
  return nullptr;
}

SecureLoader::SecureLoader(Bus* bus, EaMpu* mpu, const LoaderConfig& config)
    : bus_(bus), mpu_(mpu), config_(config) {}

Result<FirmwareUpdateReport> SecureLoader::ApplyUpdate(
    const FirmwareImage& image, const FirmwareUpdateTarget& target) {
  if (config_.device_key.size() != 32) {
    return FailedPrecondition(
        "update: loader has no 32-byte device key provisioned");
  }
  std::array<uint8_t, 32> key{};
  std::copy(config_.device_key.begin(), config_.device_key.end(), key.begin());
  FirmwareUpdateTarget resolved = target;
  if (resolved.table_addr == 0) {
    resolved.table_addr = config_.table_addr;
  }
  return ApplyFirmwareUpdate(bus_, key, image, resolved);
}

Status SecureLoader::CommitUpdate(uint32_t version) {
  return CommitFirmwareUpdate(bus_, version);
}

Status SecureLoader::WriteMpu(uint32_t offset, uint32_t value) {
  if (!bus_->HostWriteWord(mpu_->base() + offset, value)) {
    return Internal("MPU register write failed at offset " + Hex32(offset));
  }
  ++words_moved_;
  return OkStatus();
}

Result<int> SecureLoader::AllocRegion(uint32_t base, uint32_t end,
                                      uint32_t attr, uint32_t sp_slot,
                                      LoadReport* report) {
  if (next_region_ >= mpu_->num_regions()) {
    return ResourceExhausted("out of MPU protection regions (" +
                             std::to_string(mpu_->num_regions()) + ")");
  }
  const int index = next_region_++;
  const uint32_t reg_base =
      kMpuRegionBank + static_cast<uint32_t>(index) * kMpuRegionStride;
  // The 3 writes per region of Sec. 5.3: start, end, permission/attributes.
  TL_RETURN_IF_ERROR(WriteMpu(reg_base + 0, base));
  TL_RETURN_IF_ERROR(WriteMpu(reg_base + 4, end));
  TL_RETURN_IF_ERROR(WriteMpu(reg_base + 8, attr));
  // The secure exception engine adds one SP-slot register per code region.
  if (config_.secure_exceptions && sp_slot != 0) {
    TL_RETURN_IF_ERROR(WriteMpu(reg_base + 12, sp_slot));
  }
  report->regions_used = next_region_;
  return index;
}

Status SecureLoader::AddRule(uint32_t subject, uint32_t object, bool r, bool w,
                             bool x, LoadReport* report) {
  if (next_rule_ >= mpu_->num_rules()) {
    return ResourceExhausted("out of MPU rule slots (" +
                             std::to_string(mpu_->num_rules()) + ")");
  }
  const int index = next_rule_++;
  TL_RETURN_IF_ERROR(WriteMpu(kMpuRuleBank + static_cast<uint32_t>(index) * 4,
                              EncodeMpuRule(subject, object, r, w, x)));
  report->rules_used = next_rule_;
  return OkStatus();
}

Status SecureLoader::LoadRecord(const TrustletMeta& meta, LoadReport* report) {
  // Secure Boot verification (optional instantiation, Sec. 3.6).
  if (config_.secure_boot) {
    if (meta.is_signed) {
      const Sha256Digest expected =
          SystemImage::ComputeSignature(meta, config_.device_key);
      if (!ConstantTimeEqual(expected.data(), meta.signature.data(),
                             expected.size())) {
        return PermissionDenied("secure boot: bad signature for trustlet '" +
                                TrustletIdName(meta.id) + "'");
      }
    } else if (config_.require_signatures && !meta.unprotected) {
      return PermissionDenied("secure boot: unsigned trustlet '" +
                              TrustletIdName(meta.id) + "'");
    }
  }

  // Copy code from PROM into its RAM home.
  if (!bus_->HostWriteBytes(meta.code_addr, meta.code)) {
    return Internal("failed to place code for '" + TrustletIdName(meta.id) +
                    "' at " + Hex32(meta.code_addr));
  }
  words_moved_ += (meta.code.size() + 3) / 4;

  // Zero the data region (clearing only memory that is being re-allocated —
  // the fast-startup property of Sec. 6).
  if (meta.data_size > 0) {
    const std::vector<uint8_t> zeros(meta.data_size, 0);
    if (!bus_->HostWriteBytes(meta.data_addr, zeros)) {
      return Internal("failed to clear data region for '" +
                      TrustletIdName(meta.id) + "'");
    }
    words_moved_ += (meta.data_size + 3) / 4;
  }

  LoadedTrustlet loaded;
  loaded.meta = meta;
  if (meta.unprotected) {
    report->trustlets.push_back(std::move(loaded));
    return OkStatus();
  }

  // Assign the Trustlet Table row and patch the slot pointer into the code.
  TrustletTableView table(bus_, config_.table_addr);
  loaded.tt_index = static_cast<int>(
      std::count_if(report->trustlets.begin(), report->trustlets.end(),
                    [](const LoadedTrustlet& t) { return !t.meta.unprotected; }));
  loaded.tt_row_addr = table.RowAddress(loaded.tt_index);
  loaded.sp_slot_addr = table.SavedSpAddress(loaded.tt_index);
  if (meta.sp_slot_patch_offset != kNoSpSlotPatch) {
    if (!bus_->HostWriteWord(meta.code_addr + meta.sp_slot_patch_offset,
                             loaded.sp_slot_addr)) {
      return Internal("failed to patch SP slot pointer");
    }
    ++words_moved_;
  }

  // Fabricate the initial saved-state frame so the first continue() resumes
  // at tl_main (static initialization, Fig. 5 step 2b). The OS is launched
  // directly, so its row stores the handler-stack base instead.
  TrustletTableRow row;
  row.id = meta.id;
  row.code_base = meta.code_addr;
  row.code_end = meta.code_end();
  row.data_base = meta.data_addr;
  row.data_end = meta.data_end();
  row.entry = meta.code_addr;
  row.flags = meta.is_os ? kTtFlagOs : 0;
  if (meta.is_os) {
    row.saved_sp = meta.initial_sp();
  } else {
    const uint32_t frame_base = meta.initial_sp() - kFrameSize;
    for (uint32_t off = 0; off < kFrameSize; off += 4) {
      uint32_t value = 0;
      if (off == kFrameOffsetIp) {
        value = meta.code_addr + meta.start_offset;
      } else if (off == kFrameOffsetFlags) {
        value = kInitialTrustletFlags;
      }
      if (!bus_->HostWriteWord(frame_base + off, value)) {
        return Internal("failed to write initial frame");
      }
      ++words_moved_;
    }
    row.saved_sp = frame_base;
  }

  // Measurement (root of trust for attestation, Sec. 3.6). Reading the code
  // back from RAM measures what will actually run.
  if (meta.measure || config_.measure_all) {
    std::vector<uint8_t> placed;
    if (!bus_->HostReadBytes(meta.code_addr,
                             static_cast<uint32_t>(meta.code.size()),
                             &placed)) {
      return Internal("failed to read back code for measurement");
    }
    row.measurement = Sha256Hash(placed);
    words_moved_ += (placed.size() + 3) / 4 + 16;  // Hash engine cost.
  }

  if (!table.WriteRow(loaded.tt_index, row)) {
    return Internal("failed to write Trustlet Table row");
  }
  words_moved_ += kTrustletTableRowSize / 4;

  if (meta.is_os) {
    report->os_id = meta.id;
    report->os_entry = meta.code_addr + meta.start_offset;
    report->os_sp = meta.initial_sp();
  }
  report->trustlets.push_back(std::move(loaded));
  return OkStatus();
}

Status SecureLoader::ProgramMpu(LoadReport* report) {
  TrustletTableView table(bus_, config_.table_addr);

  // Pass A: region descriptors.
  for (LoadedTrustlet& t : report->trustlets) {
    if (t.meta.unprotected) {
      continue;
    }
    uint32_t code_attr = kMpuAttrEnable | kMpuAttrCode;
    if (t.meta.is_os) {
      code_attr |= kMpuAttrOs;
    }
    Result<int> code_region = AllocRegion(t.meta.code_addr, t.meta.code_end(),
                                          code_attr, t.sp_slot_addr, report);
    if (!code_region.ok()) {
      return code_region.status();
    }
    t.code_region = *code_region;

    Result<int> data_region = AllocRegion(t.meta.data_addr, t.meta.data_end(),
                                          kMpuAttrEnable, 0, report);
    if (!data_region.ok()) {
      return data_region.status();
    }
    t.data_region = *data_region;
  }

  // Shared/peripheral grant regions (deduplicated across trustlets: one
  // region register can serve all parties, Sec. 4.2.1).
  auto grant_region = [&](const RegionGrant& grant) -> Result<int> {
    const auto key = std::make_pair(grant.base, grant.end);
    auto it = shared_regions_.find(key);
    if (it != shared_regions_.end()) {
      return it->second;
    }
    // A grant window covering another trustlet's region reuses that region.
    for (const LoadedTrustlet& t : report->trustlets) {
      if (t.meta.unprotected) {
        continue;
      }
      if (t.code_region >= 0 && grant.base == t.meta.code_addr &&
          grant.end == t.meta.code_end()) {
        return t.code_region;
      }
      if (t.data_region >= 0 && grant.base == t.meta.data_addr &&
          grant.end == t.meta.data_end()) {
        return t.data_region;
      }
    }
    Result<int> region =
        AllocRegion(grant.base, grant.end, kMpuAttrEnable, 0, report);
    if (region.ok()) {
      shared_regions_.emplace(key, *region);
    }
    return region;
  };

  struct PendingGrantRule {
    int subject;
    int object;
    uint32_t perms;
  };
  std::vector<PendingGrantRule> grant_rules;
  for (LoadedTrustlet& t : report->trustlets) {
    if (t.meta.unprotected) {
      continue;
    }
    for (const RegionGrant& grant : t.meta.grants) {
      Result<int> region = grant_region(grant);
      if (!region.ok()) {
        return region.status();
      }
      grant_rules.push_back({t.code_region, *region, grant.perms});
    }
  }

  // Platform regions: Trustlet Table, the MPU's own register file, SysCtl.
  Result<int> tt_region =
      AllocRegion(config_.table_addr,
                  config_.table_addr + table.SizeFor(static_cast<int>(
                                           report->trustlets.size())),
                  kMpuAttrEnable, 0, report);
  if (!tt_region.ok()) {
    return tt_region.status();
  }
  int mpu_region = -1;
  int sysctl_region = -1;
  if (config_.grant_introspection || config_.protect_platform_control) {
    Result<int> r = AllocRegion(mpu_->base(), mpu_->base() + mpu_->size(),
                                kMpuAttrEnable, 0, report);
    if (!r.ok()) {
      return r.status();
    }
    mpu_region = *r;
  }
  if (config_.protect_platform_control) {
    Result<int> r = AllocRegion(kSysCtlBase, kSysCtlBase + kMmioBlockSize,
                                kMpuAttrEnable, 0, report);
    if (!r.ok()) {
      return r.status();
    }
    sysctl_region = *r;
  }

  // Pass B: rules.
  int os_code_region = -1;
  for (const LoadedTrustlet& t : report->trustlets) {
    if (!t.meta.unprotected && t.meta.is_os) {
      os_code_region = t.code_region;
    }
  }
  for (const LoadedTrustlet& t : report->trustlets) {
    if (t.meta.unprotected) {
      continue;
    }
    const uint32_t code = static_cast<uint32_t>(t.code_region);
    const uint32_t data = static_cast<uint32_t>(t.data_region);
    // Own code: execute + read (constants live in the code region).
    TL_RETURN_IF_ERROR(AddRule(code, code, true, false, true, report));
    // Own data: read/write.
    TL_RETURN_IF_ERROR(AddRule(code, data, true, true, false, report));
    // Entry-vector callability.
    if (t.meta.callable_any) {
      TL_RETURN_IF_ERROR(
          AddRule(kMpuSubjectAny, code, false, false, true, report));
    } else {
      for (const uint32_t caller_id : t.meta.callers) {
        const LoadedTrustlet* caller = report->FindById(caller_id);
        if (caller == nullptr || caller->code_region < 0) {
          return NotFound("caller id " + TrustletIdName(caller_id) +
                          " for trustlet '" + TrustletIdName(t.meta.id) +
                          "' is not loaded");
        }
        TL_RETURN_IF_ERROR(AddRule(static_cast<uint32_t>(caller->code_region),
                                   code, false, false, true, report));
      }
    }
    // Public code: anyone may read (mutual inspection, Sec. 4.2.2).
    if (!t.meta.code_private) {
      TL_RETURN_IF_ERROR(
          AddRule(kMpuSubjectAny, code, true, false, false, report));
    }
  }
  for (const PendingGrantRule& g : grant_rules) {
    TL_RETURN_IF_ERROR(AddRule(static_cast<uint32_t>(g.subject),
                               static_cast<uint32_t>(g.object),
                               (g.perms & kGrantRead) != 0,
                               (g.perms & kGrantWrite) != 0,
                               (g.perms & kGrantExec) != 0, report));
  }

  // Trustlet Table: world-readable, writable by nobody (the exception
  // engine uses its dedicated port).
  TL_RETURN_IF_ERROR(AddRule(kMpuSubjectAny,
                             static_cast<uint32_t>(*tt_region), true, false,
                             false, report));
  if (mpu_region >= 0 && config_.grant_introspection) {
    TL_RETURN_IF_ERROR(AddRule(kMpuSubjectAny,
                               static_cast<uint32_t>(mpu_region), true, false,
                               false, report));
  }
  if (config_.protect_platform_control && os_code_region >= 0) {
    if (mpu_region >= 0) {
      // Lets the OS acknowledge faults (FAULT_INFO stays writable under the
      // hardware lock); every other register is frozen by CTRL.lock.
      TL_RETURN_IF_ERROR(AddRule(static_cast<uint32_t>(os_code_region),
                                 static_cast<uint32_t>(mpu_region), true, true,
                                 false, report));
    }
    if (sysctl_region >= 0) {
      TL_RETURN_IF_ERROR(AddRule(kMpuSubjectAny,
                                 static_cast<uint32_t>(sysctl_region), true,
                                 false, false, report));
      TL_RETURN_IF_ERROR(AddRule(static_cast<uint32_t>(os_code_region),
                                 static_cast<uint32_t>(sysctl_region), true,
                                 true, false, report));
    }
  }

  // Step 3 completes: arm and lock the unit.
  uint32_t ctrl = 0;
  if (config_.enable_mpu) {
    ctrl |= kMpuCtrlEnable;
  }
  if (config_.lock_mpu) {
    ctrl |= kMpuCtrlLock;
  }
  TL_RETURN_IF_ERROR(WriteMpu(kMpuRegCtrl, ctrl));
  return OkStatus();
}

Result<LoadReport> SecureLoader::Boot() {
  LoadReport report;
  next_region_ = 0;
  next_rule_ = 0;
  words_moved_ = 0;
  shared_regions_.clear();
  mpu_->ResetStats();

  // Step 1: platform init — clear MPU control state.
  TL_RETURN_IF_ERROR(WriteMpu(kMpuRegCtrl, 0));

  // Step 2: discover and load trustlets from PROM.
  uint32_t cursor = config_.prom_directory;
  for (;;) {
    uint32_t magic = 0;
    if (!bus_->HostReadWord(cursor, &magic) || magic != kTrustletMagic) {
      break;  // Terminator or end of PROM.
    }
    uint32_t record_size = 0;
    if (!bus_->HostReadWord(cursor + 4, &record_size) ||
        record_size < kTrustletHeaderSize || record_size > kMaxRecordSize) {
      return InvalidArgument("corrupt trustlet record at " + Hex32(cursor));
    }
    std::vector<uint8_t> record;
    if (!bus_->HostReadBytes(cursor, record_size, &record)) {
      return InvalidArgument("trustlet record extends past PROM at " +
                             Hex32(cursor));
    }
    words_moved_ += (record_size + 3) / 4;
    Result<TrustletMeta> meta = TrustletMeta::Parse(record.data(), record.size());
    if (!meta.ok()) {
      return meta.status();
    }
    // Scenario selection (Sec. 8 second boot phase): skip records that
    // belong to a different deployment profile.
    if (meta->profile != 0 && meta->profile != config_.profile) {
      ++report.records_skipped;
      cursor += record_size;
      continue;
    }
    TL_RETURN_IF_ERROR(LoadRecord(*meta, &report));
    cursor += record_size;
  }

  // Table header (even with zero trustlets, so FindById works).
  TrustletTableView table(bus_, config_.table_addr);
  const uint32_t protected_count = static_cast<uint32_t>(
      std::count_if(report.trustlets.begin(), report.trustlets.end(),
                    [](const LoadedTrustlet& t) { return !t.meta.unprotected; }));
  if (!table.WriteHeader(protected_count)) {
    return Internal("failed to write Trustlet Table header");
  }
  words_moved_ += kTrustletTableHeaderSize / 4;

  // Step 3: program and lock the MPU.
  TL_RETURN_IF_ERROR(ProgramMpu(&report));

  report.mpu_register_writes = mpu_->stats().mmio_writes;
  report.words_moved = words_moved_;
  report.boot_cycles = words_moved_ * kLoaderCyclesPerWordOp;
  return report;
}

}  // namespace trustlite
