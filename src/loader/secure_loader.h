// Copyright 2026 The TrustLite Reproduction Authors.
//
// The Secure Loader (Sec. 3.5, Fig. 5): the first code to run after platform
// reset. It
//   (1) initializes the platform (clears the MPU control state),
//   (2) discovers trustlet records in PROM, loads their code into RAM,
//       zeroes their data regions, patches the Trustlet-Table slot pointer
//       into the code, fabricates the initial saved-state frame and
//       populates the Trustlet Table (optionally measuring each code region
//       as a root of trust, and verifying secure-boot signatures),
//   (3) programs the EA-MPU region descriptors and rules requested by the
//       trustlet metadata and write-protects the Trustlet Table and the
//       MPU's own MMIO range, then enables and locks the unit,
//   (4) reports the OS entry point for the platform to launch.
//
// The loader models boot *firmware*: it executes before the MPU is armed,
// so its accesses use the host (pre-protection) bus path; every word it
// moves is counted, and a cycle cost is derived for the boot benches. The
// MPU programming itself goes through the MMIO register file, so the
// "3 writes per region (+1 SP slot) and 1 per rule" cost of Sec. 5.3 is
// measured, not assumed.

#ifndef TRUSTLITE_SRC_LOADER_SECURE_LOADER_H_
#define TRUSTLITE_SRC_LOADER_SECURE_LOADER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/status.h"
#include "src/mem/bus.h"
#include "src/mem/layout.h"
#include "src/mpu/ea_mpu.h"
#include "src/trustlet/metadata.h"
#include "src/trustlet/trustlet_table.h"
#include "src/update/apply.h"

namespace trustlite {

// Modeled firmware cost per word-sized bus operation (load+store pair with
// loop overhead on the 5-stage core).
inline constexpr uint32_t kLoaderCyclesPerWordOp = 4;

struct LoaderConfig {
  uint32_t prom_directory = kPromDirectoryBase;
  uint32_t table_addr = kTrustletTableBase;
  // Program the per-region SP_SLOT registers (secure exception engine).
  bool secure_exceptions = true;
  // Measure every trustlet even if its metadata doesn't ask for it.
  bool measure_all = false;
  // Secure Boot: verify HMAC signatures. Unsigned records are rejected when
  // `require_signatures` is also set.
  bool secure_boot = false;
  bool require_signatures = false;
  std::vector<uint8_t> device_key;
  // Deployment profile to establish (paper Sec. 8 second boot phase):
  // records tagged with a non-zero profile are loaded only when it matches.
  uint32_t profile = 0;
  // Enable + lock the MPU when done (Fig. 5 step 3).
  bool enable_mpu = true;
  bool lock_mpu = true;
  // Grant everyone read access to the MPU register file and Trustlet Table
  // (needed for local attestation, Sec. 4.2.2).
  bool grant_introspection = true;
  // Give the OS region write access to SysCtl (exception handler table) and
  // to the MPU MMIO range (only the hardware-lock-exempt FAULT_INFO register
  // is actually writable once locked).
  bool protect_platform_control = true;
};

struct LoadedTrustlet {
  TrustletMeta meta;
  int tt_index = -1;
  int code_region = -1;
  int data_region = -1;
  uint32_t tt_row_addr = 0;
  uint32_t sp_slot_addr = 0;
};

struct LoadReport {
  std::vector<LoadedTrustlet> trustlets;
  int records_skipped = 0;  // Records excluded by profile selection.
  int regions_used = 0;
  int rules_used = 0;
  uint64_t mpu_register_writes = 0;  // From the MPU's own counter.
  uint64_t words_moved = 0;          // Code copy + data clear + table writes.
  uint64_t boot_cycles = 0;          // Modeled firmware cost.
  uint32_t os_id = 0;
  uint32_t os_entry = 0;  // Launch address (start offset applied).
  uint32_t os_sp = 0;

  const LoadedTrustlet* FindById(uint32_t id) const;
};

class SecureLoader {
 public:
  SecureLoader(Bus* bus, EaMpu* mpu, const LoaderConfig& config);

  // Runs the full boot flow. On success the MPU is armed (per config) and
  // the report names the OS entry point.
  Result<LoadReport> Boot();

  // Firmware update entry (src/update/apply.h): trial-applies `image`
  // against this loader's device key — signature, measurement and
  // anti-rollback checks, then payload swap + Trustlet Table re-measure.
  // Requires a 32-byte device key in the config. The counter advances only
  // on CommitUpdate.
  Result<FirmwareUpdateReport> ApplyUpdate(const FirmwareImage& image,
                                           const FirmwareUpdateTarget& target);
  Status CommitUpdate(uint32_t version);

  const LoaderConfig& config() const { return config_; }

 private:
  Status LoadRecord(const TrustletMeta& meta, LoadReport* report);
  Status ProgramMpu(LoadReport* report);

  // MPU programming helpers; every write goes through the MMIO register
  // file so that costs are observable.
  Status WriteMpu(uint32_t offset, uint32_t value);
  Result<int> AllocRegion(uint32_t base, uint32_t end, uint32_t attr,
                          uint32_t sp_slot, LoadReport* report);
  Status AddRule(uint32_t subject, uint32_t object, bool r, bool w, bool x,
                 LoadReport* report);

  Bus* bus_;
  EaMpu* mpu_;
  LoaderConfig config_;
  int next_region_ = 0;
  int next_rule_ = 0;
  uint64_t words_moved_ = 0;
  std::map<std::pair<uint32_t, uint32_t>, int> shared_regions_;
};

}  // namespace trustlite

#endif  // TRUSTLITE_SRC_LOADER_SECURE_LOADER_H_
