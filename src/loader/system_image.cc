// Copyright 2026 The TrustLite Reproduction Authors.

#include "src/loader/system_image.h"

#include <algorithm>

#include "src/crypto/hmac.h"

namespace trustlite {

void SystemImage::AddProgram(uint32_t code_addr, std::vector<uint8_t> code,
                             uint32_t data_addr, uint32_t data_size) {
  TrustletMeta meta;
  meta.id = 0;
  meta.unprotected = true;
  meta.measure = false;
  meta.code_addr = code_addr;
  meta.data_addr = data_addr;
  meta.data_size = data_size;
  meta.code = std::move(code);
  records_.push_back(std::move(meta));
}

Result<std::vector<uint8_t>> SystemImage::Build() const {
  int os_count = 0;
  for (const TrustletMeta& meta : records_) {
    if (meta.is_os) {
      ++os_count;
    }
  }
  if (os_count > 1) {
    return InvalidArgument("system image declares more than one OS record");
  }
  std::vector<uint8_t> image;
  for (const TrustletMeta& meta : records_) {
    const std::vector<uint8_t> record = meta.Serialize();
    image.insert(image.end(), record.begin(), record.end());
  }
  // Terminator: a zero word (fails the magic check).
  image.insert(image.end(), {0, 0, 0, 0});
  return image;
}

Sha256Digest SystemImage::ComputeSignature(
    const TrustletMeta& meta, const std::vector<uint8_t>& device_key) {
  TrustletMeta unsigned_meta = meta;
  unsigned_meta.signature.fill(0);
  const std::vector<uint8_t> record = unsigned_meta.Serialize();
  return HmacSha256(device_key.data(), device_key.size(), record.data(),
                    record.size());
}

void SystemImage::SignAll(const std::vector<uint8_t>& device_key) {
  for (TrustletMeta& meta : records_) {
    if (!meta.is_signed) {
      continue;
    }
    const Sha256Digest sig = ComputeSignature(meta, device_key);
    std::copy(sig.begin(), sig.end(), meta.signature.begin());
  }
}

}  // namespace trustlite
