// Copyright 2026 The TrustLite Reproduction Authors.
//
// PROM system image: the concatenation of trustlet records that the Secure
// Loader scans at boot (Fig. 5, "PROM" column). The image builder is the
// host-side stand-in for the paper's linker-script + flashing step.

#ifndef TRUSTLITE_SRC_LOADER_SYSTEM_IMAGE_H_
#define TRUSTLITE_SRC_LOADER_SYSTEM_IMAGE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/crypto/sha256.h"
#include "src/trustlet/metadata.h"

namespace trustlite {

class SystemImage {
 public:
  // Records are loaded in insertion order; exactly one record may carry
  // is_os (verified by Build).
  void Add(TrustletMeta meta) { records_.push_back(std::move(meta)); }

  // Convenience: a raw unprotected program (plain OS application).
  void AddProgram(uint32_t code_addr, std::vector<uint8_t> code,
                  uint32_t data_addr = 0, uint32_t data_size = 0);

  const std::vector<TrustletMeta>& records() const { return records_; }
  std::vector<TrustletMeta>& mutable_records() { return records_; }

  // Serializes all records (terminated by a zero word). The loader stops at
  // the first non-magic word.
  Result<std::vector<uint8_t>> Build() const;

  // Computes and stores the secure-boot signature of every record marked
  // is_signed: HMAC-SHA256(device_key, record-with-zeroed-signature).
  void SignAll(const std::vector<uint8_t>& device_key);

  // Signature as the loader recomputes it for verification.
  static Sha256Digest ComputeSignature(const TrustletMeta& meta,
                                       const std::vector<uint8_t>& device_key);

 private:
  std::vector<TrustletMeta> records_;
};

}  // namespace trustlite

#endif  // TRUSTLITE_SRC_LOADER_SYSTEM_IMAGE_H_
