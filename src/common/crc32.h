// Copyright 2026 The TrustLite Reproduction Authors.
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). Integrity check for
// the snapshot chunk format (docs/SNAPSHOT_FORMAT.md): cheap enough to run
// over every chunk on save and load, strong enough to catch the truncation
// and bit-flip corruption the negative tests throw at it. Not a MAC — the
// snapshot format is a host-side artifact, not an attack surface.

#ifndef TRUSTLITE_SRC_COMMON_CRC32_H_
#define TRUSTLITE_SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trustlite {

// CRC-32 of `data`. `seed` chains partial computations: pass the previous
// return value to continue a running CRC.
uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed = 0);
uint32_t Crc32(const std::vector<uint8_t>& data);

}  // namespace trustlite

#endif  // TRUSTLITE_SRC_COMMON_CRC32_H_
