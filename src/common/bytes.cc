// Copyright 2026 The TrustLite Reproduction Authors.

#include "src/common/bytes.h"

#include <cstdio>

namespace trustlite {

std::string HexEncode(const uint8_t* data, size_t len) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xF]);
  }
  return out;
}

std::string HexEncode(const std::vector<uint8_t>& data) {
  return HexEncode(data.data(), data.size());
}

std::string Hex32(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

}  // namespace trustlite
