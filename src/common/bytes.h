// Copyright 2026 The TrustLite Reproduction Authors.
// Byte-order helpers and hex formatting. TL32 is little-endian; all guest
// memory images and MMIO registers use these helpers so host endianness
// never leaks into guest state.

#ifndef TRUSTLITE_SRC_COMMON_BYTES_H_
#define TRUSTLITE_SRC_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace trustlite {

// Reads a little-endian 32-bit word from `p`. Caller guarantees 4 readable
// bytes.
inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

inline uint16_t LoadLe16(const uint8_t* p) {
  return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) |
                               (static_cast<uint16_t>(p[1]) << 8));
}

inline void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void StoreLe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

// Appends a little-endian word to a byte vector (image building).
inline void AppendLe32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

// Appends a little-endian 64-bit value (snapshot serialization).
inline void AppendLe64(std::vector<uint8_t>& out, uint64_t v) {
  AppendLe32(out, static_cast<uint32_t>(v));
  AppendLe32(out, static_cast<uint32_t>(v >> 32));
}

inline uint64_t LoadLe64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadLe32(p)) |
         (static_cast<uint64_t>(LoadLe32(p + 4)) << 32);
}

// Bounds-checked sequential reader over a byte buffer. Every Read* returns
// false (and poisons the reader) on underrun instead of reading past the
// end, so deserializers can parse a whole record and check ok() once.
// Shared by the device snapshot hooks and the snapshot chunk parser.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : p_(data), remaining_(size), ok_(true) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return remaining_; }
  // True when the buffer was fully consumed without underrun.
  bool Done() const { return ok_ && remaining_ == 0; }

  bool ReadU8(uint8_t* v) {
    if (!Require(1)) return false;
    *v = p_[0];
    Advance(1);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (!Require(4)) return false;
    *v = LoadLe32(p_);
    Advance(4);
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (!Require(8)) return false;
    *v = LoadLe64(p_);
    Advance(8);
    return true;
  }
  bool ReadBytes(uint8_t* out, size_t n) {
    if (!Require(n)) return false;
    for (size_t i = 0; i < n; ++i) out[i] = p_[i];
    Advance(n);
    return true;
  }
  bool ReadBytes(std::vector<uint8_t>* out, size_t n) {
    if (!Require(n)) return false;
    out->assign(p_, p_ + n);
    Advance(n);
    return true;
  }
  bool ReadString(std::string* out, size_t n) {
    if (!Require(n)) return false;
    out->assign(reinterpret_cast<const char*>(p_), n);
    Advance(n);
    return true;
  }
  bool Skip(size_t n) {
    if (!Require(n)) return false;
    Advance(n);
    return true;
  }
  const uint8_t* cursor() const { return p_; }

 private:
  bool Require(size_t n) {
    if (!ok_ || remaining_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  void Advance(size_t n) {
    p_ += n;
    remaining_ -= n;
  }

  const uint8_t* p_;
  size_t remaining_;
  bool ok_;
};

// Sign-extends the low `bits` bits of `v`.
inline int32_t SignExtend(uint32_t v, int bits) {
  const uint32_t m = 1u << (bits - 1);
  v &= (bits == 32) ? 0xFFFFFFFFu : ((1u << bits) - 1u);
  return static_cast<int32_t>((v ^ m) - m);
}

// True if `v` fits in a signed `bits`-bit immediate.
inline bool FitsSigned(int64_t v, int bits) {
  const int64_t lo = -(int64_t{1} << (bits - 1));
  const int64_t hi = (int64_t{1} << (bits - 1)) - 1;
  return v >= lo && v <= hi;
}

// True if `v` fits in an unsigned `bits`-bit field.
inline bool FitsUnsigned(uint64_t v, int bits) {
  return bits >= 64 || v < (uint64_t{1} << bits);
}

// "deadbeef"-style lowercase hex of a byte buffer.
std::string HexEncode(const uint8_t* data, size_t len);
std::string HexEncode(const std::vector<uint8_t>& data);

// "0x0000beef" style formatting of a 32-bit value.
std::string Hex32(uint32_t v);

}  // namespace trustlite

#endif  // TRUSTLITE_SRC_COMMON_BYTES_H_
