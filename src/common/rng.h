// Copyright 2026 The TrustLite Reproduction Authors.
// Deterministic PRNG (xoshiro256**). Backs the TRNG peripheral model and the
// randomized property tests; seeded explicitly so every run is reproducible.

#ifndef TRUSTLITE_SRC_COMMON_RNG_H_
#define TRUSTLITE_SRC_COMMON_RNG_H_

#include <array>
#include <cstdint>

namespace trustlite {

// One round of the splitmix64 finalizer over an arbitrary 64-bit input.
// Stateless mixing primitive shared by the xoshiro seeding expansion and the
// fleet per-device seed derivation below.
uint64_t SplitMix64Once(uint64_t x);

// Decorrelated per-device seed for multi-device (fleet) runs: two splitmix
// rounds over (fleet_seed, device_id) so neighbouring device ids land in
// unrelated points of the stream while the whole fleet stays reproducible
// from the single fleet seed. Feeds PlatformConfig::trng_seed and the
// per-link fabric RNGs.
uint64_t DeriveDeviceSeed(uint64_t fleet_seed, uint32_t device_id);

class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed);

  uint64_t Next64();
  uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

  // Uniform in [0, bound). `bound` must be non-zero.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return lo + NextBelow(hi - lo + 1);
  }

  bool NextBool() { return (Next64() & 1) != 0; }

  // Stream cursor, exported for the platform snapshot: restoring the four
  // state words resumes the stream at exactly the next unread value.
  std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state[i];
  }

  // Re-runs the seeding expansion in place (warm-boot provisioning: a
  // cloned node's TRNG is moved onto its own per-device stream).
  void Reseed(uint64_t seed);

 private:
  uint64_t s_[4];
};

}  // namespace trustlite

#endif  // TRUSTLITE_SRC_COMMON_RNG_H_
