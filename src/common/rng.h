// Copyright 2026 The TrustLite Reproduction Authors.
// Deterministic PRNG (xoshiro256**). Backs the TRNG peripheral model and the
// randomized property tests; seeded explicitly so every run is reproducible.

#ifndef TRUSTLITE_SRC_COMMON_RNG_H_
#define TRUSTLITE_SRC_COMMON_RNG_H_

#include <cstdint>

namespace trustlite {

class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed);

  uint64_t Next64();
  uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

  // Uniform in [0, bound). `bound` must be non-zero.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return lo + NextBelow(hi - lo + 1);
  }

  bool NextBool() { return (Next64() & 1) != 0; }

 private:
  uint64_t s_[4];
};

}  // namespace trustlite

#endif  // TRUSTLITE_SRC_COMMON_RNG_H_
