// Copyright 2026 The TrustLite Reproduction Authors.

#include "src/common/crc32.h"

#include <array>

namespace trustlite {
namespace {

// Slice-by-8: eight derived tables let the inner loop fold 8 input bytes
// per iteration instead of 1. Table 0 is the classic byte-at-a-time table;
// table k folds a byte that sits k positions ahead in the stream. Worth
// ~6x over the byte loop, which matters because the snapshot restore path
// CRCs every chunk on each warm-boot clone (DESIGN.md Sec. 14).
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) != 0 ? (c >> 1) ^ 0xEDB88320u : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFF] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables =
      BuildTables();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const uint32_t lo = c ^ (static_cast<uint32_t>(data[i]) |
                             static_cast<uint32_t>(data[i + 1]) << 8 |
                             static_cast<uint32_t>(data[i + 2]) << 16 |
                             static_cast<uint32_t>(data[i + 3]) << 24);
    const uint32_t hi = static_cast<uint32_t>(data[i + 4]) |
                        static_cast<uint32_t>(data[i + 5]) << 8 |
                        static_cast<uint32_t>(data[i + 6]) << 16 |
                        static_cast<uint32_t>(data[i + 7]) << 24;
    c = kTables[7][lo & 0xFF] ^ kTables[6][(lo >> 8) & 0xFF] ^
        kTables[5][(lo >> 16) & 0xFF] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFF] ^ kTables[2][(hi >> 8) & 0xFF] ^
        kTables[1][(hi >> 16) & 0xFF] ^ kTables[0][hi >> 24];
  }
  for (; i < len; ++i) {
    c = kTables[0][(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::vector<uint8_t>& data) {
  return Crc32(data.data(), data.size());
}

}  // namespace trustlite
