// Copyright 2026 The TrustLite Reproduction Authors.
// Lightweight status / result types used across the simulator. The hot
// simulation paths use plain enums; Status/Result are for setup-time APIs
// (assembler, loader, image building) where rich errors help.

#ifndef TRUSTLITE_SRC_COMMON_STATUS_H_
#define TRUSTLITE_SRC_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace trustlite {

enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kPermissionDenied,
  kInternal,
  kUnimplemented,
};

// Human-readable name of a status code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// A status is a code plus an optional message. Copyable, cheap when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "INVALID_ARGUMENT: bad register name" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}

// Result<T> carries either a value or a non-OK status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}           // NOLINT
  Result(Status status) : value_(std::move(status)) {}    // NOLINT
  Result(StatusCode code, std::string msg) : value_(Status(code, std::move(msg))) {}

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOkSingleton;
    if (ok()) {
      return kOkSingleton;
    }
    return std::get<Status>(value_);
  }

  T& value() & { return std::get<T>(value_); }
  const T& value() const& { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> value_;
};

// Propagate a non-OK status out of the enclosing function.
#define TL_RETURN_IF_ERROR(expr)            \
  do {                                      \
    ::trustlite::Status tl_status_ = (expr); \
    if (!tl_status_.ok()) {                 \
      return tl_status_;                    \
    }                                       \
  } while (0)

}  // namespace trustlite

#endif  // TRUSTLITE_SRC_COMMON_STATUS_H_
