// Copyright 2026 The TrustLite Reproduction Authors.

#include "src/common/rng.h"

namespace trustlite {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64Once(uint64_t x) {
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t DeriveDeviceSeed(uint64_t fleet_seed, uint32_t device_id) {
  // Each device id advances the golden-ratio sequence to a distinct point,
  // then two finalizer rounds decorrelate ids that differ in one bit.
  uint64_t x = fleet_seed + 0x9E3779B97F4A7C15ull * (uint64_t{device_id} + 1);
  x = SplitMix64Once(x);
  x = SplitMix64Once(x ^ 0xD1B54A32D192ED03ull);
  return x;
}

Xoshiro256::Xoshiro256(uint64_t seed) { Reseed(seed); }

void Xoshiro256::Reseed(uint64_t seed) {
  // splitmix64 stream expands the seed into the xoshiro state.
  uint64_t sm = seed;
  for (auto& s : s_) {
    sm += 0x9E3779B97F4A7C15ull;
    s = SplitMix64Once(sm);
  }
}

uint64_t Xoshiro256::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Xoshiro256::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

}  // namespace trustlite
