// Copyright 2026 The TrustLite Reproduction Authors.
// Scaling and stress tests: many trustlets under round-robin, OS queue
// saturation, trusted IPC under aggressive preemption, and exact MPU
// region-budget boundaries.

#include <gtest/gtest.h>

#include "src/loader/system_image.h"
#include "src/os/nanos.h"
#include "src/platform/platform.h"
#include "src/services/trusted_ipc.h"
#include "src/trustlet/builder.h"

namespace trustlite {
namespace {

TrustletBuildSpec CounterSpec(int index) {
  TrustletBuildSpec spec;
  spec.name = "T" + std::to_string(index);
  spec.code_addr = 0x11000 + static_cast<uint32_t>(index) * 0x800;
  spec.data_addr = 0x11400 + static_cast<uint32_t>(index) * 0x800;
  spec.data_size = 0x400;
  spec.stack_size = 0x100;
  char body[256];
  std::snprintf(body, sizeof(body), R"(
tl_main:
    li   r4, 0x%x
    movi r1, 0
loop:
    addi r1, r1, 1
    stw  r1, [r4]
    jmp  loop
)",
                0x38000 + index * 4);
  spec.body = body;
  return spec;
}

TEST(ScaleTest, TwelveTrustletsAllMakeProgress) {
  PlatformConfig config;
  config.mpu_regions = 64;
  config.mpu_rules = 160;
  Platform platform(config);
  SystemImage image;
  constexpr int kCount = 12;
  for (int i = 0; i < kCount; ++i) {
    Result<TrustletMeta> tl = BuildTrustlet(CounterSpec(i));
    ASSERT_TRUE(tl.ok()) << tl.status().ToString();
    image.Add(*tl);
  }
  NanosConfig os_config;
  os_config.code_addr = 0x20000;
  os_config.timer_period = 400;
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  ASSERT_TRUE(platform.InstallImage(image).ok());
  Result<LoadReport> report = platform.BootAndLaunch();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->regions_used, 2 * (kCount + 1) + 2 + 3);

  platform.Run(600000);
  ASSERT_FALSE(platform.cpu().halted()) << platform.cpu().trap().reason;
  for (int i = 0; i < kCount; ++i) {
    uint32_t count = 0;
    ASSERT_TRUE(platform.bus().HostReadWord(0x38000 + i * 4, &count));
    EXPECT_GT(count, 100u) << "trustlet " << i << " starved";
  }
  EXPECT_GT(platform.cpu().stats().trustlet_interrupts, 100u);
}

TEST(ScaleTest, OsQueueSaturatesAtCapacity) {
  // A trustlet enqueues 20 messages; the 16-slot OS queue keeps the first
  // 16 and drops the rest without corruption.
  TrustletBuildSpec spec;
  spec.name = "FLD";
  spec.code_addr = 0x11000;
  spec.data_addr = 0x12000;
  spec.data_size = 0x400;
  spec.stack_size = 0x100;
  spec.body = R"(
.equ CONT_SLOT, TL_DATA + 0
.equ COUNT_SLOT, TL_DATA + 4
tl_main:
    la   r4, COUNT_SLOT
    ldw  r5, [r4]
    movi r6, 20
    bgeu r5, r6, flood_done
    addi r5, r5, 1
    stw  r5, [r4]
    la   r4, CONT_SLOT
    la   r6, tl_main
    stw  r6, [r4]
    movi r0, 1             ; enqueue
    li   r1, 0x1000
    add  r1, r1, r5        ; payload 0x1001..0x1014
    la   r2, tl_entry
    li   r6, 0x20000
    jr   r6
flood_done:
    sti
park:
    swi 0
    jmp park
tl_handle_call:
    sti
    la   r15, CONT_SLOT
    ldw  r15, [r15]
    jr   r15
)";
  Platform platform;
  SystemImage image;
  Result<TrustletMeta> tl = BuildTrustlet(spec);
  ASSERT_TRUE(tl.ok()) << tl.status().ToString();
  image.Add(*tl);
  NanosConfig os_config;
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  ASSERT_TRUE(platform.InstallImage(image).ok());
  Result<LoadReport> report = platform.BootAndLaunch();
  ASSERT_TRUE(report.ok());

  platform.Run(300000);
  ASSERT_FALSE(platform.cpu().halted()) << platform.cpu().trap().reason;
  const LoadedTrustlet* osl = report->FindById(report->os_id);
  uint32_t count = 0;
  ASSERT_TRUE(platform.bus().HostReadWord(
      osl->meta.data_addr + kOsDataQueueCount, &count));
  EXPECT_EQ(count, kOsQueueCapacity);
  // First and last kept entries.
  uint32_t first = 0;
  uint32_t last = 0;
  ASSERT_TRUE(
      platform.bus().HostReadWord(osl->meta.data_addr + kOsDataQueue, &first));
  ASSERT_TRUE(platform.bus().HostReadWord(
      osl->meta.data_addr + kOsDataQueue + 4 * (kOsQueueCapacity - 1), &last));
  EXPECT_EQ(first, 0x1001u);
  EXPECT_EQ(last, 0x1010u);
  // The trustlet attempted all 20.
  uint32_t attempts = 0;
  ASSERT_TRUE(platform.bus().HostReadWord(0x12004, &attempts));
  EXPECT_EQ(attempts, 20u);
}

TEST(ScaleTest, TrustedIpcSurvivesAggressivePreemption) {
  TrustedIpcSpec ipc;
  ipc.initiator_code = 0x11000;
  ipc.initiator_data = 0x12000;
  ipc.responder_code = 0x13000;
  ipc.responder_data = 0x14000;
  Platform platform;
  SystemImage image;
  Result<TrustletMeta> initiator = BuildIpcInitiator(ipc);
  Result<TrustletMeta> responder = BuildIpcResponder(ipc);
  ASSERT_TRUE(initiator.ok());
  ASSERT_TRUE(responder.ok());
  image.Add(*responder);
  image.Add(*initiator);
  NanosConfig os_config;
  os_config.timer_period = 150;  // Very fast scheduler tick.
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  ASSERT_TRUE(platform.InstallImage(image).ok());
  ASSERT_TRUE(platform.BootAndLaunch().ok());

  platform.Run(800000);
  ASSERT_FALSE(platform.cpu().halted()) << platform.cpu().trap().reason;
  uint32_t state = 0;
  uint32_t accepted = 0;
  ASSERT_TRUE(platform.bus().HostReadWord(ipc.initiator_data + kIpcInitState,
                                          &state));
  ASSERT_TRUE(platform.bus().HostReadWord(
      ipc.responder_data + kIpcRespAccepted, &accepted));
  EXPECT_EQ(state, 2u);
  EXPECT_EQ(accepted, ipc.message);
  // Preemption definitely happened during the episode.
  EXPECT_GT(platform.cpu().stats().trustlet_interrupts, 20u);
}

TEST(ScaleTest, ExactRegionBudgetBoundary) {
  // 2 trustlets + OS: 3x2 module regions + 2 OS grants + TT + MPU + SysCtl
  // = 11 regions. 11 boots, 10 must fail with RESOURCE_EXHAUSTED.
  auto boot_with = [](int regions) {
    PlatformConfig config;
    config.mpu_regions = regions;
    Platform platform(config);
    SystemImage image;
    for (int i = 0; i < 2; ++i) {
      image.Add(*BuildTrustlet(CounterSpec(i)));
    }
    NanosConfig os_config;
    os_config.code_addr = 0x20000;
    image.Add(*BuildNanos(os_config));
    EXPECT_TRUE(platform.InstallImage(image).ok());
    return platform.Boot().status().code();
  };
  EXPECT_EQ(boot_with(11), StatusCode::kOk);
  EXPECT_EQ(boot_with(10), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace trustlite
