// Copyright 2026 The TrustLite Reproduction Authors.
// nanOS tests: boot and trustlet discovery, preemptive round-robin
// scheduling of trustlets, cooperative yield, OS IPC services, fault
// policy, and software-managed app tasks alongside hardware-managed
// trustlets.

#include "src/os/nanos.h"

#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/loader/system_image.h"
#include "src/platform/platform.h"
#include "src/trustlet/builder.h"

namespace trustlite {
namespace {

// Open-memory observation cells (uncovered by MPU regions).
constexpr uint32_t kCountA = 0x0003'0000;
constexpr uint32_t kCountB = 0x0003'0004;

// A trustlet that bumps a counter cell forever (preemption target).
TrustletBuildSpec CounterSpec(const std::string& name, uint32_t code,
                              uint32_t data, uint32_t cell) {
  TrustletBuildSpec spec;
  spec.name = name;
  spec.code_addr = code;
  spec.data_addr = data;
  spec.data_size = 0x400;
  spec.stack_size = 0x100;
  spec.body = "tl_main:\n    li r4, 0x" + [&] {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%x", cell);
    return std::string(buf);
  }() + "\n" + R"(
    movi r1, 0
tl_loop:
    addi r1, r1, 1
    stw  r1, [r4]
    jmp  tl_loop
)";
  return spec;
}

// Same, but yields via SWI 0 after every increment (cooperative).
TrustletBuildSpec YieldingCounterSpec(const std::string& name, uint32_t code,
                                      uint32_t data, uint32_t cell) {
  TrustletBuildSpec spec = CounterSpec(name, code, data, cell);
  const std::string marker = "jmp  tl_loop";
  const size_t pos = spec.body.find(marker);
  spec.body.replace(pos, marker.size(), "swi 0\n    jmp  tl_loop");
  return spec;
}

class NanosTest : public ::testing::Test {
 protected:
  void Install(SystemImage& image) {
    ASSERT_TRUE(platform_.InstallImage(image).ok());
    Result<LoadReport> report = platform_.BootAndLaunch();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    report_ = *report;
  }

  uint32_t Word(uint32_t addr) {
    uint32_t value = 0;
    EXPECT_TRUE(platform_.bus().HostReadWord(addr, &value));
    return value;
  }

  uint32_t OsDataWord(uint32_t offset) {
    const LoadedTrustlet* os = report_.FindById(report_.os_id);
    EXPECT_NE(os, nullptr);
    return Word(os->meta.data_addr + offset);
  }

  Platform platform_;
  LoadReport report_;
};

TEST(NanosBuildTest, SourceAssembles) {
  NanosConfig config;
  Result<TrustletMeta> os = BuildNanos(config);
  ASSERT_TRUE(os.ok()) << os.status().ToString();
  EXPECT_TRUE(os->is_os);
  EXPECT_GT(os->code.size(), 200u);
  EXPECT_EQ(os->grants.size(), 2u);  // timer + uart by default
  const std::string source = NanosSource(config);
  EXPECT_NE(source.find("os_schedule:"), std::string::npos);
  EXPECT_NE(source.find("os_fault_isr:"), std::string::npos);
}

TEST_F(NanosTest, BootWithNoTrustletsIdles) {
  SystemImage image;
  NanosConfig config;
  Result<TrustletMeta> os = BuildNanos(config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  Install(image);
  platform_.Run(20000);
  EXPECT_FALSE(platform_.cpu().halted());  // Idle loop, not a crash.
  EXPECT_FALSE(platform_.cpu().trap().valid);
  EXPECT_EQ(OsDataWord(kOsDataNumTasks), 0u);
}

TEST_F(NanosTest, PreemptiveRoundRobinRunsAllTrustlets) {
  SystemImage image;
  Result<TrustletMeta> a = BuildTrustlet(CounterSpec("A", 0x11000, 0x12000, kCountA));
  Result<TrustletMeta> b = BuildTrustlet(CounterSpec("B", 0x13000, 0x14000, kCountB));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  image.Add(*a);
  image.Add(*b);
  NanosConfig config;
  config.timer_period = 500;
  Result<TrustletMeta> os = BuildNanos(config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  Install(image);

  platform_.Run(100000);
  EXPECT_FALSE(platform_.cpu().halted());
  EXPECT_EQ(OsDataWord(kOsDataNumTasks), 2u);
  // Both counters advanced well past a single time slice, so both trustlets
  // ran repeatedly under hardware-preserved state.
  EXPECT_GT(Word(kCountA), 100u);
  EXPECT_GT(Word(kCountB), 100u);
  EXPECT_GT(platform_.cpu().stats().trustlet_interrupts, 4u);
}

TEST_F(NanosTest, CooperativeYieldWithoutTimer) {
  SystemImage image;
  Result<TrustletMeta> a =
      BuildTrustlet(YieldingCounterSpec("A", 0x11000, 0x12000, kCountA));
  Result<TrustletMeta> b =
      BuildTrustlet(YieldingCounterSpec("B", 0x13000, 0x14000, kCountB));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  image.Add(*a);
  image.Add(*b);
  NanosConfig config;
  config.enable_timer = false;
  Result<TrustletMeta> os = BuildNanos(config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  Install(image);

  platform_.Run(60000);
  EXPECT_FALSE(platform_.cpu().halted());
  EXPECT_GT(Word(kCountA), 10u);
  EXPECT_GT(Word(kCountB), 10u);
  // Cooperative interleaving is fair: counts differ by at most 1.
  const uint32_t ca = Word(kCountA);
  const uint32_t cb = Word(kCountB);
  EXPECT_LE(ca > cb ? ca - cb : cb - ca, 1u);
}

TEST_F(NanosTest, PutcServiceViaSynchronousCall) {
  // The trustlet prints "HI" through the OS putc service using the
  // call/ACK continuation pattern of Fig. 6: it stores its continuation,
  // calls the OS entry, and the ACK re-enters via its own entry vector.
  TrustletBuildSpec spec;
  spec.name = "PRT";
  spec.code_addr = 0x11000;
  spec.data_addr = 0x12000;
  spec.data_size = 0x400;
  spec.stack_size = 0x100;
  spec.body = R"(
.equ CONT_SLOT, TL_DATA + 0
.equ STATE_SLOT, TL_DATA + 4
tl_main:
    ; state 0: print 'H'
    la   r4, STATE_SLOT
    movi r5, 1
    stw  r5, [r4]
    la   r4, CONT_SLOT
    la   r5, after_h
    stw  r5, [r4]
    movi r0, 4             ; putc
    movi r1, 'H'
    la   r2, tl_entry      ; ACK continuation target (our entry vector)
    jmp  os_entry_addr_jump
after_h:
    sti                    ; service masked interrupts; re-enable
    la   r4, CONT_SLOT
    la   r5, after_i
    stw  r5, [r4]
    movi r0, 4
    movi r1, 'I'
    la   r2, tl_entry
    jmp  os_entry_addr_jump
after_i:
    sti
done:
    swi 0
    jmp done

; Jump to the OS entry vector (address patched via .equ below).
os_entry_addr_jump:
    li   r6, 0x20000       ; nanOS default code address = its entry vector
    jr   r6

tl_handle_call:
    ; Only ACK (type 3) is expected: resume at the stored continuation.
    la   r15, CONT_SLOT
    ldw  r15, [r15]
    jr   r15
)";
  SystemImage image;
  Result<TrustletMeta> tl = BuildTrustlet(spec);
  ASSERT_TRUE(tl.ok()) << tl.status().ToString();
  image.Add(*tl);
  NanosConfig config;
  config.timer_period = 3000;
  Result<TrustletMeta> os = BuildNanos(config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  Install(image);

  platform_.Run(60000);
  EXPECT_FALSE(platform_.cpu().trap().valid) << platform_.cpu().trap().reason;
  EXPECT_EQ(platform_.uart().output(), "HI");
}

TEST_F(NanosTest, EnqueueServiceFillsOsQueue) {
  TrustletBuildSpec spec;
  spec.name = "ENQ";
  spec.code_addr = 0x11000;
  spec.data_addr = 0x12000;
  spec.data_size = 0x400;
  spec.stack_size = 0x100;
  spec.body = R"(
.equ CONT_SLOT, TL_DATA + 0
tl_main:
    la   r4, CONT_SLOT
    la   r5, after_send
    stw  r5, [r4]
    movi r0, 1             ; enqueue
    li   r1, 0x1234
    la   r2, tl_entry
    li   r6, 0x20000
    jr   r6
after_send:
    sti
done:
    swi 0
    jmp done
tl_handle_call:
    la   r15, CONT_SLOT
    ldw  r15, [r15]
    jr   r15
)";
  SystemImage image;
  Result<TrustletMeta> tl = BuildTrustlet(spec);
  ASSERT_TRUE(tl.ok()) << tl.status().ToString();
  image.Add(*tl);
  NanosConfig config;
  Result<TrustletMeta> os = BuildNanos(config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  Install(image);

  platform_.Run(60000);
  EXPECT_EQ(OsDataWord(kOsDataQueueCount), 1u);
  EXPECT_EQ(OsDataWord(kOsDataQueue), 0x1234u);
}

TEST_F(NanosTest, FaultingTrustletIsKilledOthersContinue) {
  // BAD writes into the OS data region -> MPU fault -> nanOS kills it;
  // GOOD keeps running.
  TrustletBuildSpec bad;
  bad.name = "BAD";
  bad.code_addr = 0x15000;
  bad.data_addr = 0x16000;
  bad.data_size = 0x400;
  bad.stack_size = 0x100;
  bad.body = R"(
tl_main:
    li  r4, 0x24000        ; nanOS data region
    movi r5, 0x666
    stw r5, [r4 + 64]      ; MPU fault: no rule for us
spin:
    jmp spin
)";
  SystemImage image;
  Result<TrustletMeta> good =
      BuildTrustlet(CounterSpec("GOOD", 0x11000, 0x12000, kCountA));
  Result<TrustletMeta> badmeta = BuildTrustlet(bad);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(badmeta.ok());
  image.Add(*good);
  image.Add(*badmeta);
  NanosConfig config;
  config.timer_period = 500;
  Result<TrustletMeta> os = BuildNanos(config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  Install(image);

  platform_.Run(100000);
  EXPECT_FALSE(platform_.cpu().halted()) << platform_.cpu().trap().reason;
  // BAD was removed from the schedule...
  EXPECT_EQ(OsDataWord(kOsDataNumTasks), 1u);
  // ... its write never landed ...
  const LoadedTrustlet* osl = report_.FindById(report_.os_id);
  EXPECT_EQ(Word(osl->meta.data_addr + 64), 0u);
  // ... and GOOD kept making progress.
  EXPECT_GT(Word(kCountA), 100u);
}

TEST_F(NanosTest, AppTaskContextSavedAndResumedBySoftware) {
  // An untrusted app in open DRAM counts monotonically; nanOS saves and
  // restores its context in software across preemptions.
  Result<AsmOutput> app = Assemble(R"(
.org 0x100000
app_start:
    li  r4, 0x30004
    movi r1, 0
    movi r2, 0xBEE
app_loop:
    addi r1, r1, 1
    stw  r1, [r4]
    ; Integrity check: r2 must stay 0xBEE across preemptions.
    movi r5, 0xBEE
    beq  r2, r5, app_ok
    movi r6, 1
    li   r7, 0x30008
    stw  r6, [r7]          ; corruption flag
app_ok:
    jmp  app_loop
)");
  ASSERT_TRUE(app.ok()) << app.status().ToString();
  uint32_t base = 0;
  SystemImage image;
  image.AddProgram(0x100000, app->Flatten(&base));
  Result<TrustletMeta> tl =
      BuildTrustlet(CounterSpec("A", 0x11000, 0x12000, kCountA));
  ASSERT_TRUE(tl.ok());
  image.Add(*tl);
  NanosConfig config;
  config.timer_period = 400;
  config.app_entry = 0x100000;
  config.app_sp = 0x180000;
  Result<TrustletMeta> os = BuildNanos(config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  Install(image);

  platform_.Run(150000);
  EXPECT_FALSE(platform_.cpu().halted()) << platform_.cpu().trap().reason;
  EXPECT_GT(Word(kCountA), 50u);       // Trustlet ran.
  EXPECT_GT(Word(kCountB), 50u);       // App ran (cell 0x30004 == kCountB).
  EXPECT_EQ(Word(0x30008), 0u);        // App registers survived preemption.
}

}  // namespace
}  // namespace trustlite
