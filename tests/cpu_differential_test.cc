// Copyright 2026 The TrustLite Reproduction Authors.
//
// Differential fuzzing of the interpreter's ALU / branch / jump semantics
// against an independent golden model written directly from the ISA
// documentation (isa.h). 60 seeds x 400 random instructions on random
// register files.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/cpu/cpu.h"
#include "src/dev/sysctl.h"
#include "src/isa/disassembler.h"
#include "src/mem/bus.h"
#include "src/mem/layout.h"
#include "src/mem/memory.h"

namespace trustlite {
namespace {

constexpr uint32_t kInsnAddr = 0x1000;

struct RefState {
  uint32_t regs[kNumRegisters];
  uint32_t ip;
};

// Golden model: semantics transcribed from isa.h, independent of cpu.cc.
void RefExecute(RefState& s, const Instruction& i) {
  const uint32_t a = s.regs[i.rs1];
  const uint32_t b = s.regs[i.rs2];
  const uint32_t imm = static_cast<uint32_t>(i.imm);
  uint32_t next_ip = s.ip + 4;
  switch (i.opcode) {
    case Opcode::kNop:
      break;
    case Opcode::kAdd: s.regs[i.rd] = a + b; break;
    case Opcode::kSub: s.regs[i.rd] = a - b; break;
    case Opcode::kAnd: s.regs[i.rd] = a & b; break;
    case Opcode::kOr: s.regs[i.rd] = a | b; break;
    case Opcode::kXor: s.regs[i.rd] = a ^ b; break;
    case Opcode::kShl: s.regs[i.rd] = a << (b & 31); break;
    case Opcode::kShr: s.regs[i.rd] = a >> (b & 31); break;
    case Opcode::kSra:
      s.regs[i.rd] =
          static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31));
      break;
    case Opcode::kMul: s.regs[i.rd] = a * b; break;
    case Opcode::kSltu: s.regs[i.rd] = a < b ? 1 : 0; break;
    case Opcode::kSlt:
      s.regs[i.rd] =
          static_cast<int32_t>(a) < static_cast<int32_t>(b) ? 1 : 0;
      break;
    case Opcode::kAddi: s.regs[i.rd] = a + imm; break;
    case Opcode::kAndi: s.regs[i.rd] = a & imm; break;
    case Opcode::kOri: s.regs[i.rd] = a | imm; break;
    case Opcode::kXori: s.regs[i.rd] = a ^ imm; break;
    case Opcode::kShli: s.regs[i.rd] = a << (i.imm & 31); break;
    case Opcode::kShri: s.regs[i.rd] = a >> (i.imm & 31); break;
    case Opcode::kSrai:
      s.regs[i.rd] =
          static_cast<uint32_t>(static_cast<int32_t>(a) >> (i.imm & 31));
      break;
    case Opcode::kMovi: s.regs[i.rd] = imm; break;
    case Opcode::kLui: s.regs[i.rd] = imm << 10; break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu: {
      // Branch operands travel in the rd/rs1 fields.
      const uint32_t x = s.regs[i.rd];
      const uint32_t y = s.regs[i.rs1];
      bool taken = false;
      switch (i.opcode) {
        case Opcode::kBeq: taken = x == y; break;
        case Opcode::kBne: taken = x != y; break;
        case Opcode::kBlt:
          taken = static_cast<int32_t>(x) < static_cast<int32_t>(y);
          break;
        case Opcode::kBge:
          taken = static_cast<int32_t>(x) >= static_cast<int32_t>(y);
          break;
        case Opcode::kBltu: taken = x < y; break;
        case Opcode::kBgeu: taken = x >= y; break;
        default: break;
      }
      if (taken) {
        next_ip = s.ip + imm;
      }
      break;
    }
    case Opcode::kJmp: next_ip = s.ip + imm; break;
    case Opcode::kJal:
      s.regs[kRegLr] = s.ip + 4;
      next_ip = s.ip + imm;
      break;
    case Opcode::kJr: next_ip = a; break;
    case Opcode::kJalr:
      next_ip = a;
      s.regs[kRegLr] = s.ip + 4;
      break;
    default:
      break;  // Not fuzzed.
  }
  s.ip = next_ip;
}

class CpuDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(CpuDifferentialTest, AluAndControlFlowMatchGoldenModel) {
  Xoshiro256 rng(static_cast<uint64_t>(GetParam()) * 48611 + 3);
  Bus bus;
  Ram ram("ram", 0, 0x2'0000);
  SysCtl sysctl(kSysCtlBase);
  bus.Attach(&ram);
  bus.Attach(&sysctl);
  Cpu cpu(&bus, &sysctl, CpuConfig{});

  // Fuzzable opcode pool (no memory / system ops: those need environment).
  const Opcode pool[] = {
      Opcode::kNop,  Opcode::kAdd,  Opcode::kSub,  Opcode::kAnd,
      Opcode::kOr,   Opcode::kXor,  Opcode::kShl,  Opcode::kShr,
      Opcode::kSra,  Opcode::kMul,  Opcode::kSltu, Opcode::kSlt,
      Opcode::kAddi, Opcode::kAndi, Opcode::kOri,  Opcode::kXori,
      Opcode::kShli, Opcode::kShri, Opcode::kSrai, Opcode::kMovi,
      Opcode::kLui,  Opcode::kBeq,  Opcode::kBne,  Opcode::kBlt,
      Opcode::kBge,  Opcode::kBltu, Opcode::kBgeu, Opcode::kJmp,
      Opcode::kJal,  Opcode::kJr,   Opcode::kJalr};

  for (int round = 0; round < 400; ++round) {
    Instruction insn;
    insn.opcode = pool[rng.NextBelow(sizeof(pool) / sizeof(pool[0]))];
    insn.rd = static_cast<uint8_t>(rng.NextBelow(16));
    insn.rs1 = static_cast<uint8_t>(rng.NextBelow(16));
    insn.rs2 = static_cast<uint8_t>(rng.NextBelow(16));
    switch (FormatOf(insn.opcode)) {
      case InstructionFormat::kI:
        insn.imm = SignExtend(rng.Next32(), 18);
        break;
      case InstructionFormat::kU:
        insn.imm = static_cast<int32_t>(rng.NextBelow(1u << 22));
        break;
      case InstructionFormat::kB:
        insn.imm =
            (static_cast<int32_t>(rng.NextBelow(0x3FFFF)) - 0x1FFFF) * 4;
        break;
      case InstructionFormat::kJ:
        insn.imm =
            (static_cast<int32_t>(rng.NextBelow(0x3FFFFF)) - 0x1FFFFF) * 4;
        break;
      default:
        break;
    }

    // Random register file; jr/jalr need an executable-ish target, but we
    // only compare the architectural transition, so any value is fine (the
    // next fetch never happens: we step exactly once).
    RefState ref;
    ram.LoadBytes(kInsnAddr, {0, 0, 0, 0});
    uint8_t word_bytes[4];
    StoreLe32(word_bytes, Encode(insn));
    ram.LoadBytes(kInsnAddr,
                  std::vector<uint8_t>(word_bytes, word_bytes + 4));
    cpu.Reset(kInsnAddr);
    for (int r = 0; r < kNumRegisters; ++r) {
      const uint32_t value = rng.Next32();
      cpu.set_reg(r, value);
      ref.regs[r] = value;
    }
    ref.ip = kInsnAddr;

    ASSERT_EQ(cpu.Step(), StepEvent::kExecuted)
        << Disassemble(insn, kInsnAddr);
    RefExecute(ref, insn);

    for (int r = 0; r < kNumRegisters; ++r) {
      ASSERT_EQ(cpu.reg(r), ref.regs[r])
          << "reg " << RegisterName(r) << " after "
          << Disassemble(insn, kInsnAddr) << " (seed " << GetParam()
          << ", round " << round << ")";
    }
    ASSERT_EQ(cpu.ip(), ref.ip) << Disassemble(insn, kInsnAddr);
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, CpuDifferentialTest,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace trustlite
