// Copyright 2026 The TrustLite Reproduction Authors.
// Observability subsystem tests (DESIGN.md §12): lane mapping, the
// per-trustlet profiler replaying the paper's Fig. 6 preemptive schedule
// (nanOS + 2 trustlets) against the Sec. 5.4 cycle constants, the Chrome
// trace-event exporter (golden file + schema), the JSON validator, and the
// reset semantics of CPU/tracer/profiler telemetry.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/loader/system_image.h"
#include "src/os/nanos.h"
#include "src/platform/observe/chrome_trace.h"
#include "src/platform/observe/json.h"
#include "src/platform/observe/lanes.h"
#include "src/platform/observe/profiler.h"
#include "src/platform/platform.h"
#include "src/platform/trace.h"
#include "src/trustlet/builder.h"

namespace trustlite {
namespace {

void LoadAt(Platform& platform, const std::string& source, uint32_t origin) {
  Result<AsmOutput> out = Assemble(source, origin);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (const AsmChunk& chunk : out->chunks) {
    ASSERT_TRUE(platform.bus().HostWriteBytes(chunk.base, chunk.bytes));
  }
}

// ---------------------------------------------------------------------------
// JSON validator.

TEST(JsonValidatorTest, AcceptsWellFormedDocuments) {
  EXPECT_TRUE(JsonParses("{}"));
  EXPECT_TRUE(JsonParses("[]"));
  EXPECT_TRUE(JsonParses("  {\"a\": [1, 2.5, -3e4, true, false, null]}  "));
  EXPECT_TRUE(JsonParses("{\"nested\": {\"deep\": [[[{\"x\": \"y\"}]]]}}"));
  EXPECT_TRUE(JsonParses("\"bare string\""));
  EXPECT_TRUE(JsonParses("42"));
  EXPECT_TRUE(
      JsonParses("{\"esc\": \"a\\\"b\\\\c\\n\\t\\u00e9\", \"u\": \"\\u0041\"}"));
}

TEST(JsonValidatorTest, RejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(JsonParses("", &error));
  EXPECT_FALSE(JsonParses("{", &error));
  EXPECT_FALSE(JsonParses("{} trailing", &error));
  EXPECT_NE(error.find("offset"), std::string::npos);
  EXPECT_FALSE(JsonParses("{\"a\": }"));
  EXPECT_FALSE(JsonParses("[1, 2,]"));         // Trailing comma.
  EXPECT_FALSE(JsonParses("{\"a\" 1}"));       // Missing colon.
  EXPECT_FALSE(JsonParses("tru"));             // Truncated literal.
  EXPECT_FALSE(JsonParses("\"bad \\x esc\"")); // Unknown escape.
  EXPECT_FALSE(JsonParses("\"unterminated"));
  EXPECT_FALSE(JsonParses("01"));              // Leading zero.
  EXPECT_FALSE(JsonParses("{'a': 1}"));        // Single quotes.
}

TEST(JsonValidatorTest, RejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  std::string error;
  EXPECT_FALSE(JsonParses(deep, &error));
  EXPECT_NE(error.find("nest"), std::string::npos);
  // Depth just under the cap is fine.
  std::string ok;
  for (int i = 0; i < 32; ++i) ok += '[';
  for (int i = 0; i < 32; ++i) ok += ']';
  EXPECT_TRUE(JsonParses(ok));
}

// ---------------------------------------------------------------------------
// Lane map.

TEST(LaneMapTest, MapsAddressesWithCatchAllFallback) {
  LaneMap map;
  EXPECT_EQ(map.num_lanes(), 1);  // Catch-all lane 0 always exists.
  const int a = map.AddLane("a", 0x1000, 0x2000);
  const int b = map.AddLane("b", 0x2000, 0x2800, /*is_os=*/true);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(map.LaneFor(0x0FFC), 0);
  EXPECT_EQ(map.LaneFor(0x1000), a);  // Base inclusive.
  EXPECT_EQ(map.LaneFor(0x1FFC), a);
  EXPECT_EQ(map.LaneFor(0x2000), b);  // End exclusive for `a`.
  EXPECT_EQ(map.LaneFor(0x2800), 0);
  EXPECT_TRUE(map.lane(b).is_os);
  // Memoized repeat lookups stay correct.
  EXPECT_EQ(map.LaneFor(0x1004), a);
  EXPECT_EQ(map.LaneFor(0x1004), a);
}

// ---------------------------------------------------------------------------
// Fig. 6 profiler replay: nanOS + two preemptively scheduled trustlets.

struct PreemptiveSystem {
  Platform platform;
  LoadReport report;
};

// Replicates the paper-eval scenario (Fig. 6): two trustlets spinning under
// nanOS round-robin scheduling with a fast timer tick.
std::unique_ptr<PreemptiveSystem> BuildPreemptiveSystem(uint32_t timer_period) {
  auto sys = std::make_unique<PreemptiveSystem>();
  SystemImage image;
  for (int i = 0; i < 2; ++i) {
    TrustletBuildSpec spec;
    spec.name = "T" + std::to_string(i);
    spec.code_addr = 0x11000 + static_cast<uint32_t>(i) * 0x2000;
    spec.data_addr = 0x12000 + static_cast<uint32_t>(i) * 0x2000;
    spec.data_size = 0x400;
    spec.stack_size = 0x100;
    spec.body = "tl_main:\nloop:\n    addi r1, r1, 1\n    jmp loop\n";
    image.Add(*BuildTrustlet(spec));
  }
  NanosConfig os_config;
  os_config.timer_period = timer_period;
  image.Add(*BuildNanos(os_config));
  if (!sys->platform.InstallImage(image).ok()) return nullptr;
  Result<LoadReport> report = sys->platform.BootAndLaunch();
  if (!report.ok()) return nullptr;
  sys->report = *report;
  return sys;
}

TEST(ProfilerTest, Fig6ScheduleReproducesSec54EntryCosts) {
  auto sys = BuildPreemptiveSystem(/*timer_period=*/500);
  ASSERT_NE(sys, nullptr);
  Platform& platform = sys->platform;

  TrustletProfiler profiler;
  profiler.ConfigureFromReport(*platform.mpu(), sys->report);
  ASSERT_EQ(profiler.num_lanes(), 4);  // untrusted + T0 + T1 + nanOS.
  platform.AddEventSink(&profiler);
  const uint64_t cycles_before = platform.cpu().cycles();

  platform.Run(20000);
  platform.RemoveEventSink(&profiler);
  const uint64_t cycle_delta = platform.cpu().cycles() - cycles_before;

  // Sec. 5.4 constants from the default cycle model.
  const CycleModel model = PlatformConfig().cycles;
  const uint64_t os_entry_cost = model.exception_base + model.secure_detect;
  const uint64_t trustlet_entry_cost = model.exception_base +
                                       model.secure_detect +
                                       model.secure_state_save +
                                       model.secure_clear_and_sp;
  EXPECT_EQ(os_entry_cost, 23u);
  EXPECT_EQ(trustlet_entry_cost, 42u);

  int os_lanes = 0;
  int trustlet_lanes = 0;
  uint64_t lane_cycle_sum = 0;
  uint64_t trustlet_preemptions = 0;
  for (int i = 0; i < profiler.num_lanes(); ++i) {
    const LaneProfile& lane = profiler.lane(i);
    lane_cycle_sum += lane.cycles;
    // Clean schedule: no protection faults anywhere.
    EXPECT_EQ(lane.mpu_faults, 0u) << lane.name;
    if (i == 0) {
      // Nothing executes outside the loaded code regions.
      EXPECT_EQ(lane.instructions, 0u);
      EXPECT_EQ(lane.cycles, 0u);
      continue;
    }
    const uint64_t displacements = lane.interrupts + lane.exceptions;
    if (lane.is_os) {
      ++os_lanes;
      // Interrupting the OS takes the secure-detect path but no full save.
      EXPECT_EQ(lane.entry_cycles, displacements * os_entry_cost) << lane.name;
      EXPECT_EQ(lane.secure_entries, 0u) << lane.name;
      EXPECT_GT(lane.instructions, 0u) << lane.name;
    } else {
      ++trustlet_lanes;
      // Every preemption of a running trustlet pays the full 42-cycle
      // secure entry (Sec. 5.4: save all-but-SP, clear GPRs, park SP in
      // the Trustlet Table).
      EXPECT_EQ(lane.entry_cycles, displacements * trustlet_entry_cost)
          << lane.name;
      EXPECT_EQ(lane.secure_entries, displacements) << lane.name;
      EXPECT_GT(lane.secure_entries, 0u) << lane.name;
      EXPECT_GT(lane.instructions, 0u) << lane.name;
      trustlet_preemptions += lane.secure_entries;
    }
  }
  EXPECT_EQ(os_lanes, 1);
  EXPECT_EQ(trustlet_lanes, 2);
  // The round-robin actually alternated: many preemptions in the window.
  EXPECT_GT(trustlet_preemptions, 10u);

  // Accounting invariant: with no faults in the window, every cycle the CPU
  // charged lands in exactly one lane.
  EXPECT_EQ(lane_cycle_sum, cycle_delta);
  EXPECT_EQ(profiler.total_cycles(), cycle_delta);
  EXPECT_EQ(profiler.os_cycles() + profiler.trustlet_cycles() +
                profiler.untrusted_cycles(),
            profiler.total_cycles());

  const std::string table = profiler.ToString();
  EXPECT_NE(table.find("os"), std::string::npos);
  EXPECT_NE(table.find("split:"), std::string::npos);
}

TEST(ProfilerTest, ClearKeepsLaneConfiguration) {
  TrustletProfiler profiler;
  profiler.AddLane("x", 0x1000, 0x2000);
  InsnEvent insn;
  insn.cycle = 10;
  insn.ip = 0x1000;
  insn.cost = 2;
  profiler.OnInstruction(insn);
  EXPECT_EQ(profiler.lane(1).instructions, 1u);
  profiler.Clear();
  EXPECT_EQ(profiler.num_lanes(), 2);
  EXPECT_EQ(profiler.lane(1).instructions, 0u);
  EXPECT_EQ(profiler.lane(1).name, "x");
}

// ---------------------------------------------------------------------------
// Chrome trace exporter.

// Deterministic smoke scenario: guest code arms the timer, spins; the ISR
// (in its own lane) prints one byte and halts. Exercises execution spans,
// the IRQ raise→recognition arrow, the dispatch flow, instants, and halt.
void RunChromeSmokeScenario(ChromeTraceWriter* writer) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  Result<AsmOutput> out = Assemble(R"(
start:
    li  r1, 0xF0002000
    movi r2, 40
    stw r2, [r1 + 4]
    la  r2, isr
    stw r2, [r1 + 12]
    movi r2, 7
    stw r2, [r1 + 0]
    li  sp, 0x3c000
    sti
idle:
    jmp idle
.org 0x30100
isr:
    li  r9, 0xF0003000
    movi r5, '!'
    stw r5, [r9]
    halt
)",
                                   0x30000);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (const AsmChunk& chunk : out->chunks) {
    ASSERT_TRUE(platform.bus().HostWriteBytes(chunk.base, chunk.bytes));
  }
  platform.cpu().Reset(0x30000);

  writer->AddLane("guest", 0x30000, 0x30100);
  writer->AddLane("isr", 0x30100, 0x30200);
  platform.AddEventSink(writer);
  platform.Run(10000);
  ASSERT_TRUE(platform.cpu().halted());
  ASSERT_EQ(platform.uart().output(), "!");
  platform.RemoveEventSink(writer);
  writer->Finish();
}

TEST(ChromeTraceTest, SmokeScenarioMatchesGoldenFile) {
  ChromeTraceWriter writer;
  RunChromeSmokeScenario(&writer);
  const std::string json = writer.Json();

  // Structural checks first: a valid Chrome trace document with the
  // expected record kinds.
  std::string error;
  EXPECT_TRUE(JsonParses(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"exec\",\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"entry:irq\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // Flow start.
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);  // Flow finish.
  EXPECT_NE(json.find("\"name\":\"uart:!\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"halt\""), std::string::npos);
  EXPECT_NE(json.find("\"guest\""), std::string::npos);
  EXPECT_NE(json.find("\"isr\""), std::string::npos);
  EXPECT_EQ(writer.dropped(), 0u);

  const std::string golden_path =
      std::string(TRUSTLITE_TEST_SRCDIR) + "/golden/chrome_trace_smoke.json";
  if (std::getenv("TRUSTLITE_REGEN_GOLDEN") != nullptr) {
    std::ofstream regen(golden_path, std::ios::binary);
    ASSERT_TRUE(regen.good());
    regen << json;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (rerun with TRUSTLITE_REGEN_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  // The simulator is deterministic, the serializer uses a fixed field
  // order: the export is byte-stable.
  EXPECT_EQ(json, golden.str());
}

TEST(ChromeTraceTest, PreemptiveSystemTraceIsValidJson) {
  auto sys = BuildPreemptiveSystem(/*timer_period=*/500);
  ASSERT_NE(sys, nullptr);
  ChromeTraceWriter writer;
  writer.ConfigureFromReport(*sys->platform.mpu(), sys->report);
  sys->platform.AddEventSink(&writer);
  sys->platform.Run(20000);
  sys->platform.RemoveEventSink(&writer);
  const std::string json = writer.Json();
  std::string error;
  EXPECT_TRUE(JsonParses(json, &error)) << error;
  EXPECT_GT(writer.event_count(), 100u);
  EXPECT_EQ(writer.dropped(), 0u);
  // Lane metadata for all four lanes made it into the trace.
  EXPECT_NE(json.find("\"os\""), std::string::npos);
  EXPECT_NE(json.find("\"trustlet-"), std::string::npos);
  EXPECT_NE(json.find("\"untrusted\""), std::string::npos);
}

TEST(ChromeTraceTest, EventCapCountsDropsAndStaysValid) {
  auto sys = BuildPreemptiveSystem(/*timer_period=*/500);
  ASSERT_NE(sys, nullptr);
  ChromeTraceWriter writer(/*max_events=*/16);
  writer.ConfigureFromReport(*sys->platform.mpu(), sys->report);
  sys->platform.AddEventSink(&writer);
  sys->platform.Run(20000);
  sys->platform.RemoveEventSink(&writer);
  EXPECT_GT(writer.dropped(), 0u);
  EXPECT_LE(writer.event_count(), 16u);
  const std::string json = writer.Json();
  std::string error;
  EXPECT_TRUE(JsonParses(json, &error)) << error;
  EXPECT_NE(json.find("\"dropped\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Reset semantics (satellite audit): host telemetry is cumulative across
// HardReset, architectural per-run state is not.

TEST(ResetSemanticsTest, HardResetClearsEntryLatchKeepsTelemetry) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  LoadAt(platform, R"(
    li  r9, 0xF0000000
    la  r2, swi_handler
    stw r2, [r9 + 32]
    li  sp, 0x3c000
    swi 0
    halt
swi_handler:
    addi sp, sp, 4
    iret
)",
         0x30000);
  platform.cpu().Reset(0x30000);

  TrustletProfiler profiler;
  ExecutionTracer tracer;
  platform.AddEventSink(&profiler);
  tracer.Run(&platform, 1000);
  ASSERT_TRUE(platform.cpu().halted());

  // The SWI entry latched its cost (regular engine + secure detect).
  const uint32_t latched = platform.cpu().last_exception_entry_cycles();
  ASSERT_GT(latched, 0u);
  EXPECT_EQ(tracer.counts().exceptions, 1u);

  const uint64_t insns_before = platform.cpu().stats().instructions;
  const uint64_t cycles_before = platform.cpu().cycles();
  ASSERT_GT(insns_before, 0u);

  platform.HardReset();

  // Architectural per-run state is cleared — a fault-injection campaign
  // reading the latch after reset must not see the previous run's entry
  // cost (regression: the latch used to survive Reset).
  EXPECT_EQ(platform.cpu().last_exception_entry_cycles(), 0u);
  EXPECT_FALSE(platform.cpu().halted());

  // Host-side telemetry is cumulative across HardReset (documented
  // semantics: cpu.h / platform.h).
  EXPECT_EQ(platform.cpu().stats().instructions, insns_before);
  EXPECT_EQ(platform.cpu().cycles(), cycles_before);
  EXPECT_EQ(tracer.counts().exceptions, 1u);

  // Attached sinks observed the reset epoch boundary.
  EXPECT_EQ(profiler.resets(), 1u);
  platform.RemoveEventSink(&profiler);
}

TEST(ResetSemanticsTest, TracerClearZeroesCountsAndRing) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  LoadAt(platform, R"(
    movi r1, 1
    halt
)",
         0x30000);
  platform.cpu().Reset(0x30000);
  ExecutionTracer tracer(/*capacity=*/8, /*record_instructions=*/true);
  tracer.Run(&platform, 100);
  ASSERT_GT(tracer.counts().instructions, 0u);
  ASSERT_FALSE(tracer.events().empty());
  tracer.Clear();
  EXPECT_EQ(tracer.counts().instructions, 0u);
  EXPECT_EQ(tracer.counts().uart_bytes, 0u);
  EXPECT_TRUE(tracer.events().empty());
}

}  // namespace
}  // namespace trustlite
