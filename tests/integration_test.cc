// Copyright 2026 The TrustLite Reproduction Authors.
//
// Full-system integration tests: Secure Loader + EA-MPU + secure exception
// engine + nanOS + service trustlets, exercising each requirement of paper
// Sec. 2.3 end to end — data isolation, attestation, trusted IPC, secure
// peripherals, protected state, fault tolerance.

#include <gtest/gtest.h>

#include "src/crypto/sha256.h"
#include "src/isa/assembler.h"
#include "src/loader/system_image.h"
#include "src/os/nanos.h"
#include "src/platform/platform.h"
#include "src/services/attestation.h"
#include "src/services/trusted_ipc.h"
#include "src/trustlet/builder.h"
#include "src/trustlet/trustlet_table.h"

namespace trustlite {
namespace {

constexpr uint32_t kMailbox = 0x0003'0000;

class IntegrationTest : public ::testing::Test {
 protected:
  void InstallAndBoot(SystemImage& image) {
    ASSERT_TRUE(platform_.InstallImage(image).ok());
    Result<LoadReport> report = platform_.BootAndLaunch();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    report_ = *report;
  }

  uint32_t Word(uint32_t addr) {
    uint32_t value = 0;
    EXPECT_TRUE(platform_.bus().HostReadWord(addr, &value));
    return value;
  }

  Platform platform_;
  LoadReport report_;
};

// A do-nothing trustlet used as an attestation target / victim.
TrustletBuildSpec VictimSpec(const std::string& name, uint32_t code,
                             uint32_t data) {
  TrustletBuildSpec spec;
  spec.name = name;
  spec.code_addr = code;
  spec.data_addr = data;
  spec.data_size = 0x400;
  spec.stack_size = 0x100;
  spec.body = R"(
tl_main:
    li  r4, TL_DATA
    li  r5, 0x5EC12E7        ; a "secret" in the protected data region
    stw r5, [r4 + 64]
spin:
    swi 0
    jmp spin
)";
  return spec;
}

TEST_F(IntegrationTest, OsCannotReadOrWriteTrustletData) {
  // Data Isolation (Sec. 2.3): nanOS, with an init hook that tries to read
  // the victim's data region, faults and halts before scheduling anything.
  SystemImage image;
  Result<TrustletMeta> victim = BuildTrustlet(VictimSpec("VIC", 0x11000, 0x12000));
  ASSERT_TRUE(victim.ok());
  image.Add(*victim);
  NanosConfig config;
  config.init_hook = R"(
    li  r9, 0x12040
    ldw r9, [r9]             ; read the victim's data -> MPU fault
)";
  Result<TrustletMeta> os = BuildNanos(config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  InstallAndBoot(image);

  platform_.Run(50000);
  // nanOS's fault policy: a fault from the OS itself halts the platform.
  ASSERT_TRUE(platform_.cpu().halted());
  // The MPU latched the violation (the fault handler acknowledges
  // FAULT_INFO, but FAULT_ADDR keeps the last violation).
  EXPECT_EQ(Word(kMpuMmioBase + kMpuRegFaultAddr), 0x12040u);
}

TEST_F(IntegrationTest, OsCannotJumpIntoTrustletCodeBody) {
  // Entry vectors (Sec. 4.1): executing any trustlet address except the
  // entry vector faults.
  SystemImage image;
  Result<TrustletMeta> victim = BuildTrustlet(VictimSpec("VIC", 0x11000, 0x12000));
  ASSERT_TRUE(victim.ok());
  image.Add(*victim);
  NanosConfig config;
  config.init_hook = R"(
    li  r9, 0x11010          ; mid-body address (not the entry vector)
    jr  r9
)";
  Result<TrustletMeta> os = BuildNanos(config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  InstallAndBoot(image);
  platform_.Run(50000);
  ASSERT_TRUE(platform_.cpu().halted());
  EXPECT_EQ(Word(kMpuMmioBase + kMpuRegFaultAddr), 0x11010u);
}

TEST_F(IntegrationTest, AttestationReportMatchesVerifier) {
  // Attestation (Sec. 2.3): the attestation trustlet reports over the live
  // code of a target; the host verifier recomputes it.
  SystemImage image;
  Result<TrustletMeta> victim = BuildTrustlet(VictimSpec("VIC", 0x11000, 0x12000));
  ASSERT_TRUE(victim.ok());
  image.Add(*victim);

  AttestationSpec attn;
  attn.code_addr = 0x15000;
  attn.data_addr = 0x16000;
  attn.mailbox_addr = kMailbox;
  for (size_t i = 0; i < attn.key.size(); ++i) {
    attn.key[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  Result<TrustletMeta> attn_meta = BuildAttestationTrustlet(attn);
  ASSERT_TRUE(attn_meta.ok()) << attn_meta.status().ToString();
  image.Add(*attn_meta);

  NanosConfig os_config;
  os_config.timer_period = 2000;
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  InstallAndBoot(image);

  WriteAttestationRequest(&platform_.bus(), kMailbox, /*challenge=*/0xC4A11E46,
                          MakeTrustletId("VIC"));
  platform_.Run(300000);

  uint32_t status = 0;
  Sha256Digest report;
  ASSERT_TRUE(ReadAttestationReport(&platform_.bus(), kMailbox, &status, &report));
  EXPECT_EQ(status, kAttestStatusOk);

  // Verifier side: read the code as placed in RAM (== what the trustlet saw).
  std::vector<uint8_t> live_code;
  ASSERT_TRUE(platform_.bus().HostReadBytes(
      0x11000, static_cast<uint32_t>(victim->code.size()), &live_code));
  EXPECT_EQ(report,
            ExpectedAttestationReport(attn.key, 0xC4A11E46, live_code));

  // Unknown targets are reported as such.
  WriteAttestationRequest(&platform_.bus(), kMailbox, 1, MakeTrustletId("ZZ"));
  platform_.Run(300000);
  ASSERT_TRUE(ReadAttestationReport(&platform_.bus(), kMailbox, &status, &report));
  EXPECT_EQ(status, kAttestStatusUnknownTarget);
}

TEST_F(IntegrationTest, AttestationDetectsCodeTampering) {
  SystemImage image;
  Result<TrustletMeta> victim = BuildTrustlet(VictimSpec("VIC", 0x11000, 0x12000));
  ASSERT_TRUE(victim.ok());
  image.Add(*victim);
  AttestationSpec attn;
  attn.code_addr = 0x15000;
  attn.data_addr = 0x16000;
  attn.mailbox_addr = kMailbox;
  attn.key.fill(0x11);
  Result<TrustletMeta> attn_meta = BuildAttestationTrustlet(attn);
  ASSERT_TRUE(attn_meta.ok());
  image.Add(*attn_meta);
  NanosConfig os_config;
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  InstallAndBoot(image);

  WriteAttestationRequest(&platform_.bus(), kMailbox, 7, MakeTrustletId("VIC"));
  platform_.Run(300000);
  uint32_t status = 0;
  Sha256Digest clean_report;
  ASSERT_TRUE(ReadAttestationReport(&platform_.bus(), kMailbox, &status,
                                    &clean_report));
  ASSERT_EQ(status, kAttestStatusOk);

  // Tamper with one instruction of the victim (host-level fault injection —
  // guests cannot do this; the code region is write-protected).
  uint32_t word = 0;
  ASSERT_TRUE(platform_.bus().HostReadWord(0x11020, &word));
  ASSERT_TRUE(platform_.bus().HostWriteWord(0x11020, word ^ 0x1));

  WriteAttestationRequest(&platform_.bus(), kMailbox, 7, MakeTrustletId("VIC"));
  platform_.Run(300000);
  Sha256Digest tampered_report;
  ASSERT_TRUE(ReadAttestationReport(&platform_.bus(), kMailbox, &status,
                                    &tampered_report));
  ASSERT_EQ(status, kAttestStatusOk);
  EXPECT_NE(clean_report, tampered_report);
}

TEST_F(IntegrationTest, TrustedIpcEstablishesMatchingTokens) {
  // Trusted IPC (Sec. 4.2.2): one-round handshake, matching session tokens
  // on both ends, authenticated message accepted.
  TrustedIpcSpec ipc;
  ipc.initiator_code = 0x11000;
  ipc.initiator_data = 0x12000;
  ipc.responder_code = 0x13000;
  ipc.responder_data = 0x14000;
  SystemImage image;
  Result<TrustletMeta> initiator = BuildIpcInitiator(ipc);
  Result<TrustletMeta> responder = BuildIpcResponder(ipc);
  ASSERT_TRUE(initiator.ok()) << initiator.status().ToString();
  ASSERT_TRUE(responder.ok()) << responder.status().ToString();
  image.Add(*responder);  // Loaded first: the initiator must still find it.
  image.Add(*initiator);
  NanosConfig os_config;
  os_config.timer_period = 5000;
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  InstallAndBoot(image);

  platform_.Run(400000);
  ASSERT_FALSE(platform_.cpu().halted()) << platform_.cpu().trap().reason;

  // Initiator state: 2 = token established; no failure flag.
  EXPECT_EQ(Word(ipc.initiator_data + kIpcInitState), 2u);
  EXPECT_EQ(Word(ipc.initiator_data + kIpcInitFail), 0u);

  // Both token copies match each other and the host model.
  Sha256Digest token_a;
  Sha256Digest token_b;
  ASSERT_TRUE(ReadGuestToken(&platform_.bus(),
                             ipc.initiator_data + kIpcInitToken, &token_a));
  ASSERT_TRUE(ReadGuestToken(&platform_.bus(),
                             ipc.responder_data + kIpcRespToken, &token_b));
  EXPECT_EQ(token_a, token_b);
  const uint32_t na = Word(ipc.initiator_data + kIpcInitNa);
  const uint32_t nb = Word(ipc.responder_data + kIpcRespNb);
  EXPECT_EQ(token_a, ComputeSessionToken(MakeTrustletId("TLA"),
                                         MakeTrustletId("TLB"), na, nb));

  // The responder resolved the initiator's identity and accepted the
  // authenticated message.
  EXPECT_EQ(Word(ipc.responder_data + kIpcRespPeerId), MakeTrustletId("TLA"));
  EXPECT_EQ(Word(ipc.responder_data + kIpcRespAccepted), ipc.message);
  EXPECT_EQ(Word(ipc.responder_data + kIpcRespRejects), 0u);
}

TEST_F(IntegrationTest, TrustedIpcRejectsBadTag) {
  TrustedIpcSpec ipc;
  ipc.initiator_code = 0x11000;
  ipc.initiator_data = 0x12000;
  ipc.responder_code = 0x13000;
  ipc.responder_data = 0x14000;
  ipc.corrupt_tag = true;
  SystemImage image;
  Result<TrustletMeta> initiator = BuildIpcInitiator(ipc);
  Result<TrustletMeta> responder = BuildIpcResponder(ipc);
  ASSERT_TRUE(initiator.ok());
  ASSERT_TRUE(responder.ok());
  image.Add(*responder);
  image.Add(*initiator);
  NanosConfig os_config;
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  InstallAndBoot(image);

  platform_.Run(400000);
  EXPECT_EQ(Word(ipc.responder_data + kIpcRespAccepted), 0u);
  EXPECT_EQ(Word(ipc.responder_data + kIpcRespRejects), 1u);
}

TEST_F(IntegrationTest, TrustedIpcDetectsTamperedResponder) {
  // The initiator measures the responder's live code before the handshake;
  // a mismatch (vs the loader's Trustlet Table measurement) aborts with the
  // failure flag and no syn is ever sent.
  TrustedIpcSpec ipc;
  ipc.initiator_code = 0x11000;
  ipc.initiator_data = 0x12000;
  ipc.responder_code = 0x13000;
  ipc.responder_data = 0x14000;
  SystemImage image;
  Result<TrustletMeta> initiator = BuildIpcInitiator(ipc);
  Result<TrustletMeta> responder = BuildIpcResponder(ipc);
  ASSERT_TRUE(initiator.ok());
  ASSERT_TRUE(responder.ok());
  image.Add(*responder);
  image.Add(*initiator);
  NanosConfig os_config;
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  ASSERT_TRUE(platform_.InstallImage(image).ok());
  Result<LoadReport> report = platform_.BootAndLaunch();
  ASSERT_TRUE(report.ok());

  // Host-level fault injection into the responder's code after the loader
  // measured it.
  uint32_t word = 0;
  ASSERT_TRUE(platform_.bus().HostReadWord(0x13040, &word));
  ASSERT_TRUE(platform_.bus().HostWriteWord(0x13040, word ^ 0x4));

  platform_.Run(400000);
  EXPECT_EQ(Word(ipc.initiator_data + kIpcInitFail), 1u);
  EXPECT_EQ(Word(ipc.initiator_data + kIpcInitState), 0u);
  EXPECT_EQ(Word(ipc.responder_data + kIpcRespAccepted), 0u);
}

TEST_F(IntegrationTest, MutualAttestationAcceptsCleanInitiator) {
  TrustedIpcSpec ipc;
  ipc.initiator_code = 0x11000;
  ipc.initiator_data = 0x12000;
  ipc.responder_code = 0x13000;
  ipc.responder_data = 0x14000;
  ipc.mutual_attestation = true;
  SystemImage image;
  image.Add(*BuildIpcResponder(ipc));
  image.Add(*BuildIpcInitiator(ipc));
  NanosConfig os_config;
  image.Add(*BuildNanos(os_config));
  InstallAndBoot(image);
  platform_.Run(600000);
  EXPECT_EQ(Word(ipc.initiator_data + kIpcInitState), 2u);
  EXPECT_EQ(Word(ipc.responder_data + kIpcRespAccepted), ipc.message);
}

TEST_F(IntegrationTest, MutualAttestationRefusesTamperedInitiator) {
  // B hashes A before revealing NB; fault-inject A after boot and the
  // handshake never completes (B refuses at syn time).
  TrustedIpcSpec ipc;
  ipc.initiator_code = 0x11000;
  ipc.initiator_data = 0x12000;
  ipc.responder_code = 0x13000;
  ipc.responder_data = 0x14000;
  ipc.mutual_attestation = true;
  // The initiator must not check B (so the handshake failure is
  // attributable to B's refusal, not A's own check).
  ipc.skip_measurement_check = true;
  SystemImage image;
  Result<TrustletMeta> initiator = BuildIpcInitiator(ipc);
  ASSERT_TRUE(initiator.ok());
  image.Add(*BuildIpcResponder(ipc));
  image.Add(*initiator);
  NanosConfig os_config;
  image.Add(*BuildNanos(os_config));
  InstallAndBoot(image);

  // Tamper a non-executed word of A's code (its default tl_handle_call tail
  // is unused before the handshake... it IS used for the ACK; use the last
  // data-ish word instead: the final instruction of a_park's loop is
  // executed, so pick the very last code word only if unused — instead we
  // flip a byte in A's *body constants* area: the initial frame resumes at
  // tl_main which re-executes, so choose the last word of the code image
  // (the generated default handler does not exist here; the last word is
  // a_park's jmp). Safest: append is hard — flip the entry-vector padding
  // word (tl_tt_slot is patched by the loader; flipping the *scaffold
  // dispatch* would crash). We flip the last word and accept that A may be
  // killed by nanOS — the assertion only requires that no channel forms.
  const uint32_t last_word =
      initiator->code_addr + static_cast<uint32_t>(initiator->code.size()) - 4;
  uint32_t word = 0;
  ASSERT_TRUE(platform_.bus().HostReadWord(last_word, &word));
  ASSERT_TRUE(platform_.bus().HostWriteWord(last_word, word ^ 0x1));

  platform_.Run(600000);
  EXPECT_EQ(Word(ipc.responder_data + kIpcRespAccepted), 0u);
  EXPECT_EQ(Word(ipc.responder_data + kIpcRespNb), 0u);  // NB never drawn.
}

TEST_F(IntegrationTest, LongSoakAllServicesCoexist) {
  // Liveness/isolation soak: attestation service + two counting trustlets
  // + an app + preemptive nanOS, run for 1.5M instructions.
  SystemImage image;
  TrustletBuildSpec worker1 = VictimSpec("W1", 0x11000, 0x12000);
  worker1.body = R"(
tl_main:
    li  r4, 0x30040
    movi r1, 0
loop:
    addi r1, r1, 1
    stw r1, [r4]
    jmp loop
)";
  TrustletBuildSpec worker2 = VictimSpec("W2", 0x13000, 0x14000);
  worker2.body = R"(
tl_main:
    li  r4, 0x30044
    movi r1, 0
loop:
    addi r1, r1, 1
    stw r1, [r4]
    jmp loop
)";
  image.Add(*BuildTrustlet(worker1));
  image.Add(*BuildTrustlet(worker2));
  AttestationSpec attn;
  attn.code_addr = 0x15000;
  attn.data_addr = 0x16000;
  attn.mailbox_addr = kMailbox;
  attn.key.fill(0x55);
  image.Add(*BuildAttestationTrustlet(attn));
  Result<AsmOutput> app = Assemble(R"(
.org 0x100000
app:
    li  r4, 0x30048
    movi r1, 0
app_loop:
    addi r1, r1, 1
    stw r1, [r4]
    jmp app_loop
)");
  ASSERT_TRUE(app.ok());
  uint32_t base = 0;
  image.AddProgram(0x100000, app->Flatten(&base));
  NanosConfig os_config;
  os_config.timer_period = 600;
  os_config.app_entry = 0x100000;
  os_config.app_sp = 0x180000;
  image.Add(*BuildNanos(os_config));
  InstallAndBoot(image);

  uint32_t prev_w1 = 0;
  for (int round = 0; round < 5; ++round) {
    WriteAttestationRequest(&platform_.bus(), kMailbox,
                            0x1000u + static_cast<uint32_t>(round),
                            MakeTrustletId("W1"));
    platform_.Run(300000);
    ASSERT_FALSE(platform_.cpu().halted())
        << platform_.cpu().trap().reason << " round " << round;
    uint32_t status = 0;
    Sha256Digest report;
    ASSERT_TRUE(
        ReadAttestationReport(&platform_.bus(), kMailbox, &status, &report))
        << round;
    EXPECT_EQ(status, kAttestStatusOk);
    // Monotone progress everywhere.
    const uint32_t w1 = Word(0x30040);
    EXPECT_GT(w1, prev_w1) << round;
    prev_w1 = w1;
  }
  EXPECT_GT(Word(0x30044), 1000u);
  EXPECT_GT(Word(0x30048), 1000u);
  EXPECT_GT(platform_.cpu().stats().trustlet_interrupts, 500u);
}

TEST_F(IntegrationTest, SecurePeripheralExclusiveToTrustlet) {
  // Secure Peripherals (Sec. 3.3): a trustlet with an exclusive GPIO grant
  // drives the device; the OS's later attempt to write it faults.
  TrustletBuildSpec display;
  display.name = "DSP";
  display.code_addr = 0x11000;
  display.data_addr = 0x12000;
  display.data_size = 0x400;
  display.stack_size = 0x100;
  display.grants.push_back(
      {kGpioBase, kGpioBase + kMmioBlockSize, kGrantRead | kGrantWrite});
  display.body = R"(
tl_main:
    li  r4, MMIO_GPIO
    li  r5, 0x7E57ED
    stw r5, [r4 + GPIO_OUT]
spin:
    swi 0
    jmp spin
)";
  SystemImage image;
  Result<TrustletMeta> tl = BuildTrustlet(display);
  ASSERT_TRUE(tl.ok());
  image.Add(*tl);
  NanosConfig os_config;
  os_config.extra_body = R"(
; Hostile OS helper: poke the GPIO (should fault). Reached via init_hook
; scheduling trick below.
)";
  // Let the trustlet run first, then have the OS attempt the poke from its
  // idle path: patch via init hook that arms a flag the idle loop checks is
  // overkill — instead run the system, then re-enter the OS with a poke
  // program at an unprotected address.
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  InstallAndBoot(image);
  platform_.Run(100000);
  ASSERT_FALSE(platform_.cpu().halted());
  EXPECT_EQ(platform_.gpio().out(), 0x7E57EDu);  // Trustlet drove the LED.

  // Now simulate the compromised OS: execute a GPIO write from open memory.
  Result<AsmOutput> poke = Assemble(R"(
.org 0x30000
    li  r4, 0xF0006000
    movi r5, 0
    stw r5, [r4]
    halt
)");
  ASSERT_TRUE(poke.ok());
  for (const AsmChunk& chunk : poke->chunks) {
    ASSERT_TRUE(platform_.bus().HostWriteBytes(chunk.base, chunk.bytes));
  }
  platform_.cpu().Reset(0x30000);
  platform_.cpu().set_reg(kRegSp, 0x38000);
  platform_.Run(1000);
  // The write faulted (fault handler halts OS faults) and the GPIO output
  // still shows the trustlet's value.
  ASSERT_TRUE(platform_.cpu().halted());
  EXPECT_EQ(platform_.gpio().out(), 0x7E57EDu);
}

TEST_F(IntegrationTest, ProtectedStateSurvivesManyPreemptions) {
  // Protected State (Sec. 2.3): a trustlet computes a long checksum across
  // hundreds of preemptions; the result equals the host model, proving no
  // state was lost or corrupted by the OS's scheduling.
  TrustletBuildSpec checksum;
  checksum.name = "SUM";
  checksum.code_addr = 0x11000;
  checksum.data_addr = 0x12000;
  checksum.data_size = 0x400;
  checksum.stack_size = 0x100;
  checksum.body = R"(
tl_main:
    movi r1, 0               ; i
    movi r2, 0               ; sum
    li   r3, 20000           ; iterations
sum_loop:
    addi r1, r1, 1
    mul  r4, r1, r1
    add  r2, r2, r4          ; sum += i*i
    bne  r1, r3, sum_loop
    li   r4, 0x30010
    stw  r2, [r4]            ; publish result
park:
    swi 0
    jmp park
)";
  SystemImage image;
  Result<TrustletMeta> tl = BuildTrustlet(checksum);
  ASSERT_TRUE(tl.ok());
  image.Add(*tl);
  NanosConfig os_config;
  os_config.timer_period = 300;  // Aggressive preemption.
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  InstallAndBoot(image);

  platform_.Run(600000);
  ASSERT_FALSE(platform_.cpu().halted()) << platform_.cpu().trap().reason;
  uint32_t expected = 0;
  for (uint32_t i = 1; i <= 20000; ++i) {
    expected += i * i;
  }
  EXPECT_EQ(Word(0x30010), expected);
  EXPECT_GT(platform_.cpu().stats().trustlet_interrupts, 50u);
}

TEST_F(IntegrationTest, FieldUpdateChangesMeasurement) {
  // Field Updates (Sec. 2.3): reflashing PROM with a new trustlet version
  // and rebooting yields a different loader measurement.
  SystemImage v1;
  Result<TrustletMeta> tl1 = BuildTrustlet(VictimSpec("VIC", 0x11000, 0x12000));
  ASSERT_TRUE(tl1.ok());
  v1.Add(*tl1);
  NanosConfig os_config;
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  v1.Add(*os);
  InstallAndBoot(v1);
  TrustletTableView table(&platform_.bus(), kTrustletTableBase);
  const Sha256Digest m1 =
      table.ReadRow(*table.FindById(MakeTrustletId("VIC")))->measurement;

  // Field update: new version with different behaviour.
  TrustletBuildSpec v2spec = VictimSpec("VIC", 0x11000, 0x12000);
  v2spec.body = R"(
tl_main:
    li  r4, TL_DATA
    li  r5, 0x2222222
    stw r5, [r4 + 64]
spin:
    swi 0
    jmp spin
)";
  SystemImage v2;
  Result<TrustletMeta> tl2 = BuildTrustlet(v2spec);
  ASSERT_TRUE(tl2.ok());
  v2.Add(*tl2);
  Result<TrustletMeta> os2 = BuildNanos(os_config);
  ASSERT_TRUE(os2.ok());
  v2.Add(*os2);
  platform_.HardReset();
  InstallAndBoot(v2);
  const Sha256Digest m2 =
      table.ReadRow(*table.FindById(MakeTrustletId("VIC")))->measurement;
  EXPECT_NE(m1, m2);
}

}  // namespace
}  // namespace trustlite
