// Copyright 2026 The TrustLite Reproduction Authors.
//
// Nested interrupts (paper Sec. 3.4.2: "Our current analysis shows that the
// approach also works with nested interrupts, where an ISR may be
// interrupted by another ISR."). A trustlet is preempted (secure path), the
// first ISR re-enables interrupts and is itself preempted (regular path on
// the current OS stack); afterwards the trustlet's saved state is intact
// and it resumes correctly.

#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/platform/platform.h"

namespace trustlite {
namespace {

constexpr uint32_t kTlCode = 0x11000;
constexpr uint32_t kTlCodeEnd = 0x11100;
constexpr uint32_t kTlData = 0x12000;
constexpr uint32_t kTlDataEnd = 0x12100;
constexpr uint32_t kOsCode = 0x13000;
constexpr uint32_t kOsCodeEnd = 0x13400;
constexpr uint32_t kOsStackTop = 0x14000;
constexpr uint32_t kTlSpSlot = 0x15000;
constexpr uint32_t kOsSpSlot = 0x15004;
constexpr uint32_t kObs = 0x16000;

class NestedInterruptTest : public ::testing::Test {
 protected:
  NestedInterruptTest() : platform_(MakeConfig()) {
    Bus& bus = platform_.bus();
    auto region = [&](int i, uint32_t base, uint32_t end, uint32_t attr,
                      uint32_t slot) {
      const uint32_t reg = kMpuMmioBase + kMpuRegionBank +
                           static_cast<uint32_t>(i) * kMpuRegionStride;
      bus.HostWriteWord(reg + 0, base);
      bus.HostWriteWord(reg + 4, end);
      bus.HostWriteWord(reg + 8, attr);
      bus.HostWriteWord(reg + 12, slot);
    };
    auto rule = [&](int i, uint32_t subject, uint32_t object, bool r, bool w,
                    bool x) {
      bus.HostWriteWord(
          kMpuMmioBase + kMpuRuleBank + static_cast<uint32_t>(i) * 4,
          EncodeMpuRule(subject, object, r, w, x));
    };
    region(0, kTlCode, kTlCodeEnd, kMpuAttrEnable | kMpuAttrCode, kTlSpSlot);
    region(1, kTlData, kTlDataEnd, kMpuAttrEnable, 0);
    region(2, kOsCode, kOsCodeEnd, kMpuAttrEnable | kMpuAttrCode | kMpuAttrOs,
           kOsSpSlot);
    rule(0, 0, 0, true, false, true);
    rule(1, 0, 1, true, true, false);
    rule(2, kMpuSubjectAny, 0, false, false, true);
    rule(3, 2, 2, true, false, true);
    bus.HostWriteWord(kOsSpSlot, kOsStackTop);
    bus.HostWriteWord(kMpuMmioBase + kMpuRegCtrl, kMpuCtrlEnable);
  }

  static PlatformConfig MakeConfig() {
    PlatformConfig config;
    config.secure_exceptions = true;
    return config;
  }

  void LoadGuest(const std::string& source) {
    Result<AsmOutput> out = Assemble(source);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    for (const AsmChunk& chunk : out->chunks) {
      ASSERT_TRUE(platform_.bus().HostWriteBytes(chunk.base, chunk.bytes));
    }
  }

  uint32_t Word(uint32_t addr) {
    uint32_t value = 0;
    EXPECT_TRUE(platform_.bus().HostReadWord(addr, &value));
    return value;
  }

  Platform platform_;
};

TEST_F(NestedInterruptTest, IsrInterruptedByIsrPreservesTrustletState) {
  // Trustlet: marker registers + counter loop, with a continue() path.
  LoadGuest(R"(
.org 0x11000
entry:
    jmp  dispatch
dispatch:
    movi r15, 0
    beq  r0, r15, do_continue
tl_main:
    li   sp, 0x12100
    li   r2, 0xAAAA
    movi r1, 0
loop:
    addi r1, r1, 1
    li   r4, 0x16100
    stw  r1, [r4]
    jmp  loop
do_continue:
    li   r15, 0x15000
    ldw  sp,  [r15]
    ldw  r0,  [sp + 0]
    ldw  r1,  [sp + 4]
    ldw  r2,  [sp + 8]
    ldw  r3,  [sp + 12]
    ldw  r4,  [sp + 16]
    ldw  r5,  [sp + 20]
    ldw  r6,  [sp + 24]
    ldw  r7,  [sp + 28]
    ldw  r8,  [sp + 32]
    ldw  r9,  [sp + 36]
    ldw  r10, [sp + 40]
    ldw  r11, [sp + 44]
    ldw  r12, [sp + 48]
    ldw  lr,  [sp + 52]
    ldw  r15, [sp + 56]
    addi sp,  sp, 60
    iret
)");
  // OS: first ISR re-arms the timer, enables interrupts and spins inside
  // the ISR until the nested interrupt fires; the nested ISR records state
  // and continues the trustlet; a third interrupt ends the test.
  LoadGuest(R"(
.org 0x13000
os_start:
    li  r1, 0xF0002000
    movi r2, 100
    stw r2, [r1 + 4]
    la  r2, isr1
    stw r2, [r1 + 12]
    movi r2, 3
    stw r2, [r1 + 0]
    sti
    movi r0, 1
    li  r3, 0x11000
    jr  r3                   ; enter the trustlet

isr1:
    ; depth counter
    li  r4, 0x16000
    ldw r5, [r4]
    addi r5, r5, 1
    stw r5, [r4]
    ; record the error code of this entry at obs+4/+8 (by depth)
    ldw r6, [sp + 0]
    shli r7, r5, 2
    add  r7, r7, r4
    stw  r6, [r7]
    movi r6, 3
    beq  r5, r6, isr_finish  ; third interrupt: stop
    movi r6, 2
    beq  r5, r6, isr_after_nested
    ; depth 1: re-arm the timer and allow nesting
    li  r1, 0xF0002000
    movi r2, 60
    stw r2, [r1 + 4]
    la  r2, isr1
    stw r2, [r1 + 12]
    movi r2, 3
    stw r2, [r1 + 0]
    sti
wait_nested:
    li  r4, 0x16000
    ldw r5, [r4]
    movi r6, 2
    bne r5, r6, wait_nested  ; spin until the nested ISR ran
    ; after nesting: resume the trustlet
    cli
    li  r1, 0xF0002000
    movi r2, 300
    stw r2, [r1 + 4]
    movi r2, 3
    stw r2, [r1 + 0]
    movi r0, 0
    li  r3, 0x11000
    jr  r3

isr_after_nested:
    ; nested ISR (depth 2): record the interrupted IP (must be inside the
    ; outer ISR, i.e. in OS code) then return to it via iret
    ldw r6, [sp + 4]         ; resume ip of the outer ISR
    li  r7, 0x16020
    stw r6, [r7]
    addi sp, sp, 4           ; pop error code
    iret

isr_finish:
    ; third interrupt: record the trustlet counter then halt
    li  r7, 0x16100
    ldw r7, [r7]
    li  r8, 0x16030
    stw r7, [r8]
    halt
)");

  platform_.cpu().Reset(kOsCode);
  platform_.cpu().set_reg(kRegSp, kOsStackTop);
  platform_.Run(200000);
  ASSERT_TRUE(platform_.cpu().halted());
  ASSERT_FALSE(platform_.cpu().trap().valid) << platform_.cpu().trap().reason;

  // Three interrupt entries happened.
  EXPECT_EQ(Word(kObs), 3u);
  // Depth-1 entry: trustlet was interrupted (secure path, error bit set).
  EXPECT_EQ(Word(kObs + 4), kExcIrqBase | kErrorFromTrustlet);
  // Depth-2 (nested) entry: the OS ISR itself was interrupted -> regular
  // path, no trustlet bit.
  EXPECT_EQ(Word(kObs + 8), kExcIrqBase);
  // The nested ISR saw a resume IP inside the outer ISR (OS code region).
  const uint32_t nested_resume = Word(kObs + 0x20);
  EXPECT_GE(nested_resume, kOsCode);
  EXPECT_LT(nested_resume, kOsCodeEnd);
  // Depth-3 entry: the *resumed trustlet* was interrupted again -> its
  // state survived the nested episode and kept counting.
  EXPECT_EQ(Word(kObs + 12), kExcIrqBase | kErrorFromTrustlet);
  EXPECT_GT(Word(kObs + 0x30), 0u);  // Counter advanced after resumption.
  EXPECT_EQ(platform_.cpu().stats().trustlet_interrupts, 2u);
  EXPECT_EQ(platform_.cpu().stats().interrupts, 3u);
}

}  // namespace
}  // namespace trustlite
