// Copyright 2026 The TrustLite Reproduction Authors.
// CPU edge cases: shift masking, arithmetic wraparound, unsigned/signed
// comparison corners, iret round trips, SWI vectors, interrupt-enable
// windows, and instruction-fetch subjects across control transfers.

#include <gtest/gtest.h>

#include "src/cpu/cpu.h"
#include "src/dev/sysctl.h"
#include "src/dev/timer.h"
#include "src/isa/assembler.h"
#include "src/mem/bus.h"
#include "src/mem/layout.h"
#include "src/mem/memory.h"

namespace trustlite {
namespace {

constexpr uint32_t kOrigin = 0x1000;

class CpuEdgeTest : public ::testing::Test {
 protected:
  CpuEdgeTest() : ram_("ram", 0, 0x2'0000), sysctl_(kSysCtlBase) {
    bus_.Attach(&ram_);
    bus_.Attach(&sysctl_);
    cpu_ = std::make_unique<Cpu>(&bus_, &sysctl_, CpuConfig{});
  }

  void RunProgram(const std::string& source, uint64_t max = 100000) {
    Result<AsmOutput> out = Assemble(source, kOrigin);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    uint32_t base = 0;
    const std::vector<uint8_t> image = out->Flatten(&base);
    ram_.LoadBytes(base, image);
    cpu_->Reset(kOrigin);
    cpu_->Run(max);
  }

  Bus bus_;
  Ram ram_;
  SysCtl sysctl_;
  std::unique_ptr<Cpu> cpu_;
};

TEST_F(CpuEdgeTest, ShiftAmountsAreMaskedTo5Bits) {
  RunProgram(R"(
    movi r1, 1
    movi r2, 33           ; 33 & 31 == 1
    shl  r3, r1, r2       ; 1 << 1 = 2
    movi r4, -1
    shri r5, r4, 0        ; no-op shift
    movi r6, 32
    shr  r7, r4, r6       ; 32 & 31 == 0 -> unchanged
    halt
)");
  EXPECT_EQ(cpu_->reg(3), 2u);
  EXPECT_EQ(cpu_->reg(5), 0xFFFFFFFFu);
  EXPECT_EQ(cpu_->reg(7), 0xFFFFFFFFu);
}

TEST_F(CpuEdgeTest, ArithmeticWrapsModulo32) {
  RunProgram(R"(
    li   r1, 0x7FFFFFFF
    movi r2, 1
    add  r3, r1, r2       ; signed overflow wraps
    li   r4, 0xFFFFFFFF
    add  r5, r4, r2       ; unsigned wrap to 0
    li   r6, 0x10000
    mul  r7, r6, r6       ; 2^32 wraps to 0
    movi r8, 0
    sub  r9, r8, r2       ; 0 - 1
    halt
)");
  EXPECT_EQ(cpu_->reg(3), 0x80000000u);
  EXPECT_EQ(cpu_->reg(5), 0u);
  EXPECT_EQ(cpu_->reg(7), 0u);
  EXPECT_EQ(cpu_->reg(9), 0xFFFFFFFFu);
}

TEST_F(CpuEdgeTest, SignedUnsignedComparisonCorners) {
  RunProgram(R"(
    li   r1, 0x80000000   ; INT_MIN
    movi r2, 0
    slt  r3, r1, r2       ; INT_MIN < 0 signed -> 1
    sltu r4, r1, r2       ; huge unsigned < 0 -> 0
    slt  r5, r2, r1       ; 0 < INT_MIN signed -> 0
    sltu r6, r2, r1       ; 0 < huge unsigned -> 1
    halt
)");
  EXPECT_EQ(cpu_->reg(3), 1u);
  EXPECT_EQ(cpu_->reg(4), 0u);
  EXPECT_EQ(cpu_->reg(5), 0u);
  EXPECT_EQ(cpu_->reg(6), 1u);
}

TEST_F(CpuEdgeTest, ByteOperationsZeroExtendAndTruncate) {
  RunProgram(R"(
    li   r1, 0x8000
    li   r2, 0xFFFFFFAB
    stb  r2, [r1]          ; stores 0xAB only
    ldb  r3, [r1]          ; zero-extends
    ldw  r4, [r1]
    halt
)");
  EXPECT_EQ(cpu_->reg(3), 0xABu);
  EXPECT_EQ(cpu_->reg(4), 0xABu);  // Other bytes were zero.
}

TEST_F(CpuEdgeTest, JalrThroughLrItself) {
  RunProgram(R"(
    la   lr, target
    jalr lr                ; target read before lr is overwritten
    halt
target:
    movi r1, 55
    halt
)");
  EXPECT_EQ(cpu_->reg(1), 55u);
  // lr now points after the jalr.
  EXPECT_EQ(cpu_->reg(kRegLr), kOrigin + 12u);
}

TEST_F(CpuEdgeTest, IretRestoresFlagsExactly) {
  RunProgram(R"(
    li  sp, 0x9000
    ; hand-build a frame: resume at cont with IF set
    la  r1, cont
    movi r2, 1             ; FLAGS: IF
    addi sp, sp, -8
    stw r1, [sp + 0]
    stw r2, [sp + 4]
    cli
    iret
cont:
    movi r3, 7
    halt
)");
  EXPECT_EQ(cpu_->reg(3), 7u);
  EXPECT_EQ(cpu_->flags() & kFlagIf, kFlagIf);
  EXPECT_EQ(cpu_->reg(kRegSp), 0x9000u);
}

TEST_F(CpuEdgeTest, AllEightSwiVectorsDispatch) {
  RunProgram(R"(
    li  r1, 0xF0000000
    la  r2, handler
    ; install the same handler in all 8 SWI slots (offsets 32..60)
    stw r2, [r1 + 32]
    stw r2, [r1 + 36]
    stw r2, [r1 + 40]
    stw r2, [r1 + 44]
    stw r2, [r1 + 48]
    stw r2, [r1 + 52]
    stw r2, [r1 + 56]
    stw r2, [r1 + 60]
    li  sp, 0x9000
    movi r10, 0
    swi 0
    swi 1
    swi 2
    swi 3
    swi 4
    swi 5
    swi 6
    swi 7
    halt
handler:
    ldw r5, [sp + 0]       ; error code = 16 + vector
    add r10, r10, r5
    addi sp, sp, 4
    iret
)");
  // Sum of (16..23) = 156.
  EXPECT_EQ(cpu_->reg(10), 156u);
  EXPECT_EQ(cpu_->stats().exceptions, 8u);
}

TEST_F(CpuEdgeTest, SwiVectorsWrapModulo8) {
  RunProgram(R"(
    li  r1, 0xF0000000
    la  r2, handler
    stw r2, [r1 + 36]      ; slot 9 = SWI 1
    li  sp, 0x9000
    swi 9                  ; 9 & 7 == 1
    halt
handler:
    movi r3, 1
    addi sp, sp, 4
    iret
)");
  EXPECT_EQ(cpu_->reg(3), 1u);
}

TEST_F(CpuEdgeTest, BranchBackwardAndForwardExtremesWithinRam) {
  RunProgram(R"(
    movi r1, 0
    movi r2, 3
up:
    addi r1, r1, 1
    blt  r1, r2, up
    beq  r1, r2, down
    halt
down:
    movi r3, 1
    halt
)");
  EXPECT_EQ(cpu_->reg(1), 3u);
  EXPECT_EQ(cpu_->reg(3), 1u);
}

TEST_F(CpuEdgeTest, InterruptDisabledUntilSti) {
  // Timer-less variant: the SWI path always works, but IRQs respect IF.
  // Use a second CPU wired to a timer to check the IF gate.
  Bus bus;
  Ram ram("ram", 0, 0x20000);
  SysCtl sysctl(kSysCtlBase);
  Timer timer(kTimerBase, 0);
  bus.Attach(&ram);
  bus.Attach(&sysctl);
  bus.Attach(&timer);
  Cpu cpu(&bus, &sysctl, CpuConfig{});
  cpu.AddIrqSource(&timer);

  Result<AsmOutput> out = Assemble(R"(
    li  r1, 0xF0002000
    movi r2, 10
    stw r2, [r1 + 4]
    la  r2, isr
    stw r2, [r1 + 12]
    movi r2, 3
    stw r2, [r1 + 0]
    li  sp, 0x9000
    ; run far past the timer period with IF clear: no interrupt
    movi r3, 0
    movi r4, 100
spin:
    addi r3, r3, 1
    bne r3, r4, spin
    movi r5, 1             ; reached without interruption
    sti
hang:
    jmp hang
isr:
    movi r6, 1
    halt
)",
                                   kOrigin);
  ASSERT_TRUE(out.ok());
  uint32_t base = 0;
  ram.LoadBytes(kOrigin, out->Flatten(&base));
  cpu.Reset(kOrigin);
  cpu.Run(100000);
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.reg(5), 1u);  // The spin completed untouched.
  EXPECT_EQ(cpu.reg(6), 1u);  // The IRQ landed only after sti.
}

TEST_F(CpuEdgeTest, HaltIsTerminalForStep) {
  RunProgram("halt\n");
  EXPECT_TRUE(cpu_->halted());
  const uint64_t before = cpu_->cycles();
  EXPECT_EQ(cpu_->Step(), StepEvent::kHalted);
  EXPECT_EQ(cpu_->Step(), StepEvent::kHalted);
  EXPECT_EQ(cpu_->cycles(), before);  // No time passes when halted.
}

TEST_F(CpuEdgeTest, ResetClearsTrapAndRegisters) {
  RunProgram(R"(
    li  r1, 0xE0000000
    ldw r2, [r1]           ; unhandled bus error -> trap
)");
  ASSERT_TRUE(cpu_->trap().valid);
  cpu_->Reset(kOrigin);
  EXPECT_FALSE(cpu_->trap().valid);
  EXPECT_FALSE(cpu_->halted());
  for (int i = 0; i < kNumRegisters; ++i) {
    EXPECT_EQ(cpu_->reg(i), 0u) << i;
  }
  EXPECT_EQ(cpu_->ip(), kOrigin);
}

TEST_F(CpuEdgeTest, StoreByteToUnmappedFaults) {
  RunProgram(R"(
    li  r1, 0xE0000000
    movi r2, 1
    stb r2, [r1]
    halt
)");
  ASSERT_TRUE(cpu_->trap().valid);
  EXPECT_EQ(cpu_->trap().exception_class, kExcBusError);
}

TEST_F(CpuEdgeTest, FetchFromUnmappedMemoryTraps) {
  RunProgram(R"(
    li  r1, 0xE0000000
    jr  r1
)");
  ASSERT_TRUE(cpu_->trap().valid);
  EXPECT_EQ(cpu_->trap().exception_class, kExcBusError);
  EXPECT_EQ(cpu_->trap().ip, 0xE0000000u);
}


TEST(CycleModelTest, CustomCostsFlowThroughTheInterpreter) {
  // The cycle model is a configuration, not hard-coded: double every cost
  // and the measured totals double.
  Bus bus;
  Ram ram("ram", 0, 0x20000);
  SysCtl sysctl(kSysCtlBase);
  bus.Attach(&ram);
  bus.Attach(&sysctl);
  CpuConfig config;
  config.cycles.alu = 2;
  config.cycles.memory = 4;
  config.cycles.control_taken = 4;
  config.cycles.control_not_taken = 2;
  config.cycles.mul = 6;
  Cpu cpu(&bus, &sysctl, config);

  Result<AsmOutput> out = Assemble(R"(
    movi r1, 1
    mul  r2, r1, r1
    li   r3, 0x8000
    ldw  r4, [r3]
    jmp  end
end:
    halt
)",
                                   0x1000);
  ASSERT_TRUE(out.ok());
  uint32_t base = 0;
  ram.LoadBytes(0x1000, out->Flatten(&base));
  cpu.Reset(0x1000);
  cpu.Run(100);
  // movi(2) + mul(6) + movi/li(2) + ldw(4) + jmp(4) + halt(2) = 20.
  EXPECT_EQ(cpu.cycles(), 20u);
}

TEST(CycleModelTest, ExceptionCostsAreParameters) {
  Bus bus;
  Ram ram("ram", 0, 0x20000);
  SysCtl sysctl(kSysCtlBase);
  bus.Attach(&ram);
  bus.Attach(&sysctl);
  CpuConfig config;
  config.cycles.exception_base = 30;  // A hypothetical slower engine.
  Cpu cpu(&bus, &sysctl, config);

  Result<AsmOutput> out = Assemble(R"(
    li  r1, 0xF0000000
    la  r2, handler
    stw r2, [r1 + 32]
    li  sp, 0x9000
    swi 0
    halt
handler:
    halt
)",
                                   0x1000);
  ASSERT_TRUE(out.ok());
  uint32_t base = 0;
  ram.LoadBytes(0x1000, out->Flatten(&base));
  cpu.Reset(0x1000);
  cpu.Run(100);
  EXPECT_EQ(cpu.last_exception_entry_cycles(), 30u);
}

TEST_F(CpuEdgeTest, MisalignedJumpTargetFaultsDespiteDecodeCache) {
  // Execute `target` once at its aligned address (populating its decode
  // cache line), then jump back into the middle of the same word. The
  // cache indexes lines by ip >> 2, so target and target + 2 alias; the
  // misaligned IP must raise an alignment fault instead of replaying the
  // cached decode of the aligned word.
  RunProgram(R"(
    movi r4, 0
    la   r2, target
    jmp  target
back:
    addi r2, r2, 2
    jr   r2               ; target + 2: must trap, not hit the cached line
    halt
target:
    addi r4, r4, 1
    movi r5, 1
    beq  r4, r5, back
    li   r6, 0xBAD        ; reachable only if the misaligned fetch executed
    halt
)");
  EXPECT_TRUE(cpu_->halted());
  ASSERT_TRUE(cpu_->trap().valid);
  EXPECT_EQ(cpu_->trap().exception_class, kExcAlign);
  EXPECT_EQ(cpu_->reg(4), 1u);  // target ran exactly once, aligned.
  EXPECT_NE(cpu_->reg(6), 0xBADu);
}

}  // namespace
}  // namespace trustlite
