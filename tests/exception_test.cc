// Copyright 2026 The TrustLite Reproduction Authors.
//
// Secure exception engine tests (paper Sec. 3.4 / Fig. 4 / Sec. 5.4):
// hardware state save to the trustlet stack, Trustlet-Table SP update,
// register clearing, OS stack switch, exact cycle costs, trustlet
// termination on a corrupt stack pointer, faulting-IP sanitization, and
// continue()-based resumption.
//
// The MPU is programmed directly (no Secure Loader) so each scenario
// controls the exact region/rule layout.

#include <gtest/gtest.h>

#include "src/cpu/cpu.h"
#include "src/isa/assembler.h"
#include "src/mem/layout.h"
#include "src/platform/platform.h"

namespace trustlite {
namespace {

// Fixture memory map (inside SRAM):
constexpr uint32_t kTlCode = 0x0001'1000;
constexpr uint32_t kTlCodeEnd = 0x0001'1100;
constexpr uint32_t kTlData = 0x0001'2000;
constexpr uint32_t kTlDataEnd = 0x0001'2100;  // Trustlet stack top.
constexpr uint32_t kOsCode = 0x0001'3000;
constexpr uint32_t kOsCodeEnd = 0x0001'3200;
constexpr uint32_t kOsStackTop = 0x0001'4000;  // In open memory.
constexpr uint32_t kTlSpSlot = 0x0001'5000;    // Trustlet Table SP slots.
constexpr uint32_t kOsSpSlot = 0x0001'5004;
constexpr uint32_t kObsBase = 0x0001'6000;   // ISR observation area (open).
constexpr uint32_t kCountAddr = 0x0001'6100;  // Trustlet loop counter cell.

constexpr int kRegionTlCode = 0;
constexpr int kRegionTlData = 1;
constexpr int kRegionOsCode = 2;

class ExceptionTest : public ::testing::Test {
 protected:
  ExceptionTest() : platform_(MakeConfig()) {}

  static PlatformConfig MakeConfig() {
    PlatformConfig config;
    config.secure_exceptions = true;
    return config;
  }

  void SetRegion(int index, uint32_t base, uint32_t end, uint32_t attr,
                 uint32_t sp_slot = 0) {
    const uint32_t reg = kMpuMmioBase + kMpuRegionBank +
                         static_cast<uint32_t>(index) * kMpuRegionStride;
    ASSERT_TRUE(platform_.bus().HostWriteWord(reg + 0, base));
    ASSERT_TRUE(platform_.bus().HostWriteWord(reg + 4, end));
    ASSERT_TRUE(platform_.bus().HostWriteWord(reg + 8, attr));
    ASSERT_TRUE(platform_.bus().HostWriteWord(reg + 12, sp_slot));
  }

  void SetRule(int index, uint32_t subject, uint32_t object, bool r, bool w,
               bool x) {
    ASSERT_TRUE(platform_.bus().HostWriteWord(
        kMpuMmioBase + kMpuRuleBank + static_cast<uint32_t>(index) * 4,
        EncodeMpuRule(subject, object, r, w, x)));
  }

  // Standard layout: trustlet code/data regions + OS code region (attr OS),
  // self rules, entry rule, OS rules.
  void ProgramStandardMpu() {
    SetRegion(kRegionTlCode, kTlCode, kTlCodeEnd,
              kMpuAttrEnable | kMpuAttrCode, kTlSpSlot);
    SetRegion(kRegionTlData, kTlData, kTlDataEnd, kMpuAttrEnable);
    SetRegion(kRegionOsCode, kOsCode, kOsCodeEnd,
              kMpuAttrEnable | kMpuAttrCode | kMpuAttrOs, kOsSpSlot);
    SetRule(0, kRegionTlCode, kRegionTlCode, true, false, true);
    SetRule(1, kRegionTlCode, kRegionTlData, true, true, false);
    SetRule(2, kMpuSubjectAny, kRegionTlCode, false, false, true);  // entry
    SetRule(3, kRegionOsCode, kRegionOsCode, true, false, true);
    // SPOS lives in the Trustlet-Table slot; the engine reads it through its
    // private port, software never needs to.
    ASSERT_TRUE(platform_.bus().HostWriteWord(kOsSpSlot, kOsStackTop));
    ASSERT_TRUE(platform_.bus().HostWriteWord(
        kMpuMmioBase + kMpuRegCtrl, kMpuCtrlEnable));
  }

  // Loads `source` (absolute .org directives inside) into SRAM.
  void LoadGuest(const std::string& source) {
    Result<AsmOutput> out = Assemble(source);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    for (const AsmChunk& chunk : out->chunks) {
      ASSERT_TRUE(platform_.bus().HostWriteBytes(chunk.base, chunk.bytes));
    }
    symbols_ = out->symbols;
  }

  uint32_t Word(uint32_t addr) {
    uint32_t value = 0;
    EXPECT_TRUE(platform_.bus().HostReadWord(addr, &value)) << addr;
    return value;
  }

  // The trustlet program: entry vector + dispatch + continue() restore +
  // main loop that sets recognizable register values.
  static std::string TrustletSource(uint32_t stack_init = kTlDataEnd) {
    std::string src;
    src += ".org 0x11000\n";
    src += R"(
entry:
    jmp  dispatch
dispatch:
    movi r15, 0
    beq  r0, r15, do_continue
tl_main:
)";
    src += "    li  sp, " + std::to_string(stack_init) + "\n";
    src += R"(
    movi r1, 0
    li   r2, 0xAAAA
    li   r3, 0x5555
    li   r4, 0x16100
loop:
    addi r1, r1, 1
    stw  r1, [r4]
    jmp  loop
do_continue:
    li   r15, 0x15000
    ldw  sp,  [r15]
    ldw  r0,  [sp + 0]
    ldw  r1,  [sp + 4]
    ldw  r2,  [sp + 8]
    ldw  r3,  [sp + 12]
    ldw  r4,  [sp + 16]
    ldw  r5,  [sp + 20]
    ldw  r6,  [sp + 24]
    ldw  r7,  [sp + 28]
    ldw  r8,  [sp + 32]
    ldw  r9,  [sp + 36]
    ldw  r10, [sp + 40]
    ldw  r11, [sp + 44]
    ldw  r12, [sp + 48]
    ldw  lr,  [sp + 52]
    ldw  r15, [sp + 56]
    addi sp,  sp, 60
    iret
)";
    return src;
  }

  // OS program: configures a one-shot timer interrupt and jumps into the
  // trustlet; `isr_body` runs on interrupt with the OS stack.
  static std::string OsSource(const std::string& isr_body,
                              uint32_t timer_period = 60) {
    std::string src = ".org 0x13000\nos_start:\n";
    src += "    li  r1, 0x" + ToHex(kTimerBase) + "\n";
    src += "    movi r2, " + std::to_string(timer_period) + "\n";
    src += R"(
    stw r2, [r1 + 4]       ; PERIOD
    la  r2, os_isr
    stw r2, [r1 + 12]      ; HANDLER
    movi r2, 3             ; enable | irq enable (one shot)
    stw r2, [r1 + 0]
    sti
    movi r0, 1             ; "start fresh" command
    li   r3, 0x11000
    jr   r3
os_isr:
)";
    src += isr_body;
    return src;
  }

  static std::string ToHex(uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%x", v);
    return buf;
  }

  Platform platform_;
  std::map<std::string, uint32_t> symbols_;
};

// Standard ISR: records the (cleared) registers, error code, reported IP
// and the ISR's stack pointer, then halts.
constexpr const char* kRecordingIsr = R"(
    li  r4, 0x16000
    stw r1, [r4 + 0]
    stw r2, [r4 + 4]
    stw r3, [r4 + 8]
    ldw r5, [sp + 0]
    stw r5, [r4 + 12]      ; error code
    ldw r5, [sp + 4]
    stw r5, [r4 + 16]      ; reported faulting IP
    stw sp, [r4 + 20]      ; ISR stack pointer
    stw r6, [r4 + 24]
    stw r12, [r4 + 28]
    stw lr, [r4 + 32]
    halt
)";

TEST_F(ExceptionTest, TrustletInterruptClearsRegistersAndSwitchesStacks) {
  ProgramStandardMpu();
  LoadGuest(TrustletSource());
  LoadGuest(OsSource(kRecordingIsr));
  platform_.cpu().Reset(kOsCode);
  platform_.cpu().set_reg(kRegSp, kOsStackTop);
  platform_.Run(100000);
  ASSERT_TRUE(platform_.cpu().halted());
  ASSERT_FALSE(platform_.cpu().trap().valid) << platform_.cpu().trap().reason;

  // All GPRs observed by the ISR are zero (the trustlet had r1 counter,
  // r2 = 0xAAAA, r3 = 0x5555 live).
  EXPECT_EQ(Word(kObsBase + 0), 0u);
  EXPECT_EQ(Word(kObsBase + 4), 0u);
  EXPECT_EQ(Word(kObsBase + 8), 0u);
  EXPECT_EQ(Word(kObsBase + 24), 0u);
  EXPECT_EQ(Word(kObsBase + 28), 0u);
  EXPECT_EQ(Word(kObsBase + 32), 0u);

  // Error code: IRQ line 0 (class 8) with the trustlet bit.
  EXPECT_EQ(Word(kObsBase + 12), (kExcIrqBase | kErrorFromTrustlet));

  // Reported IP lies within the trustlet's loop.
  const uint32_t reported_ip = Word(kObsBase + 16);
  EXPECT_GE(reported_ip, kTlCode);
  EXPECT_LT(reported_ip, kTlCodeEnd);

  // The ISR ran on the OS stack (SPOS minus the 2-word info frame).
  EXPECT_EQ(Word(kObsBase + 20), kOsStackTop - 8);

  // The Trustlet Table slot holds the saved SP, and the frame preserves the
  // trustlet's registers.
  const uint32_t saved_sp = Word(kTlSpSlot);
  EXPECT_GE(saved_sp, kTlData);
  EXPECT_LT(saved_sp, kTlDataEnd);
  const uint32_t saved_r1 = Word(saved_sp + 4);
  const uint32_t saved_r2 = Word(saved_sp + 8);
  const uint32_t saved_r3 = Word(saved_sp + 12);
  EXPECT_GT(saved_r1, 0u);
  EXPECT_EQ(saved_r2, 0xAAAAu);
  EXPECT_EQ(saved_r3, 0x5555u);
  // Saved resume IP is inside the loop; saved FLAGS has IF set.
  const uint32_t saved_ip = Word(saved_sp + 60);
  EXPECT_GE(saved_ip, kTlCode);
  EXPECT_LT(saved_ip, kTlCodeEnd);
  EXPECT_EQ(Word(saved_sp + 64) & 1u, 1u);

  // Cycle cost: 21 (base) + 2 (detect) + 10 (save) + 9 (clear + SP) = 42,
  // i.e. 100% overhead over the regular flow (Sec. 5.4).
  EXPECT_EQ(platform_.cpu().last_exception_entry_cycles(), 42u);
  EXPECT_EQ(platform_.cpu().stats().trustlet_interrupts, 1u);
}

TEST_F(ExceptionTest, OsInterruptTakesRegularPathPlusDetect) {
  ProgramStandardMpu();
  // OS never enters the trustlet; it loops in its own region.
  LoadGuest(R"(
.org 0x13000
os_start:
    li  r1, 0xF0002000
    movi r2, 60
    stw r2, [r1 + 4]
    la  r2, os_isr
    stw r2, [r1 + 12]
    movi r2, 3
    stw r2, [r1 + 0]
    movi r7, 0x77          ; live value that must survive
    sti
spin:
    jmp spin
os_isr:
    li  r4, 0x16000
    stw r7, [r4 + 0]       ; NOT cleared on the regular path
    ldw r5, [sp + 0]
    stw r5, [r4 + 12]      ; error code (no trustlet bit)
    halt
)");
  platform_.cpu().Reset(kOsCode);
  platform_.cpu().set_reg(kRegSp, kOsStackTop);
  platform_.Run(100000);
  ASSERT_TRUE(platform_.cpu().halted());
  ASSERT_FALSE(platform_.cpu().trap().valid) << platform_.cpu().trap().reason;

  EXPECT_EQ(Word(kObsBase + 0), 0x77u);  // Registers preserved.
  EXPECT_EQ(Word(kObsBase + 12), kExcIrqBase);  // No trustlet bit.
  // 21 + 2 (the secure engine still checks who was interrupted).
  EXPECT_EQ(platform_.cpu().last_exception_entry_cycles(), 23u);
  EXPECT_EQ(platform_.cpu().stats().trustlet_interrupts, 0u);
}

TEST_F(ExceptionTest, UnprotectedCodeInterruptAlsoRegularPath) {
  ProgramStandardMpu();
  // Code in open memory (no region), interrupted by the timer.
  LoadGuest(R"(
.org 0x18000
app_start:
    li  r1, 0xF0002000
    movi r2, 40
    stw r2, [r1 + 4]
    la  r2, app_isr
    stw r2, [r1 + 12]
    movi r2, 3
    stw r2, [r1 + 0]
    movi r9, 0x99
    sti
spin:
    jmp spin
app_isr:
    li  r4, 0x16000
    stw r9, [r4 + 0]
    halt
)");
  platform_.cpu().Reset(0x18000);
  platform_.cpu().set_reg(kRegSp, 0x19000);
  platform_.Run(100000);
  ASSERT_TRUE(platform_.cpu().halted());
  EXPECT_EQ(Word(kObsBase + 0), 0x99u);
  EXPECT_EQ(platform_.cpu().last_exception_entry_cycles(), 23u);
}

TEST_F(ExceptionTest, ContinueResumesInterruptedTrustlet) {
  ProgramStandardMpu();
  LoadGuest(TrustletSource());
  // ISR: record the count at interrupt, then resume the trustlet via its
  // entry vector with r0 = 0 (continue()).
  LoadGuest(OsSource(R"(
    li  r4, 0x16000
    ldw r5, [r4 + 48]      ; resume counter (test scratch)
    addi r5, r5, 1
    stw r5, [r4 + 48]
    movi r6, 2
    beq r5, r6, isr_done   ; second interrupt: stop
    li  r7, 0x16100
    ldw r7, [r7]
    stw r7, [r4 + 52]      ; count at first interrupt
    ; re-arm the one-shot timer for a second preemption
    li  r1, 0xF0002000
    movi r2, 200
    stw r2, [r1 + 4]
    movi r2, 3
    stw r2, [r1 + 0]
    movi r0, 0             ; continue()
    li   r3, 0x11000
    jr   r3
isr_done:
    li  r7, 0x16100
    ldw r7, [r7]
    stw r7, [r4 + 56]      ; count at second interrupt
    halt
)"));
  platform_.cpu().Reset(kOsCode);
  platform_.cpu().set_reg(kRegSp, kOsStackTop);
  platform_.Run(200000);
  ASSERT_TRUE(platform_.cpu().halted());
  ASSERT_FALSE(platform_.cpu().trap().valid) << platform_.cpu().trap().reason;

  const uint32_t count_first = Word(kObsBase + 52);
  const uint32_t count_second = Word(kObsBase + 56);
  EXPECT_GT(count_first, 0u);
  // The trustlet kept counting where it left off: strictly greater, and the
  // state (r2/r3 markers) was never re-initialized because execution resumed
  // inside the loop rather than at tl_main.
  EXPECT_GT(count_second, count_first);
  EXPECT_EQ(platform_.cpu().stats().trustlet_interrupts, 2u);
}

TEST_F(ExceptionTest, CorruptStackTerminatesTrustlet) {
  ProgramStandardMpu();
  // Trustlet initializes its stack pointer into the OS code region, where it
  // has no write permission: the engine's save faults (footnote 1).
  LoadGuest(TrustletSource(/*stack_init=*/kOsCode + 0x100));
  LoadGuest(OsSource(kRecordingIsr));
  platform_.cpu().Reset(kOsCode);
  platform_.cpu().set_reg(kRegSp, kOsStackTop);
  // Find os_isr: it was the last LoadGuest with OsSource -> symbol table.
  // Simpler: run once to let the OS configure the timer, but we must set the
  // fault handler before the interrupt fires. The OS ISR address equals the
  // timer handler register after a few steps; run a handful of instructions
  // then copy it.
  for (int i = 0; i < 8; ++i) {
    platform_.cpu().Step();
  }
  uint32_t isr_addr = 0;
  ASSERT_TRUE(
      platform_.bus().HostReadWord(kTimerBase + kTimerRegHandler, &isr_addr));
  ASSERT_NE(isr_addr, 0u);
  ASSERT_TRUE(platform_.bus().HostWriteWord(
      kSysCtlBase + kSysCtlRegHandlerBase + 0, isr_addr));  // MPU fault slot.
  platform_.Run(100000);
  ASSERT_TRUE(platform_.cpu().halted());
  ASSERT_FALSE(platform_.cpu().trap().valid) << platform_.cpu().trap().reason;

  // The ISR observed cleared registers and an MPU-fault error code with the
  // trustlet bit.
  EXPECT_EQ(Word(kObsBase + 0), 0u);
  EXPECT_EQ(Word(kObsBase + 12), (kExcMpuFault | kErrorFromTrustlet));
  // Reported IP is sanitized to the entry vector on termination.
  EXPECT_EQ(Word(kObsBase + 16), kTlCode);
}

TEST_F(ExceptionTest, SanitizedFaultingIpPointsToEntryVector) {
  PlatformConfig config;
  config.secure_exceptions = true;
  config.sanitize_faulting_ip = true;
  Platform platform(config);

  auto write_region = [&](int index, uint32_t base, uint32_t end,
                          uint32_t attr, uint32_t sp_slot) {
    const uint32_t reg = kMpuMmioBase + kMpuRegionBank +
                         static_cast<uint32_t>(index) * kMpuRegionStride;
    ASSERT_TRUE(platform.bus().HostWriteWord(reg + 0, base));
    ASSERT_TRUE(platform.bus().HostWriteWord(reg + 4, end));
    ASSERT_TRUE(platform.bus().HostWriteWord(reg + 8, attr));
    ASSERT_TRUE(platform.bus().HostWriteWord(reg + 12, sp_slot));
  };
  write_region(0, kTlCode, kTlCodeEnd, kMpuAttrEnable | kMpuAttrCode,
               kTlSpSlot);
  write_region(1, kTlData, kTlDataEnd, kMpuAttrEnable, 0);
  write_region(2, kOsCode, kOsCodeEnd,
               kMpuAttrEnable | kMpuAttrCode | kMpuAttrOs, kOsSpSlot);
  auto write_rule = [&](int index, uint32_t subject, uint32_t object, bool r,
                        bool w, bool x) {
    ASSERT_TRUE(platform.bus().HostWriteWord(
        kMpuMmioBase + kMpuRuleBank + static_cast<uint32_t>(index) * 4,
        EncodeMpuRule(subject, object, r, w, x)));
  };
  write_rule(0, 0, 0, true, false, true);
  write_rule(1, 0, 1, true, true, false);
  write_rule(2, kMpuSubjectAny, 0, false, false, true);
  write_rule(3, 2, 2, true, false, true);
  ASSERT_TRUE(platform.bus().HostWriteWord(kOsSpSlot, kOsStackTop));
  ASSERT_TRUE(platform.bus().HostWriteWord(kMpuMmioBase + kMpuRegCtrl,
                                           kMpuCtrlEnable));

  Result<AsmOutput> tl = Assemble(TrustletSource());
  ASSERT_TRUE(tl.ok());
  for (const AsmChunk& chunk : tl->chunks) {
    ASSERT_TRUE(platform.bus().HostWriteBytes(chunk.base, chunk.bytes));
  }
  Result<AsmOutput> os = Assemble(OsSource(kRecordingIsr));
  ASSERT_TRUE(os.ok());
  for (const AsmChunk& chunk : os->chunks) {
    ASSERT_TRUE(platform.bus().HostWriteBytes(chunk.base, chunk.bytes));
  }
  platform.cpu().Reset(kOsCode);
  platform.cpu().set_reg(kRegSp, kOsStackTop);
  platform.Run(100000);
  ASSERT_TRUE(platform.cpu().halted());

  uint32_t reported = 0;
  ASSERT_TRUE(platform.bus().HostReadWord(kObsBase + 16, &reported));
  EXPECT_EQ(reported, kTlCode);  // Entry vector, not the precise loop IP.
}

TEST_F(ExceptionTest, DoubleFaultMidEntryNeverExposesTrustletRegisters) {
  ProgramStandardMpu();
  // Same corrupt-stack scenario as above, but with NO fault handler
  // installed: the engine's save faults mid-entry, the resulting MPU fault
  // has nowhere to vector, and the platform halts on the double-fault path.
  // The trustlet had r1 (counter), r2 = 0xAAAA and r3 = 0x5555 live at the
  // moment of the interrupt; none of them may survive into the halted
  // register file — the clear must precede the handler dispatch, not follow
  // a successful one.
  LoadGuest(TrustletSource(/*stack_init=*/kOsCode + 0x100));
  LoadGuest(OsSource(kRecordingIsr));
  platform_.cpu().Reset(kOsCode);
  platform_.cpu().set_reg(kRegSp, kOsStackTop);
  platform_.Run(100000);
  ASSERT_TRUE(platform_.cpu().halted());
  ASSERT_TRUE(platform_.cpu().trap().valid);
  EXPECT_EQ(platform_.cpu().trap().exception_class, kExcMpuFault);
  for (int r = 0; r < kNumRegisters; ++r) {
    EXPECT_EQ(platform_.cpu().reg(r), 0u) << "r" << r;
  }
}

TEST_F(ExceptionTest, IsrCannotReadTrustletSavedState) {
  ProgramStandardMpu();
  LoadGuest(TrustletSource());
  // Malicious ISR: attempts to read the trustlet's saved frame through the
  // Trustlet-Table SP slot. The read of the trustlet stack faults.
  LoadGuest(OsSource(R"(
    li  r5, 0x15000
    ldw r5, [r5]           ; saved SP (the slot itself is open in this
                           ; fixture; the *stack* is protected)
    ldw r6, [r5 + 4]       ; attempt to read saved r1 -> MPU fault
    li  r4, 0x16000
    stw r6, [r4]
    halt
)"));
  platform_.cpu().Reset(kOsCode);
  platform_.cpu().set_reg(kRegSp, kOsStackTop);
  platform_.Run(100000);
  ASSERT_TRUE(platform_.cpu().halted());
  // No MPU-fault handler installed: the platform traps, proving the read
  // never succeeded.
  ASSERT_TRUE(platform_.cpu().trap().valid);
  EXPECT_EQ(platform_.cpu().trap().exception_class, kExcMpuFault);
  EXPECT_EQ(Word(kObsBase + 0), 0u);  // The stolen value was never stored.
}

}  // namespace
}  // namespace trustlite
