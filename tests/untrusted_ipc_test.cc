// Copyright 2026 The TrustLite Reproduction Authors.
//
// Untrusted IPC (paper Sec. 4.2.1): message queues in the operating system
// and shared-memory windows negotiated via the Secure Loader's grants.
//  * producer -> OS queue -> consumer, all through the OS entry vector;
//  * bulk transfer through a shared region visible to exactly two
//    trustlets, with the notification going through the cheap register
//    path.

#include <gtest/gtest.h>

#include "src/loader/system_image.h"
#include "src/os/nanos.h"
#include "src/platform/platform.h"
#include "src/trustlet/builder.h"

namespace trustlite {
namespace {

uint32_t Word(Platform& platform, uint32_t addr) {
  uint32_t value = 0;
  EXPECT_TRUE(platform.bus().HostReadWord(addr, &value));
  return value;
}

TEST(UntrustedIpcTest, ProducerToConsumerThroughOsQueue) {
  // Producer enqueues 1..5 through the OS; the consumer drains the queue
  // into open memory. The OS sees (and could tamper with) everything —
  // that's the documented trust model of untrusted IPC.
  TrustletBuildSpec producer;
  producer.name = "PRD";
  producer.code_addr = 0x11000;
  producer.data_addr = 0x12000;
  producer.data_size = 0x400;
  producer.stack_size = 0x100;
  producer.body = R"(
.equ CONT_SLOT, TL_DATA + 0
.equ SENT_SLOT, TL_DATA + 4
tl_main:
    la   r4, SENT_SLOT
    ldw  r5, [r4]
    movi r6, 5
    bgeu r5, r6, prd_done
    addi r5, r5, 1
    stw  r5, [r4]
    la   r4, CONT_SLOT
    la   r6, tl_main
    stw  r6, [r4]
    movi r0, 1             ; enqueue
    mov  r1, r5            ; payload 1..5
    la   r2, tl_entry
    li   r6, 0x20000
    jr   r6
prd_done:
    sti
prd_park:
    swi  0
    jmp  prd_park
tl_handle_call:
    sti
    la   r15, CONT_SLOT
    ldw  r15, [r15]
    jr   r15
)";

  TrustletBuildSpec consumer;
  consumer.name = "CNS";
  consumer.code_addr = 0x13000;
  consumer.data_addr = 0x14000;
  consumer.data_size = 0x400;
  consumer.stack_size = 0x100;
  consumer.body = R"(
.equ CONT_SLOT, TL_DATA + 0
.equ RECV_SLOT, TL_DATA + 4     ; received count
tl_main:
    la   r4, CONT_SLOT
    la   r6, cns_got
    stw  r6, [r4]
    movi r0, 2             ; dequeue
    la   r2, tl_entry
    li   r6, 0x20000
    jr   r6
cns_got:
    sti
    ; r1 = dequeued value or -1
    movi r5, -1
    beq  r1, r5, cns_empty
    ; store to 0x30100 + 4*count
    la   r4, RECV_SLOT
    ldw  r6, [r4]
    shli r7, r6, 2
    li   r8, 0x30100
    add  r7, r7, r8
    stw  r1, [r7]
    addi r6, r6, 1
    stw  r6, [r4]
    jmp  tl_main
cns_empty:
    swi  0
    jmp  tl_main
tl_handle_call:
    la   r15, CONT_SLOT
    ldw  r15, [r15]
    jr   r15
)";

  Platform platform;
  SystemImage image;
  // Producer scheduled before the consumer.
  image.Add(*BuildTrustlet(producer));
  image.Add(*BuildTrustlet(consumer));
  NanosConfig os_config;
  image.Add(*BuildNanos(os_config));
  ASSERT_TRUE(platform.InstallImage(image).ok());
  ASSERT_TRUE(platform.BootAndLaunch().ok());

  platform.Run(400000);
  ASSERT_FALSE(platform.cpu().halted()) << platform.cpu().trap().reason;
  // All five messages arrived, in order.
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(Word(platform, 0x30100 + 4 * i), i + 1) << i;
  }
  EXPECT_EQ(Word(platform, 0x14004), 5u);  // Consumer's receive count.
}

TEST(UntrustedIpcTest, BulkTransferThroughSharedGrantWindow) {
  // Both trustlets declare the same shared window (the loader deduplicates
  // it into one region, Sec. 4.2.1); the writer fills 16 words and raises a
  // ready flag, the reader checksums them. A third trustlet without the
  // grant faults on the same window.
  const RegionGrant shared{0x0001'8000, 0x0001'8100,
                           kGrantRead | kGrantWrite};
  TrustletBuildSpec writer;
  writer.name = "WRT";
  writer.code_addr = 0x11000;
  writer.data_addr = 0x12000;
  writer.data_size = 0x400;
  writer.stack_size = 0x100;
  writer.grants.push_back(shared);
  writer.body = R"(
tl_main:
    li   r4, 0x18000
    movi r5, 0
wrt_fill:
    shli r6, r5, 2
    add  r6, r6, r4
    li   r7, 0x1000
    add  r7, r7, r5        ; payload 0x1000 + i
    stw  r7, [r6 + 4]      ; words 1..16; word 0 is the ready flag
    addi r5, r5, 1
    movi r6, 16
    bne  r5, r6, wrt_fill
    movi r5, 1
    stw  r5, [r4]          ; ready
wrt_park:
    swi  0
    jmp  wrt_park
)";

  TrustletBuildSpec reader;
  reader.name = "RDR";
  reader.code_addr = 0x13000;
  reader.data_addr = 0x14000;
  reader.data_size = 0x400;
  reader.stack_size = 0x100;
  RegionGrant read_only = shared;
  read_only.perms = kGrantRead;  // Asymmetric rights on the same window.
  reader.grants.push_back(read_only);
  reader.body = R"(
tl_main:
    li   r4, 0x18000
    ldw  r5, [r4]
    movi r6, 1
    beq  r5, r6, rdr_sum
    swi  0
    jmp  tl_main
rdr_sum:
    movi r5, 0             ; i
    movi r7, 0             ; checksum
rdr_loop:
    shli r6, r5, 2
    add  r6, r6, r4
    ldw  r6, [r6 + 4]
    add  r7, r7, r6
    addi r5, r5, 1
    movi r6, 16
    bne  r5, r6, rdr_loop
    li   r8, 0x30200
    stw  r7, [r8]          ; publish checksum
rdr_park:
    swi  0
    jmp  rdr_park
)";

  // The bystander has no grant: its read must fault (and get it killed).
  TrustletBuildSpec bystander;
  bystander.name = "BYS";
  bystander.code_addr = 0x15000;
  bystander.data_addr = 0x16000;
  bystander.data_size = 0x400;
  bystander.stack_size = 0x100;
  bystander.body = R"(
tl_main:
    li   r4, 0x18000
    ldw  r5, [r4]          ; no rule -> MPU fault -> killed by nanOS
    li   r6, 0x30204
    stw  r5, [r6]          ; never reached
spin:
    swi  0
    jmp  spin
)";

  Platform platform;
  SystemImage image;
  image.Add(*BuildTrustlet(writer));
  image.Add(*BuildTrustlet(reader));
  image.Add(*BuildTrustlet(bystander));
  NanosConfig os_config;
  Result<TrustletMeta> os = BuildNanos(os_config);
  image.Add(*os);
  ASSERT_TRUE(platform.InstallImage(image).ok());
  Result<LoadReport> report = platform.BootAndLaunch();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Shared window deduplicated: 4x(code+data) + 1 shared + 2 OS grants
  // + TT + MPU + SysCtl = 14 regions.
  EXPECT_EQ(report->regions_used, 14);

  platform.Run(400000);
  ASSERT_FALSE(platform.cpu().halted()) << platform.cpu().trap().reason;
  uint32_t expected = 0;
  for (uint32_t i = 0; i < 16; ++i) {
    expected += 0x1000 + i;
  }
  EXPECT_EQ(Word(platform, 0x30200), expected);
  EXPECT_EQ(Word(platform, 0x30204), 0u);  // Bystander never read a byte.
  // Reader cannot write the window (asymmetric grant).
  AccessContext ctx;
  ctx.curr_ip = 0x13000 + 0x40;
  ctx.kind = AccessKind::kWrite;
  EXPECT_EQ(platform.mpu()->Check(ctx, 0x18040, 4), AccessResult::kProtFault);
  // The bystander was removed from the schedule.
  const LoadedTrustlet* osl = report->FindById(report->os_id);
  EXPECT_EQ(Word(platform, osl->meta.data_addr + kOsDataNumTasks), 2u);
}

}  // namespace
}  // namespace trustlite
