// Copyright 2026 The TrustLite Reproduction Authors.
// Remote attestation over the UART: a host-side verifier exchanges binary
// frames with the attestation trustlet over the serial line — the complete
// remote-party flow of paper Secs. 1/2.3 ("remote reporting of the
// software"), with the UART owned exclusively by the trustlet (trusted
// path end to end).

#include <gtest/gtest.h>

#include "src/loader/system_image.h"
#include "src/os/nanos.h"
#include "src/platform/platform.h"
#include "src/services/attestation.h"
#include "src/trustlet/builder.h"

namespace trustlite {
namespace {

TrustletBuildSpec FirmwareSpec() {
  TrustletBuildSpec spec;
  spec.name = "FW";
  spec.code_addr = 0x11000;
  spec.data_addr = 0x12000;
  spec.data_size = 0x400;
  spec.stack_size = 0x100;
  spec.body = "tl_main:\n    swi 0\n    jmp tl_main\n";
  return spec;
}

class RemoteAttestationTest : public ::testing::Test {
 protected:
  void Boot() {
    SystemImage image;
    firmware_ = *BuildTrustlet(FirmwareSpec());
    image.Add(firmware_);

    attn_.code_addr = 0x15000;
    attn_.data_addr = 0x16000;
    for (size_t i = 0; i < attn_.key.size(); ++i) {
      attn_.key[i] = static_cast<uint8_t>(0x30 + i);
    }
    Result<TrustletMeta> attn_meta = BuildUartAttestationTrustlet(attn_);
    ASSERT_TRUE(attn_meta.ok()) << attn_meta.status().ToString();
    image.Add(*attn_meta);

    NanosConfig os_config;
    os_config.grant_uart = false;  // The UART belongs to the attestor.
    os_config.timer_period = 2000;
    image.Add(*BuildNanos(os_config));
    ASSERT_TRUE(platform_.InstallImage(image).ok());
    Result<LoadReport> report = platform_.BootAndLaunch();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }

  // One verifier round trip over the serial line.
  bool Challenge(uint32_t target, uint32_t challenge, uint32_t* status,
                 Sha256Digest* report) {
    const size_t response_offset = platform_.uart().output().size();
    platform_.uart().PushInput(EncodeAttestationRequest(target, challenge));
    for (int spins = 0; spins < 50; ++spins) {
      platform_.Run(50000);
      if (DecodeAttestationResponse(platform_.uart().output(),
                                    response_offset, status, report)) {
        return true;
      }
      if (platform_.cpu().halted()) {
        return false;
      }
    }
    return false;
  }

  Platform platform_;
  TrustletMeta firmware_;
  AttestationSpec attn_;
};

TEST_F(RemoteAttestationTest, VerifierRoundTrip) {
  Boot();
  uint32_t status = 0;
  Sha256Digest report;
  ASSERT_TRUE(Challenge(MakeTrustletId("FW"), 0x600D600D, &status, &report));
  EXPECT_EQ(status, kAttestStatusOk);

  std::vector<uint8_t> live_code;
  ASSERT_TRUE(platform_.bus().HostReadBytes(
      firmware_.code_addr, static_cast<uint32_t>(firmware_.code.size()),
      &live_code));
  EXPECT_EQ(report,
            ExpectedAttestationReport(attn_.key, 0x600D600D, live_code));
}

TEST_F(RemoteAttestationTest, FreshChallengesFreshReports) {
  Boot();
  uint32_t status = 0;
  Sha256Digest r1;
  Sha256Digest r2;
  ASSERT_TRUE(Challenge(MakeTrustletId("FW"), 1, &status, &r1));
  ASSERT_TRUE(Challenge(MakeTrustletId("FW"), 2, &status, &r2));
  EXPECT_NE(r1, r2);
}

TEST_F(RemoteAttestationTest, TamperDetectedRemotely) {
  Boot();
  uint32_t status = 0;
  Sha256Digest clean;
  ASSERT_TRUE(Challenge(MakeTrustletId("FW"), 42, &status, &clean));
  // Fault-inject the firmware (host-level). Target the final code word
  // (the default call handler), which this workload never executes — the
  // system keeps running, but the measurement must still change.
  const uint32_t victim_word =
      firmware_.code_addr + static_cast<uint32_t>(firmware_.code.size()) - 4;
  uint32_t word = 0;
  ASSERT_TRUE(platform_.bus().HostReadWord(victim_word, &word));
  ASSERT_TRUE(platform_.bus().HostWriteWord(victim_word, word ^ 0x2));
  Sha256Digest tampered;
  ASSERT_TRUE(Challenge(MakeTrustletId("FW"), 42, &status, &tampered));
  EXPECT_EQ(status, kAttestStatusOk);
  EXPECT_NE(clean, tampered);
}

TEST_F(RemoteAttestationTest, UnknownTargetReported) {
  Boot();
  uint32_t status = 0;
  Sha256Digest report;
  ASSERT_TRUE(Challenge(MakeTrustletId("ZZ"), 7, &status, &report));
  EXPECT_EQ(status, kAttestStatusUnknownTarget);
}

TEST_F(RemoteAttestationTest, GarbageBytesResynchronized) {
  Boot();
  // Noise on the line before a valid frame.
  platform_.uart().PushInput("\x00\xFFnoise");
  platform_.Run(100000);
  uint32_t status = 0;
  Sha256Digest report;
  ASSERT_TRUE(Challenge(MakeTrustletId("FW"), 9, &status, &report));
  EXPECT_EQ(status, kAttestStatusOk);
}

}  // namespace
}  // namespace trustlite
