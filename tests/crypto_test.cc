// Copyright 2026 The TrustLite Reproduction Authors.
// Crypto substrate tests: SHA-256 against FIPS/NIST vectors, HMAC-SHA256
// against RFC 4231, SPONGENT structural properties.

#include <gtest/gtest.h>

#include <set>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"
#include "src/crypto/spongent.h"

namespace trustlite {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexEncode(Sha256Hash(Bytes("")).data(), 32),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexEncode(Sha256Hash(Bytes("abc")).data(), 32),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HexEncode(Sha256Hash(Bytes("abcdbcdecdefdefgefghfghighijhijkijkl"
                                       "jklmklmnlmnomnopnopq"))
                          .data(),
                      32),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::vector<uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(chunk);
  }
  EXPECT_EQ(HexEncode(hasher.Finish().data(), 32),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Xoshiro256 rng(42);
  std::vector<uint8_t> data(1337);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next32());
  }
  const Sha256Digest oneshot = Sha256Hash(data);
  // Feed in irregular pieces.
  Sha256 hasher;
  size_t pos = 0;
  const size_t pieces[] = {1, 63, 64, 65, 100, 1044};
  for (const size_t piece : pieces) {
    const size_t take = std::min(piece, data.size() - pos);
    hasher.Update(data.data() + pos, take);
    pos += take;
  }
  ASSERT_EQ(pos, data.size());
  EXPECT_EQ(hasher.Finish(), oneshot);
}

TEST(Sha256Test, PaddingBoundaries) {
  // Messages around the 55/56/64-byte padding edges must all differ.
  std::set<std::string> digests;
  for (size_t len = 54; len <= 66; ++len) {
    const std::vector<uint8_t> msg(len, 0x5A);
    digests.insert(HexEncode(Sha256Hash(msg).data(), 32));
  }
  EXPECT_EQ(digests.size(), 13u);
}

TEST(HmacTest, Rfc4231Case1) {
  const std::vector<uint8_t> key(20, 0x0b);
  EXPECT_EQ(HexEncode(HmacSha256(key, Bytes("Hi There")).data(), 32),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(HexEncode(HmacSha256(Bytes("Jefe"),
                                 Bytes("what do ya want for nothing?"))
                          .data(),
                      32),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const std::vector<uint8_t> key(20, 0xaa);
  const std::vector<uint8_t> data(50, 0xdd);
  EXPECT_EQ(HexEncode(HmacSha256(key, data).data(), 32),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const std::vector<uint8_t> key(131, 0xaa);
  EXPECT_EQ(
      HexEncode(HmacSha256(key, Bytes("Test Using Larger Than Block-Size Key "
                                      "- Hash Key First"))
                    .data(),
                32),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, KeySensitivity) {
  const std::vector<uint8_t> key1(16, 0x01);
  std::vector<uint8_t> key2 = key1;
  key2[15] ^= 1;
  const std::vector<uint8_t> msg = Bytes("measurement");
  EXPECT_NE(HmacSha256(key1, msg), HmacSha256(key2, msg));
}

TEST(ConstantTimeEqualTest, Basics) {
  const uint8_t a[4] = {1, 2, 3, 4};
  const uint8_t b[4] = {1, 2, 3, 4};
  const uint8_t c[4] = {1, 2, 3, 5};
  EXPECT_TRUE(ConstantTimeEqual(a, b, 4));
  EXPECT_FALSE(ConstantTimeEqual(a, c, 4));
  EXPECT_TRUE(ConstantTimeEqual(a, c, 3));
}

TEST(SpongentTest, Deterministic) {
  const std::vector<uint8_t> msg = Bytes("sancus module");
  EXPECT_EQ(SpongentHash(msg), SpongentHash(msg));
}

TEST(SpongentTest, DistinctInputsDistinctDigests) {
  std::set<std::string> digests;
  for (int i = 0; i < 256; ++i) {
    std::vector<uint8_t> msg = {static_cast<uint8_t>(i),
                                static_cast<uint8_t>(i >> 4), 7};
    digests.insert(HexEncode(SpongentHash(msg).data(), kSpongentDigestSize));
  }
  EXPECT_EQ(digests.size(), 256u);
}

TEST(SpongentTest, LengthExtensionInputsDiffer) {
  // "A" then "B" absorbed as one message differs from hash("AB") prefix
  // tricks: check a few structured pairs.
  EXPECT_NE(SpongentHash(Bytes("AB")), SpongentHash(Bytes("A")));
  EXPECT_NE(SpongentHash(Bytes("")), SpongentHash(std::vector<uint8_t>{0x00}));
  EXPECT_NE(SpongentHash(std::vector<uint8_t>{0x80}),
            SpongentHash(Bytes("")));
}

TEST(SpongentTest, PermutationIsBijective) {
  // Distinct states must map to distinct states (spot-check with many
  // random states; a collision would falsify bijectivity).
  Xoshiro256 rng(7);
  std::set<std::string> outputs;
  for (int i = 0; i < 512; ++i) {
    std::array<uint8_t, kSpongentStateBytes> state;
    for (auto& b : state) {
      b = static_cast<uint8_t>(rng.Next32());
    }
    const std::string in = HexEncode(state.data(), state.size());
    Spongent::Permute(state);
    outputs.insert(HexEncode(state.data(), state.size()));
  }
  EXPECT_EQ(outputs.size(), 512u);
}

TEST(SpongentTest, AvalancheFromSingleBitFlip) {
  std::array<uint8_t, kSpongentStateBytes> a{};
  std::array<uint8_t, kSpongentStateBytes> b{};
  b[0] = 1;  // One-bit difference.
  Spongent::Permute(a);
  Spongent::Permute(b);
  int differing_bits = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    differing_bits += __builtin_popcount(a[i] ^ b[i]);
  }
  // Expect roughly half the 176 bits to differ; demand at least a quarter.
  EXPECT_GE(differing_bits, 44);
}

TEST(SpongentTest, MacDependsOnKeyAndData) {
  const std::vector<uint8_t> key1 = Bytes("key-one-16bytes!");
  const std::vector<uint8_t> key2 = Bytes("key-two-16bytes!");
  const std::vector<uint8_t> msg = Bytes("module text");
  EXPECT_EQ(SpongentMac(key1, msg), SpongentMac(key1, msg));
  EXPECT_NE(SpongentMac(key1, msg), SpongentMac(key2, msg));
  EXPECT_NE(SpongentMac(key1, msg), SpongentMac(key1, Bytes("module texu")));
}

TEST(SpongentTest, IncrementalMatchesOneShot) {
  const std::vector<uint8_t> data = Bytes("0123456789abcdefghij");
  Spongent s;
  s.Update(data.data(), 3);
  s.Update(data.data() + 3, 7);
  s.Update(data.data() + 10, 10);
  EXPECT_EQ(s.Finish(), SpongentHash(data));
}

}  // namespace
}  // namespace trustlite
