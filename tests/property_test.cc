// Copyright 2026 The TrustLite Reproduction Authors.
//
// Property-based tests for the security invariants of DESIGN.md Sec. 7:
// random attacker programs cannot breach isolation, rule evaluation is
// monotonic, the MPU lock is irreversible, and trustlet state survives
// arbitrary preemption points.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/isa/isa.h"
#include "src/loader/system_image.h"
#include "src/os/nanos.h"
#include "src/platform/platform.h"
#include "src/trustlet/builder.h"

namespace trustlite {
namespace {

// --- Invariant 1: random programs in open memory cannot touch trustlet
// memory. ---------------------------------------------------------------

class RandomAttackerTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomAttackerTest, CannotModifyTrustletMemory) {
  Platform platform;
  SystemImage image;
  TrustletBuildSpec spec;
  spec.name = "VIC";
  spec.code_addr = 0x11000;
  spec.data_addr = 0x12000;
  spec.data_size = 0x400;
  spec.stack_size = 0x100;
  spec.body = "tl_main:\n    swi 0\n    jmp tl_main\n";
  Result<TrustletMeta> victim = BuildTrustlet(spec);
  ASSERT_TRUE(victim.ok());
  image.Add(*victim);
  NanosConfig os_config;
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  ASSERT_TRUE(platform.InstallImage(image).ok());
  ASSERT_TRUE(platform.Boot().ok());

  // Place a sentinel pattern in the victim's memory (host-level). The top
  // 0x180 bytes of the data region are excluded: they hold the victim's own
  // stack and saved-state frame, which the victim itself legitimately
  // touches if the attacker invokes its entry vector.
  std::vector<uint8_t> code_before;
  ASSERT_TRUE(platform.bus().HostReadBytes(
      0x11000, static_cast<uint32_t>(victim->code.size()), &code_before));
  std::vector<uint8_t> sentinel(0x400 - 0x180);
  Xoshiro256 seed_rng(static_cast<uint64_t>(GetParam()) * 77 + 3);
  for (auto& b : sentinel) {
    b = static_cast<uint8_t>(seed_rng.Next32());
  }
  ASSERT_TRUE(platform.bus().HostWriteBytes(0x12000, sentinel));

  // Generate a random attacker program in open memory. Bias register values
  // toward the victim's addresses so stores actually aim at the target.
  Xoshiro256 rng(static_cast<uint64_t>(GetParam()) * 1337 + 11);
  std::vector<uint8_t> program;
  for (int i = 0; i < 256; ++i) {
    uint32_t word;
    switch (rng.NextBelow(5)) {
      case 0:  // Load a victim-ish address into a register.
        word = Encode({Opcode::kMovi, static_cast<uint8_t>(rng.NextBelow(13)),
                       0, 0,
                       static_cast<int32_t>(0x11000 + rng.NextBelow(0x1400))});
        break;
      case 1:  // Store.
        word = Encode({Opcode::kStw, static_cast<uint8_t>(rng.NextBelow(13)),
                       static_cast<uint8_t>(rng.NextBelow(13)), 0,
                       static_cast<int32_t>(rng.NextBelow(64)) * 4 - 128});
        break;
      case 2:  // Load (probing reads).
        word = Encode({Opcode::kLdw, static_cast<uint8_t>(rng.NextBelow(13)),
                       static_cast<uint8_t>(rng.NextBelow(13)), 0,
                       static_cast<int32_t>(rng.NextBelow(64)) * 4 - 128});
        break;
      case 3:  // ALU noise.
        word = Encode({Opcode::kAdd, static_cast<uint8_t>(rng.NextBelow(13)),
                       static_cast<uint8_t>(rng.NextBelow(13)),
                       static_cast<uint8_t>(rng.NextBelow(13)), 0});
        break;
      default:  // Jump into the victim (must only reach the entry vector).
        word = Encode({Opcode::kJr, 0, static_cast<uint8_t>(rng.NextBelow(13)),
                       0, 0});
        break;
    }
    AppendLe32(program, word);
  }
  AppendLe32(program, Encode({Opcode::kHalt, 0, 0, 0, 0}));
  ASSERT_TRUE(platform.bus().HostWriteBytes(0x30000, program));

  platform.cpu().Reset(0x30000);
  platform.cpu().set_reg(kRegSp, 0x3A000);
  platform.Run(5000);

  // Whatever happened (halt, fault trap, wild jump), the victim's code and
  // data are intact.
  std::vector<uint8_t> code_after;
  ASSERT_TRUE(platform.bus().HostReadBytes(
      0x11000, static_cast<uint32_t>(victim->code.size()), &code_after));
  EXPECT_EQ(code_before, code_after);
  std::vector<uint8_t> data_after;
  ASSERT_TRUE(platform.bus().HostReadBytes(0x12000, 0x400 - 0x180, &data_after));
  EXPECT_EQ(sentinel, data_after);
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, RandomAttackerTest,
                         ::testing::Range(0, 40));

// --- Invariant: adding rules is monotonic (never revokes access). -------

class RuleMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(RuleMonotonicityTest, AddingRulesNeverRevokes) {
  EaMpu mpu(kMpuMmioBase, 8, 16);
  Xoshiro256 rng(static_cast<uint64_t>(GetParam()) * 99 + 5);

  // Random regions within a 64 KiB window.
  for (int i = 0; i < 8; ++i) {
    const uint32_t base = 0x10000 + static_cast<uint32_t>(rng.NextBelow(15)) * 0x1000;
    const uint32_t size = (1 + static_cast<uint32_t>(rng.NextBelow(4))) * 0x400;
    mpu.Write(kMpuRegionBank + static_cast<uint32_t>(i) * kMpuRegionStride, 4, base);
    mpu.Write(kMpuRegionBank + static_cast<uint32_t>(i) * kMpuRegionStride + 4, 4,
              base + size);
    mpu.Write(kMpuRegionBank + static_cast<uint32_t>(i) * kMpuRegionStride + 8, 4,
              kMpuAttrEnable | (rng.NextBool() ? kMpuAttrCode : 0u));
  }
  for (int i = 0; i < 8; ++i) {
    mpu.Write(kMpuRuleBank + static_cast<uint32_t>(i) * 4, 4,
              EncodeMpuRule(static_cast<uint32_t>(rng.NextBelow(8)),
                            static_cast<uint32_t>(rng.NextBelow(8)),
                            rng.NextBool(), rng.NextBool(), rng.NextBool()));
  }
  mpu.Write(kMpuRegCtrl, 4, kMpuCtrlEnable);

  // Sample a set of accesses and record the allowed ones.
  struct Probe {
    AccessContext ctx;
    uint32_t addr;
  };
  std::vector<Probe> allowed;
  for (int i = 0; i < 400; ++i) {
    Probe probe;
    probe.ctx.curr_ip = 0x10000 + static_cast<uint32_t>(rng.NextBelow(0x10000));
    probe.ctx.kind = static_cast<AccessKind>(rng.NextBelow(3));
    probe.addr =
        (0x10000 + static_cast<uint32_t>(rng.NextBelow(0x10000))) & ~3u;
    if (mpu.Check(probe.ctx, probe.addr, 4) == AccessResult::kOk) {
      allowed.push_back(probe);
    }
  }
  // Add more random rules in the free slots.
  for (int i = 8; i < 16; ++i) {
    mpu.Write(kMpuRuleBank + static_cast<uint32_t>(i) * 4, 4,
              EncodeMpuRule(static_cast<uint32_t>(rng.NextBelow(8)),
                            static_cast<uint32_t>(rng.NextBelow(8)),
                            rng.NextBool(), rng.NextBool(), rng.NextBool()));
  }
  for (const Probe& probe : allowed) {
    EXPECT_EQ(mpu.Check(probe.ctx, probe.addr, 4), AccessResult::kOk);
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, RuleMonotonicityTest,
                         ::testing::Range(0, 20));

// --- Invariant: the global lock is irreversible under guest writes. ------

class LockFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(LockFuzzTest, LockedRegisterFileIsImmutable) {
  EaMpu mpu(kMpuMmioBase, 8, 16);
  Xoshiro256 rng(static_cast<uint64_t>(GetParam()) * 31 + 1);
  // Random initial config + lock.
  for (uint32_t offset = kMpuRegionBank; offset < kMpuRegionBank + 8 * 16;
       offset += 4) {
    mpu.Write(offset, 4, rng.Next32());
  }
  mpu.Write(kMpuRegCtrl, 4, kMpuCtrlEnable | kMpuCtrlLock);

  auto snapshot = [&mpu]() {
    std::vector<uint32_t> state;
    for (uint32_t offset = kMpuRegionBank; offset < kMpuRegionBank + 8 * 16;
         offset += 4) {
      uint32_t value = 0;
      mpu.Read(offset, 4, &value);
      state.push_back(value);
    }
    for (uint32_t offset = kMpuRuleBank; offset < kMpuRuleBank + 16 * 4;
         offset += 4) {
      uint32_t value = 0;
      mpu.Read(offset, 4, &value);
      state.push_back(value);
    }
    uint32_t ctrl = 0;
    mpu.Read(kMpuRegCtrl, 4, &ctrl);
    state.push_back(ctrl);
    return state;
  };

  const std::vector<uint32_t> before = snapshot();
  // 500 random writes all over the register file (except FAULT_INFO, which
  // is documented as always writable for acknowledgement).
  for (int i = 0; i < 500; ++i) {
    uint32_t offset = (rng.Next32() % 0xA00) & ~3u;
    if (offset == kMpuRegFaultInfo) {
      continue;
    }
    mpu.Write(offset, 4, rng.Next32());
  }
  EXPECT_EQ(before, snapshot());
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, LockFuzzTest, ::testing::Range(0, 10));

// --- Invariant: trustlet computation is preemption-transparent for any
// timer period. -----------------------------------------------------------

class PreemptionFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PreemptionFuzzTest, ChecksumUnaffectedByPreemptionTiming) {
  Xoshiro256 rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const uint32_t period = 150 + static_cast<uint32_t>(rng.NextBelow(2000));

  Platform platform;
  SystemImage image;
  TrustletBuildSpec spec;
  spec.name = "SUM";
  spec.code_addr = 0x11000;
  spec.data_addr = 0x12000;
  spec.data_size = 0x400;
  spec.stack_size = 0x100;
  spec.body = R"(
tl_main:
    movi r1, 0
    movi r2, 0
    li   r3, 3000
sum_loop:
    addi r1, r1, 1
    mul  r4, r1, r1
    add  r2, r2, r4
    bne  r1, r3, sum_loop
    li   r4, 0x30010
    stw  r2, [r4]
park:
    swi 0
    jmp park
)";
  Result<TrustletMeta> tl = BuildTrustlet(spec);
  ASSERT_TRUE(tl.ok());
  image.Add(*tl);
  NanosConfig os_config;
  os_config.timer_period = period;
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  ASSERT_TRUE(platform.InstallImage(image).ok());
  Result<LoadReport> report = platform.BootAndLaunch();
  ASSERT_TRUE(report.ok());

  platform.Run(200000);
  ASSERT_FALSE(platform.cpu().halted()) << platform.cpu().trap().reason;
  uint32_t expected = 0;
  for (uint32_t i = 1; i <= 3000; ++i) {
    expected += i * i;
  }
  uint32_t result = 0;
  ASSERT_TRUE(platform.bus().HostReadWord(0x30010, &result));
  EXPECT_EQ(result, expected) << "period=" << period;
}

INSTANTIATE_TEST_SUITE_P(ManyPeriods, PreemptionFuzzTest,
                         ::testing::Range(0, 15));


// --- Differential check: EaMpu vs an independent reference model built
// straight from the documented semantics (ea_mpu.h header comment). -------

namespace reference {

struct Region {
  uint32_t base, end, attr;
};

bool Enabled(const Region& r) { return (r.attr & kMpuAttrEnable) != 0; }
bool Contains(const Region& r, uint32_t a) {
  return Enabled(r) && a >= r.base && a < r.end;
}

// The reference decision procedure, written independently from the spec:
// subject = first enabled *code* region containing curr_ip; a byte covered
// by any enabled region needs a matching rule; cross-region execute only at
// the object region's first word; compat mode applies privilege filters to
// wildcard-subject rules and drops the entry-vector restriction.
bool Allowed(const std::vector<Region>& regions,
             const std::vector<uint32_t>& rules, uint32_t ctrl,
             const AccessContext& ctx, uint32_t addr, uint32_t width) {
  if ((ctrl & kMpuCtrlEnable) == 0) {
    return true;
  }
  const bool compat = (ctrl & kMpuCtrlCompatMode) != 0;
  int subject = -1;
  for (size_t i = 0; i < regions.size(); ++i) {
    if (Contains(regions[i], ctx.curr_ip) &&
        (regions[i].attr & kMpuAttrCode) != 0) {
      subject = static_cast<int>(i);
      break;
    }
  }
  const uint32_t granularity = ctx.kind == AccessKind::kFetch ? 1 : width;
  for (uint32_t i = 0; i < granularity; ++i) {
    const uint32_t byte = addr + i;
    bool covered = false;
    bool ok = false;
    for (size_t r = 0; r < regions.size(); ++r) {
      if (!Contains(regions[r], byte)) {
        continue;
      }
      covered = true;
      for (const uint32_t rule : rules) {
        if ((rule & kMpuRuleEnable) == 0) {
          continue;
        }
        if (((rule >> kMpuRuleObjectShift) & 0xFF) != r) {
          continue;
        }
        const uint32_t rule_subject = rule & 0xFF;
        bool subject_match;
        if (rule_subject == kMpuSubjectAny) {
          const uint32_t priv = (rule >> kMpuRulePrivShift) & 0x3;
          subject_match = true;
          if (compat && priv == kMpuPrivUserOnly && ctx.privileged) {
            subject_match = false;
          }
          if (compat && priv == kMpuPrivSupervisorOnly && !ctx.privileged) {
            subject_match = false;
          }
        } else {
          subject_match = subject >= 0 &&
                          rule_subject == static_cast<uint32_t>(subject);
        }
        if (!subject_match) {
          continue;
        }
        if (ctx.kind == AccessKind::kRead && (rule & kMpuRuleRead) != 0) {
          ok = true;
        } else if (ctx.kind == AccessKind::kWrite &&
                   (rule & kMpuRuleWrite) != 0) {
          ok = true;
        } else if (ctx.kind == AccessKind::kFetch &&
                   (rule & kMpuRuleExec) != 0) {
          const bool self = subject >= 0 &&
                            rule_subject == static_cast<uint32_t>(subject) &&
                            r == static_cast<size_t>(subject);
          if (self || compat || addr == regions[r].base) {
            ok = true;
          }
        }
        if (ok) {
          break;
        }
      }
      if (ok) {
        break;
      }
    }
    if (covered && !ok) {
      return false;
    }
  }
  return true;
}

}  // namespace reference

class MpuDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(MpuDifferentialTest, ImplementationMatchesReferenceModel) {
  Xoshiro256 rng(static_cast<uint64_t>(GetParam()) * 104729 + 17);
  EaMpu mpu(kMpuMmioBase, 8, 16);
  std::vector<reference::Region> regions;
  std::vector<uint32_t> rules;
  for (int i = 0; i < 8; ++i) {
    reference::Region region;
    region.base = 0x10000 + static_cast<uint32_t>(rng.NextBelow(64)) * 0x100;
    region.end = region.base + static_cast<uint32_t>(rng.NextBelow(8)) * 0x100;
    region.attr = static_cast<uint32_t>(rng.NextBelow(16));  // enable/lock/code/os
    regions.push_back(region);
    const uint32_t reg =
        kMpuRegionBank + static_cast<uint32_t>(i) * kMpuRegionStride;
    mpu.Write(reg + 0, 4, region.base);
    mpu.Write(reg + 4, 4, region.end);
    mpu.Write(reg + 8, 4, region.attr);
  }
  for (int i = 0; i < 16; ++i) {
    const uint32_t subject =
        rng.NextBool() ? kMpuSubjectAny
                       : static_cast<uint32_t>(rng.NextBelow(8));
    const uint32_t rule =
        EncodeMpuRule(subject, static_cast<uint32_t>(rng.NextBelow(8)),
                      rng.NextBool(), rng.NextBool(), rng.NextBool(),
                      static_cast<uint32_t>(rng.NextBelow(3)));
    rules.push_back(rule);
    mpu.Write(kMpuRuleBank + static_cast<uint32_t>(i) * 4, 4, rule);
  }
  const uint32_t ctrl =
      kMpuCtrlEnable | (rng.NextBool() ? kMpuCtrlCompatMode : 0u);
  mpu.Write(kMpuRegCtrl, 4, ctrl);

  for (int i = 0; i < 2000; ++i) {
    AccessContext ctx;
    ctx.curr_ip = 0x10000 + static_cast<uint32_t>(rng.NextBelow(0x8000));
    ctx.kind = static_cast<AccessKind>(rng.NextBelow(3));
    ctx.privileged = rng.NextBool();
    const uint32_t width = ctx.kind == AccessKind::kFetch || rng.NextBool()
                               ? 4u
                               : 1u;
    uint32_t addr = 0x10000 + static_cast<uint32_t>(rng.NextBelow(0x8000));
    if (width == 4) {
      addr &= ~3u;
    }
    const bool expected =
        reference::Allowed(regions, rules, ctrl, ctx, addr, width);
    const bool actual = mpu.Check(ctx, addr, width) == AccessResult::kOk;
    ASSERT_EQ(actual, expected)
        << "seed=" << GetParam() << " i=" << i << " ip=" << ctx.curr_ip
        << " kind=" << static_cast<int>(ctx.kind) << " addr=" << addr
        << " width=" << width << " priv=" << ctx.privileged;
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, MpuDifferentialTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace trustlite
