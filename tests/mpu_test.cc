// Copyright 2026 The TrustLite Reproduction Authors.
// Unit tests for the Execution-Aware MPU: subject resolution, rule
// evaluation, entry-vector semantics, locking, fault latching, and the
// conventional-MPU compatibility mode.

#include "src/mpu/ea_mpu.h"

#include <gtest/gtest.h>

#include "src/mem/layout.h"
#include "src/mem/memory.h"

namespace trustlite {
namespace {

// Layout used throughout: two trustlet code regions, their data regions and
// one shared peripheral-like region, all inside one RAM device.
constexpr uint32_t kCodeA = 0x0001'0000;
constexpr uint32_t kCodeAEnd = 0x0001'0100;
constexpr uint32_t kDataA = 0x0001'1000;
constexpr uint32_t kDataAEnd = 0x0001'1100;
constexpr uint32_t kCodeB = 0x0001'2000;
constexpr uint32_t kCodeBEnd = 0x0001'2100;
constexpr uint32_t kDataB = 0x0001'3000;
constexpr uint32_t kDataBEnd = 0x0001'3100;
constexpr uint32_t kShared = 0x0001'4000;
constexpr uint32_t kSharedEnd = 0x0001'4040;
constexpr uint32_t kOpenRam = 0x0001'8000;  // Covered by no region.

constexpr int kRegionCodeA = 0;
constexpr int kRegionDataA = 1;
constexpr int kRegionCodeB = 2;
constexpr int kRegionDataB = 3;
constexpr int kRegionShared = 4;

class MpuTest : public ::testing::Test {
 protected:
  MpuTest()
      : ram_("ram", kSramBase, kSramSize), mpu_(kMpuMmioBase, 16, 32) {
    bus_.Attach(&ram_);
    bus_.Attach(&mpu_);
    bus_.SetProtectionUnit(&mpu_);
    SetRegion(kRegionCodeA, kCodeA, kCodeAEnd, kMpuAttrEnable | kMpuAttrCode);
    SetRegion(kRegionDataA, kDataA, kDataAEnd, kMpuAttrEnable);
    SetRegion(kRegionCodeB, kCodeB, kCodeBEnd, kMpuAttrEnable | kMpuAttrCode);
    SetRegion(kRegionDataB, kDataB, kDataBEnd, kMpuAttrEnable);
    SetRegion(kRegionShared, kShared, kSharedEnd, kMpuAttrEnable);
  }

  void SetRegion(int index, uint32_t base, uint32_t end, uint32_t attr,
                 uint32_t sp_slot = 0) {
    const uint32_t reg = kMpuMmioBase + kMpuRegionBank +
                         static_cast<uint32_t>(index) * kMpuRegionStride;
    ASSERT_TRUE(bus_.HostWriteWord(reg + 0, base));
    ASSERT_TRUE(bus_.HostWriteWord(reg + 4, end));
    ASSERT_TRUE(bus_.HostWriteWord(reg + 8, attr));
    ASSERT_TRUE(bus_.HostWriteWord(reg + 12, sp_slot));
  }

  void SetRule(int index, uint32_t subject, uint32_t object, bool r, bool w,
               bool x, uint32_t priv = kMpuPrivAny) {
    ASSERT_TRUE(bus_.HostWriteWord(
        kMpuMmioBase + kMpuRuleBank + static_cast<uint32_t>(index) * 4,
        EncodeMpuRule(subject, object, r, w, x, priv)));
  }

  void Enable(uint32_t extra = 0) {
    ASSERT_TRUE(
        bus_.HostWriteWord(kMpuMmioBase + kMpuRegCtrl, kMpuCtrlEnable | extra));
  }

  AccessResult Access(uint32_t ip, AccessKind kind, uint32_t addr,
                      uint32_t width = 4, bool privileged = false) {
    AccessContext ctx;
    ctx.curr_ip = ip;
    ctx.kind = kind;
    ctx.privileged = privileged;
    return mpu_.Check(ctx, addr, width);
  }

  Bus bus_;
  Ram ram_;
  EaMpu mpu_;
};

TEST_F(MpuTest, DisabledUnitAllowsEverything) {
  EXPECT_EQ(Access(kOpenRam, AccessKind::kWrite, kDataA), AccessResult::kOk);
  EXPECT_EQ(Access(kOpenRam, AccessKind::kFetch, kCodeA + 8),
            AccessResult::kOk);
}

TEST_F(MpuTest, UncoveredMemoryIsOpen) {
  Enable();
  EXPECT_EQ(Access(kOpenRam, AccessKind::kRead, kOpenRam + 0x100),
            AccessResult::kOk);
  EXPECT_EQ(Access(kCodeA, AccessKind::kWrite, kOpenRam + 0x100),
            AccessResult::kOk);
}

TEST_F(MpuTest, CoveredMemoryNeedsARule) {
  Enable();
  EXPECT_EQ(Access(kOpenRam, AccessKind::kRead, kDataA),
            AccessResult::kProtFault);
  SetRule(0, kRegionCodeA, kRegionDataA, true, true, false);
  // Subject A allowed; others still denied.
  EXPECT_EQ(Access(kCodeA + 4, AccessKind::kRead, kDataA), AccessResult::kOk);
  EXPECT_EQ(Access(kCodeA + 4, AccessKind::kWrite, kDataA + 8),
            AccessResult::kOk);
  EXPECT_EQ(Access(kCodeB + 4, AccessKind::kRead, kDataA),
            AccessResult::kProtFault);
  EXPECT_EQ(Access(kOpenRam, AccessKind::kWrite, kDataA),
            AccessResult::kProtFault);
}

TEST_F(MpuTest, ExecutionAwareSubjectIsCurrIp) {
  Enable();
  SetRule(0, kRegionCodeA, kRegionDataA, true, true, false);
  SetRule(1, kRegionCodeB, kRegionDataB, true, true, false);
  // A cannot touch B's data and vice versa — per-module isolation without
  // privilege levels (the Fig. 3 matrix).
  EXPECT_EQ(Access(kCodeA, AccessKind::kRead, kDataB),
            AccessResult::kProtFault);
  EXPECT_EQ(Access(kCodeB, AccessKind::kRead, kDataA),
            AccessResult::kProtFault);
  EXPECT_EQ(Access(kCodeA, AccessKind::kRead, kDataA), AccessResult::kOk);
  EXPECT_EQ(Access(kCodeB, AccessKind::kRead, kDataB), AccessResult::kOk);
}

TEST_F(MpuTest, ReadDoesNotImplyWrite) {
  Enable();
  SetRule(0, kRegionCodeA, kRegionDataB, true, false, false);
  EXPECT_EQ(Access(kCodeA, AccessKind::kRead, kDataB), AccessResult::kOk);
  EXPECT_EQ(Access(kCodeA, AccessKind::kWrite, kDataB),
            AccessResult::kProtFault);
}

TEST_F(MpuTest, SelfExecuteRuleCoversWholeRegion) {
  Enable();
  SetRule(0, kRegionCodeA, kRegionCodeA, true, false, true);
  EXPECT_EQ(Access(kCodeA, AccessKind::kFetch, kCodeA + 4), AccessResult::kOk);
  EXPECT_EQ(Access(kCodeA + 0x40, AccessKind::kFetch, kCodeA + 0x80),
            AccessResult::kOk);
}

TEST_F(MpuTest, ForeignExecuteOnlyAtEntryVector) {
  Enable();
  SetRule(0, kRegionCodeB, kRegionCodeB, true, false, true);
  SetRule(1, kMpuSubjectAny, kRegionCodeB, false, false, true);
  // Anyone may fetch B's first word (the entry vector, Sec. 5.1) ...
  EXPECT_EQ(Access(kCodeA, AccessKind::kFetch, kCodeB), AccessResult::kOk);
  EXPECT_EQ(Access(kOpenRam, AccessKind::kFetch, kCodeB), AccessResult::kOk);
  // ... but not any other word.
  EXPECT_EQ(Access(kCodeA, AccessKind::kFetch, kCodeB + 4),
            AccessResult::kProtFault);
  EXPECT_EQ(Access(kOpenRam, AccessKind::kFetch, kCodeB + 0x20),
            AccessResult::kProtFault);
  // B itself runs its full region.
  EXPECT_EQ(Access(kCodeB, AccessKind::kFetch, kCodeB + 0x20),
            AccessResult::kOk);
}

TEST_F(MpuTest, SpecificCallerEntryRule) {
  Enable();
  SetRule(0, kRegionCodeA, kRegionCodeB, false, false, true);
  EXPECT_EQ(Access(kCodeA, AccessKind::kFetch, kCodeB), AccessResult::kOk);
  // Unlisted subjects cannot even enter.
  EXPECT_EQ(Access(kOpenRam, AccessKind::kFetch, kCodeB),
            AccessResult::kProtFault);
}

TEST_F(MpuTest, SharedRegionMultipleSubjects) {
  Enable();
  SetRule(0, kRegionCodeA, kRegionShared, true, true, false);
  SetRule(1, kRegionCodeB, kRegionShared, true, false, false);
  EXPECT_EQ(Access(kCodeA, AccessKind::kWrite, kShared), AccessResult::kOk);
  EXPECT_EQ(Access(kCodeB, AccessKind::kRead, kShared), AccessResult::kOk);
  EXPECT_EQ(Access(kCodeB, AccessKind::kWrite, kShared),
            AccessResult::kProtFault);
  EXPECT_EQ(Access(kOpenRam, AccessKind::kRead, kShared),
            AccessResult::kProtFault);
}

TEST_F(MpuTest, WordStraddlingRegionBoundary) {
  Enable();
  SetRule(0, kRegionCodeA, kRegionDataA, true, true, false);
  // A word access at kDataAEnd - 2 covers two bytes inside the region and
  // two bytes of open memory (the MPU check is exercised directly; the bus
  // would reject the misalignment first). Inside bytes allowed + outside
  // open -> OK for the rule holder, fault for everyone else.
  EXPECT_EQ(Access(kCodeA, AccessKind::kWrite, kDataAEnd - 2),
            AccessResult::kOk);
  EXPECT_EQ(Access(kCodeB, AccessKind::kWrite, kDataAEnd - 2),
            AccessResult::kProtFault);
  // Fully inside for completeness.
  EXPECT_EQ(Access(kCodeA, AccessKind::kWrite, kDataAEnd - 4),
            AccessResult::kOk);
}

TEST_F(MpuTest, FaultLatchesFirstFault) {
  Enable();
  EXPECT_EQ(Access(kCodeA + 8, AccessKind::kWrite, kDataB + 4),
            AccessResult::kProtFault);
  EXPECT_EQ(Access(kCodeB, AccessKind::kWrite, kDataA),
            AccessResult::kProtFault);
  uint32_t fault_ip = 0;
  uint32_t fault_addr = 0;
  uint32_t fault_info = 0;
  ASSERT_TRUE(bus_.HostReadWord(kMpuMmioBase + kMpuRegFaultIp, &fault_ip));
  ASSERT_TRUE(bus_.HostReadWord(kMpuMmioBase + kMpuRegFaultAddr, &fault_addr));
  ASSERT_TRUE(bus_.HostReadWord(kMpuMmioBase + kMpuRegFaultInfo, &fault_info));
  EXPECT_EQ(fault_ip, kCodeA + 8);      // First fault wins.
  EXPECT_EQ(fault_addr, kDataB + 4);
  EXPECT_EQ(fault_info & kMpuFaultValid, kMpuFaultValid);
  // Acknowledge, then the next fault latches.
  ASSERT_TRUE(bus_.HostWriteWord(kMpuMmioBase + kMpuRegFaultInfo, 0));
  EXPECT_EQ(Access(kCodeB + 12, AccessKind::kRead, kDataA),
            AccessResult::kProtFault);
  ASSERT_TRUE(bus_.HostReadWord(kMpuMmioBase + kMpuRegFaultIp, &fault_ip));
  EXPECT_EQ(fault_ip, kCodeB + 12);
}

TEST_F(MpuTest, GlobalLockFreezesConfiguration) {
  Enable(kMpuCtrlLock);
  // Region and rule writes are silently ignored.
  const uint32_t region0 = kMpuMmioBase + kMpuRegionBank;
  ASSERT_TRUE(bus_.HostWriteWord(region0, 0xDEAD0000));
  uint32_t value = 0;
  ASSERT_TRUE(bus_.HostReadWord(region0, &value));
  EXPECT_EQ(value, kCodeA);
  ASSERT_TRUE(bus_.HostWriteWord(kMpuMmioBase + kMpuRuleBank, 0xFFFFFFFF));
  ASSERT_TRUE(bus_.HostReadWord(kMpuMmioBase + kMpuRuleBank, &value));
  EXPECT_EQ(value, 0u);
  // CTRL itself is frozen too (cannot unlock).
  ASSERT_TRUE(bus_.HostWriteWord(kMpuMmioBase + kMpuRegCtrl, 0));
  EXPECT_TRUE(mpu_.locked());
  EXPECT_TRUE(mpu_.enabled());
  // FAULT_INFO stays writable (acknowledge path).
  EXPECT_EQ(Access(kOpenRam, AccessKind::kWrite, kDataA),
            AccessResult::kProtFault);
  ASSERT_TRUE(bus_.HostReadWord(kMpuMmioBase + kMpuRegFaultInfo, &value));
  EXPECT_NE(value & kMpuFaultValid, 0u);
  ASSERT_TRUE(bus_.HostWriteWord(kMpuMmioBase + kMpuRegFaultInfo, 0));
  ASSERT_TRUE(bus_.HostReadWord(kMpuMmioBase + kMpuRegFaultInfo, &value));
  EXPECT_EQ(value, 0u);
}

TEST_F(MpuTest, PerRegionLock) {
  const uint32_t region0 = kMpuMmioBase + kMpuRegionBank;
  ASSERT_TRUE(bus_.HostWriteWord(
      region0 + 8, kMpuAttrEnable | kMpuAttrCode | kMpuAttrLock));
  ASSERT_TRUE(bus_.HostWriteWord(region0, 0x12345678));
  uint32_t value = 0;
  ASSERT_TRUE(bus_.HostReadWord(region0, &value));
  EXPECT_EQ(value, kCodeA);  // Unchanged.
  // Other regions remain programmable.
  const uint32_t region5 = region0 + 5 * kMpuRegionStride;
  ASSERT_TRUE(bus_.HostWriteWord(region5, 0x5000));
  ASSERT_TRUE(bus_.HostReadWord(region5, &value));
  EXPECT_EQ(value, 0x5000u);
}

TEST_F(MpuTest, ResetClearsConfiguration) {
  Enable(kMpuCtrlLock);
  mpu_.Reset();
  EXPECT_FALSE(mpu_.enabled());
  EXPECT_FALSE(mpu_.locked());
  uint32_t value = 0xFFFFFFFF;
  ASSERT_TRUE(bus_.HostReadWord(kMpuMmioBase + kMpuRegionBank, &value));
  EXPECT_EQ(value, 0u);
  // Reprogrammable after reset (field update after reboot, Sec. 3.5).
  ASSERT_TRUE(bus_.HostWriteWord(kMpuMmioBase + kMpuRegionBank, 0x7777));
  ASSERT_TRUE(bus_.HostReadWord(kMpuMmioBase + kMpuRegionBank, &value));
  EXPECT_EQ(value, 0x7777u);
}

TEST_F(MpuTest, FindCodeRegion) {
  EXPECT_EQ(mpu_.FindCodeRegion(kCodeA + 4), 0);
  EXPECT_EQ(mpu_.FindCodeRegion(kCodeB + 0x80), 2);
  EXPECT_FALSE(mpu_.FindCodeRegion(kDataA).has_value());  // Not a code region.
  EXPECT_FALSE(mpu_.FindCodeRegion(kOpenRam).has_value());
}

TEST_F(MpuTest, CompatModePrivilegeFilter) {
  Enable(kMpuCtrlCompatMode);
  SetRule(0, kMpuSubjectAny, kRegionDataA, true, true, false,
          kMpuPrivSupervisorOnly);
  SetRule(1, kMpuSubjectAny, kRegionDataB, true, false, false,
          kMpuPrivUserOnly);
  // Supervisor-only region.
  EXPECT_EQ(Access(kOpenRam, AccessKind::kWrite, kDataA, 4, true),
            AccessResult::kOk);
  EXPECT_EQ(Access(kOpenRam, AccessKind::kWrite, kDataA, 4, false),
            AccessResult::kProtFault);
  // User-only region (unusual but expressible).
  EXPECT_EQ(Access(kOpenRam, AccessKind::kRead, kDataB, 4, false),
            AccessResult::kOk);
  EXPECT_EQ(Access(kOpenRam, AccessKind::kRead, kDataB, 4, true),
            AccessResult::kProtFault);
}

TEST_F(MpuTest, CompatModeIsNotExecutionAware) {
  Enable(kMpuCtrlCompatMode);
  SetRule(0, kMpuSubjectAny, kRegionDataA, true, true, false);
  // In compat mode the subject region is irrelevant: anyone (any privilege)
  // passes — demonstrating why a regular MPU cannot isolate modules from a
  // compromised OS (Sec. 3.2).
  EXPECT_EQ(Access(kCodeB, AccessKind::kWrite, kDataA, 4, true),
            AccessResult::kOk);
  EXPECT_EQ(Access(kOpenRam, AccessKind::kWrite, kDataA, 4, true),
            AccessResult::kOk);
}

TEST_F(MpuTest, StatsCountChecksAndFaults) {
  Enable();
  mpu_.ResetStats();
  Access(kOpenRam, AccessKind::kRead, kOpenRam);
  Access(kOpenRam, AccessKind::kRead, kDataA);
  EXPECT_EQ(mpu_.stats().checks, 2u);
  EXPECT_EQ(mpu_.stats().faults, 1u);
}

TEST_F(MpuTest, RegisterFileReadbackAndCounts) {
  uint32_t value = 0;
  ASSERT_TRUE(bus_.HostReadWord(kMpuMmioBase + kMpuRegRegionCount, &value));
  EXPECT_EQ(value, 16u);
  ASSERT_TRUE(bus_.HostReadWord(kMpuMmioBase + kMpuRegRuleCount, &value));
  EXPECT_EQ(value, 32u);
}

TEST_F(MpuTest, DisabledRuleIgnored) {
  Enable();
  const uint32_t rule =
      EncodeMpuRule(kRegionCodeA, kRegionDataA, true, true, false) &
      ~kMpuRuleEnable;
  ASSERT_TRUE(bus_.HostWriteWord(kMpuMmioBase + kMpuRuleBank, rule));
  EXPECT_EQ(Access(kCodeA, AccessKind::kRead, kDataA),
            AccessResult::kProtFault);
}

TEST_F(MpuTest, DisabledRegionDoesNotCoverOrActAsSubject) {
  Enable();
  // Disable region 1 (data A): its addresses become open memory.
  const uint32_t attr_reg =
      kMpuMmioBase + kMpuRegionBank + kRegionDataA * kMpuRegionStride + 8;
  ASSERT_TRUE(bus_.HostWriteWord(attr_reg, 0));
  EXPECT_EQ(Access(kOpenRam, AccessKind::kWrite, kDataA), AccessResult::kOk);
  // Disable code region A: code running there is an unprotected subject.
  const uint32_t code_attr =
      kMpuMmioBase + kMpuRegionBank + kRegionCodeA * kMpuRegionStride + 8;
  ASSERT_TRUE(bus_.HostWriteWord(code_attr, 0));
  SetRule(0, kRegionCodeB, kRegionDataB, true, true, false);
  EXPECT_EQ(Access(kCodeA, AccessKind::kRead, kDataB),
            AccessResult::kProtFault);  // No longer subject B's peer.
  EXPECT_FALSE(mpu_.FindCodeRegion(kCodeA).has_value());
}

TEST_F(MpuTest, EmptyRegionNeverMatches) {
  Enable();
  // Region with end <= base covers nothing.
  SetRegion(6, 0x20000, 0x20000, kMpuAttrEnable);
  EXPECT_EQ(Access(kOpenRam, AccessKind::kWrite, 0x20000), AccessResult::kOk);
}

TEST_F(MpuTest, MultipleRulesFirstGrantWins) {
  Enable();
  // Read-only and read-write rules on the same (subject, object): access is
  // granted if ANY enabled rule allows it, regardless of order.
  SetRule(0, kRegionCodeA, kRegionDataA, true, false, false);
  SetRule(1, kRegionCodeA, kRegionDataA, false, true, false);
  EXPECT_EQ(Access(kCodeA, AccessKind::kRead, kDataA), AccessResult::kOk);
  EXPECT_EQ(Access(kCodeA, AccessKind::kWrite, kDataA), AccessResult::kOk);
  EXPECT_EQ(Access(kCodeA, AccessKind::kFetch, kDataA),
            AccessResult::kProtFault);
}

TEST_F(MpuTest, OverlappingObjectRegionsAnyGrantSuffices) {
  Enable();
  // A second region overlapping data A, granted to subject B: B may access
  // the overlap through its own region/rule even though region 1 denies it.
  SetRegion(7, kDataA + 0x40, kDataA + 0x80, kMpuAttrEnable);
  SetRule(0, kRegionCodeA, kRegionDataA, true, true, false);
  SetRule(1, kRegionCodeB, 7, true, false, false);
  EXPECT_EQ(Access(kCodeB, AccessKind::kRead, kDataA + 0x40),
            AccessResult::kOk);
  EXPECT_EQ(Access(kCodeB, AccessKind::kRead, kDataA),
            AccessResult::kProtFault);  // Outside the overlap window.
  EXPECT_EQ(Access(kCodeB, AccessKind::kWrite, kDataA + 0x40),
            AccessResult::kProtFault);  // Window is read-only for B.
}

TEST_F(MpuTest, SubjectAnyRuleAlsoCoversProtectedSubjects) {
  Enable();
  SetRule(0, kMpuSubjectAny, kRegionShared, true, false, false);
  EXPECT_EQ(Access(kCodeA, AccessKind::kRead, kShared), AccessResult::kOk);
  EXPECT_EQ(Access(kCodeB, AccessKind::kRead, kShared), AccessResult::kOk);
  EXPECT_EQ(Access(kOpenRam, AccessKind::kRead, kShared), AccessResult::kOk);
}

TEST_F(MpuTest, MmioRegisterFileRejectsByteAccess) {
  uint32_t value = 0;
  EXPECT_EQ(mpu_.Read(kMpuRegCtrl, 1, &value), AccessResult::kBusError);
  EXPECT_EQ(mpu_.Write(kMpuRegCtrl, 1, 1), AccessResult::kBusError);
}

TEST_F(MpuTest, OutOfRangeRegisterOffsetsAreBusErrors) {
  uint32_t value = 0;
  EXPECT_EQ(mpu_.Read(0x18, 4, &value), AccessResult::kBusError);
  EXPECT_EQ(mpu_.Read(kMpuRegionBank + 16 * kMpuRegionStride, 4, &value),
            AccessResult::kBusError);
  EXPECT_EQ(mpu_.Write(kMpuRuleBank + 32 * 4, 4, 0), AccessResult::kBusError);
}

TEST_F(MpuTest, AdjacentPlacementSharesOneSubjectRegion) {
  // Paper Sec. 4.2.1: "Ideally, the program code of the desired
  // participants should be in adjacent memory regions. In this way, only
  // one code and data region register is needed to provide all authorized
  // tasks with access" — a single code region spanning two adjacent
  // trustlets acts as a combined subject for the shared window.
  Enable();
  // Region 8 spans two adjacent code areas (e.g. 0x16000-0x16100 and
  // 0x16100-0x16200 packed back to back by the loader).
  SetRegion(8, 0x16000, 0x16200, kMpuAttrEnable | kMpuAttrCode);
  SetRule(0, 8, kRegionShared, true, true, false);  // ONE rule for both.
  EXPECT_EQ(Access(0x16040, AccessKind::kWrite, kShared), AccessResult::kOk);
  EXPECT_EQ(Access(0x16140, AccessKind::kWrite, kShared), AccessResult::kOk);
  // Outside the combined span: still denied.
  EXPECT_EQ(Access(0x16240, AccessKind::kWrite, kShared),
            AccessResult::kProtFault);
  EXPECT_EQ(Access(kCodeA, AccessKind::kWrite, kShared),
            AccessResult::kProtFault);
}

TEST_F(MpuTest, TopOfAddressSpaceAccessDoesNotWrap) {
  // Region 5 covers [0xFFFFF000, 0xFFFFFFFF) with a read rule for anyone;
  // byte 0xFFFFFFFF is covered by no region (region ends are exclusive
  // 32-bit values, so the very top byte is always open). A word read at
  // 0xFFFFFFFC spans covered and open bytes; with 32-bit arithmetic the
  // end-of-access (addr + width) wraps to 0 and the decision goes wrong.
  SetRegion(5, 0xFFFFF000u, 0xFFFFFFFFu, kMpuAttrEnable);
  SetRule(0, kMpuSubjectAny, 5, true, false, false);
  Enable();
  for (const bool fast : {true, false}) {
    mpu_.SetFastPath(fast);
    EXPECT_EQ(Access(kOpenRam, AccessKind::kRead, 0xFFFFFFFCu),
              AccessResult::kOk)
        << "fast=" << fast;
    // No write rule on the covered bytes: the same access as a write denies.
    EXPECT_EQ(Access(kOpenRam, AccessKind::kWrite, 0xFFFFFFFCu),
              AccessResult::kProtFault)
        << "fast=" << fast;
  }
}

TEST_F(MpuTest, AccessStraddlingTopRegionBoundaryChecksEveryByte) {
  // Region 5 = [0xFFFFF000, 0xFFFFFFFE) readable by anyone; region 6 =
  // [0xFFFFFFFE, 0xFFFFFFFF) covered with no rule at all. A word read at
  // 0xFFFFFFFC touches both: the rule-less byte at 0xFFFFFFFE must deny the
  // whole access. A fast path computing addr + width in uint32_t wraps past
  // the top of the address space, mistakes the access for one lying inside
  // the homogeneous [lo, hi) interval of region 5, and allows it.
  SetRegion(5, 0xFFFFF000u, 0xFFFFFFFEu, kMpuAttrEnable);
  SetRegion(6, 0xFFFFFFFEu, 0xFFFFFFFFu, kMpuAttrEnable);
  SetRule(0, kMpuSubjectAny, 5, true, false, false);
  Enable();
  for (const bool fast : {true, false}) {
    mpu_.SetFastPath(fast);
    EXPECT_EQ(Access(kOpenRam, AccessKind::kRead, 0xFFFFFFFCu),
              AccessResult::kProtFault)
        << "fast=" << fast;
    // Entirely inside region 5: still allowed.
    EXPECT_EQ(Access(kOpenRam, AccessKind::kRead, 0xFFFFF000u),
              AccessResult::kOk)
        << "fast=" << fast;
  }
}

TEST(MpuFaultTreeTest, DepthIsLogarithmic) {
  EXPECT_EQ(EaMpu::FaultTreeDepth(1), 0);
  EXPECT_EQ(EaMpu::FaultTreeDepth(2), 1);
  EXPECT_EQ(EaMpu::FaultTreeDepth(8), 3);
  EXPECT_EQ(EaMpu::FaultTreeDepth(9), 4);
  EXPECT_EQ(EaMpu::FaultTreeDepth(32), 5);
}

}  // namespace
}  // namespace trustlite
