// Copyright 2026 The TrustLite Reproduction Authors.
//
// Tests for the implemented future-work extensions:
//  * DMA engines (paper Sec. 6): the classic bypass attack, and the
//    execution-aware DMA defense (OWNER identity checked by the EA-MPU).
//  * Hardware trustlets (paper Sec. 3.6): hardwired MPU regions/rules that
//    survive reset and resist reprogramming.
//  * Memory/engine timing (paper Sec. 9): DRAM wait states and the SHA
//    engine's per-block latency knob.

#include <gtest/gtest.h>

#include "src/dev/dma.h"
#include "src/isa/assembler.h"
#include "src/loader/system_image.h"
#include "src/os/nanos.h"
#include "src/platform/platform.h"
#include "src/trustlet/builder.h"

namespace trustlite {
namespace {

TrustletBuildSpec SecretSpec() {
  TrustletBuildSpec spec;
  spec.name = "SEC";
  spec.code_addr = 0x11000;
  spec.data_addr = 0x12000;
  spec.data_size = 0x400;
  spec.stack_size = 0x100;
  spec.body = R"(
tl_main:
    li  r4, TL_DATA
    li  r5, 0x5EC12E7
    stw r5, [r4 + 16]
park:
    swi 0
    jmp park
)";
  return spec;
}

// Boots a platform with a secret-holding trustlet and a DMA engine.
struct DmaFixture {
  explicit DmaFixture(DmaEngine::Mode mode)
      : platform([mode] {
          PlatformConfig config;
          config.with_dma = true;
          config.dma_mode = mode;
          return config;
        }()) {
    SystemImage image;
    image.Add(*BuildTrustlet(SecretSpec()));
    NanosConfig os_config;
    image.Add(*BuildNanos(os_config));
    EXPECT_TRUE(platform.InstallImage(image).ok());
    Result<LoadReport> report = platform.BootAndLaunch();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    // Let the trustlet run once so the secret exists.
    platform.Run(20000);
    uint32_t secret = 0;
    EXPECT_TRUE(platform.bus().HostReadWord(0x12010, &secret));
    EXPECT_EQ(secret, 0x5EC12E7u);
  }

  // Programs the DMA engine from "software" (host stand-in for the OS; the
  // DMA MMIO block is uncovered in this setup, so the OS could do this).
  uint32_t Transfer(uint32_t src, uint32_t dst, uint32_t len) {
    Bus& bus = platform.bus();
    EXPECT_TRUE(bus.HostWriteWord(kDmaBase + kDmaRegSrc, src));
    EXPECT_TRUE(bus.HostWriteWord(kDmaBase + kDmaRegDst, dst));
    EXPECT_TRUE(bus.HostWriteWord(kDmaBase + kDmaRegLen, len));
    EXPECT_TRUE(bus.HostWriteWord(kDmaBase + kDmaRegCtrl, kDmaCtrlStart));
    uint32_t status = 0;
    EXPECT_TRUE(bus.HostReadWord(kDmaBase + kDmaRegStatus, &status));
    return status;
  }

  Platform platform;
};

TEST(DmaTest, UncheckedDmaExfiltratesTrustletSecrets) {
  DmaFixture fixture(DmaEngine::Mode::kUnchecked);
  // The attack of [41]: DMA the trustlet's private data into open memory.
  const uint32_t status = fixture.Transfer(0x12010, 0x30000, 4);
  EXPECT_EQ(status, kDmaStatusDone);
  uint32_t leaked = 0;
  ASSERT_TRUE(fixture.platform.bus().HostReadWord(0x30000, &leaked));
  EXPECT_EQ(leaked, 0x5EC12E7u);  // Isolation broken: this is the problem.
}

TEST(DmaTest, UncheckedDmaCorruptsTrustletCode) {
  DmaFixture fixture(DmaEngine::Mode::kUnchecked);
  ASSERT_TRUE(fixture.platform.bus().HostWriteWord(0x30000, 0xDEADBEEF));
  const uint32_t status = fixture.Transfer(0x30000, 0x11000, 4);
  EXPECT_EQ(status, kDmaStatusDone);
  uint32_t code_word = 0;
  ASSERT_TRUE(fixture.platform.bus().HostReadWord(0x11000, &code_word));
  EXPECT_EQ(code_word, 0xDEADBEEFu);  // Write-protected code overwritten.
}

TEST(DmaTest, ExecutionAwareDmaBlocksForeignReads) {
  DmaFixture fixture(DmaEngine::Mode::kExecutionAware);
  // OWNER = somewhere in open memory (an untrusted OS identity).
  ASSERT_TRUE(
      fixture.platform.bus().HostWriteWord(kDmaBase + kDmaRegOwner, 0x30000));
  ASSERT_TRUE(fixture.platform.bus().HostWriteWord(0x30100, 0));
  const uint32_t status = fixture.Transfer(0x12010, 0x30100, 4);
  EXPECT_EQ(status, kDmaStatusFault);
  uint32_t leaked = 1;
  ASSERT_TRUE(fixture.platform.bus().HostReadWord(0x30100, &leaked));
  EXPECT_EQ(leaked, 0u);  // Nothing moved.
}

TEST(DmaTest, ExecutionAwareDmaBlocksForeignWrites) {
  DmaFixture fixture(DmaEngine::Mode::kExecutionAware);
  ASSERT_TRUE(
      fixture.platform.bus().HostWriteWord(kDmaBase + kDmaRegOwner, 0x30000));
  uint32_t before = 0;
  ASSERT_TRUE(fixture.platform.bus().HostReadWord(0x11000, &before));
  const uint32_t status = fixture.Transfer(0x30000, 0x11000, 4);
  EXPECT_EQ(status, kDmaStatusFault);
  uint32_t after = 0;
  ASSERT_TRUE(fixture.platform.bus().HostReadWord(0x11000, &after));
  EXPECT_EQ(before, after);
}

TEST(DmaTest, ExecutionAwareDmaWithTrustletOwnerMovesOwnData) {
  DmaFixture fixture(DmaEngine::Mode::kExecutionAware);
  // OWNER inside the trustlet's code region: the engine acts as that
  // trustlet (the Secure Loader would set this up for a trustlet that was
  // granted the DMA engine).
  ASSERT_TRUE(
      fixture.platform.bus().HostWriteWord(kDmaBase + kDmaRegOwner, 0x11004));
  const uint32_t status = fixture.Transfer(0x12010, 0x30200, 4);
  EXPECT_EQ(status, kDmaStatusDone);
  uint32_t moved = 0;
  ASSERT_TRUE(fixture.platform.bus().HostReadWord(0x30200, &moved));
  EXPECT_EQ(moved, 0x5EC12E7u);  // Deliberate export by the data's owner.
}

TEST(DmaTest, NoPartialTransferOnMidwayFault) {
  DmaFixture fixture(DmaEngine::Mode::kExecutionAware);
  ASSERT_TRUE(
      fixture.platform.bus().HostWriteWord(kDmaBase + kDmaRegOwner, 0x30000));
  // Source straddles open memory into the trustlet's data region: the
  // second word would fault, so not even the first may move.
  ASSERT_TRUE(fixture.platform.bus().HostWriteWord(0x11FFC, 0x0BE4));
  const uint32_t status = fixture.Transfer(0x11FFC, 0x30300, 8);
  EXPECT_EQ(status, kDmaStatusFault);
  uint32_t dst0 = 1;
  ASSERT_TRUE(fixture.platform.bus().HostReadWord(0x30300, &dst0));
  EXPECT_EQ(dst0, 0u);
}

TEST(DmaTest, OwnerRegisterLocks) {
  DmaFixture fixture(DmaEngine::Mode::kExecutionAware);
  Bus& bus = fixture.platform.bus();
  ASSERT_TRUE(bus.HostWriteWord(kDmaBase + kDmaRegOwner, 0x11004));
  ASSERT_TRUE(bus.HostWriteWord(kDmaBase + kDmaRegCtrl, kDmaCtrlLockOwner));
  // A compromised OS tries to re-own the engine.
  ASSERT_TRUE(bus.HostWriteWord(kDmaBase + kDmaRegOwner, 0x30000));
  uint32_t owner = 0;
  ASSERT_TRUE(bus.HostReadWord(kDmaBase + kDmaRegOwner, &owner));
  EXPECT_EQ(owner, 0x11004u);
  EXPECT_TRUE(fixture.platform.dma()->owner_locked());
}

// ---- Hardware trustlets (Sec. 3.6) ----

TEST(HardwiredMpuTest, HardwiredEntriesSurviveResetAndWrites) {
  EaMpu mpu(kMpuMmioBase, 8, 16);
  MpuRegion rom;
  rom.base = 0x400;
  rom.end = 0x800;
  rom.attr = kMpuAttrEnable | kMpuAttrCode;
  mpu.HardwireRegion(0, rom);
  mpu.HardwireRule(0, EncodeMpuRule(0, 0, true, false, true));
  mpu.HardwireEnable();
  EXPECT_TRUE(mpu.enabled());
  EXPECT_TRUE(mpu.IsHardwiredRegion(0));
  EXPECT_FALSE(mpu.IsHardwiredRegion(1));

  // Software writes bounce off.
  mpu.Write(kMpuRegionBank + 0, 4, 0xDEAD);
  mpu.Write(kMpuRuleBank + 0, 4, 0);
  mpu.Write(kMpuRegCtrl, 4, 0);  // Try to disable the unit.
  uint32_t value = 0;
  mpu.Read(kMpuRegionBank + 0, 4, &value);
  EXPECT_EQ(value, 0x400u);
  EXPECT_EQ(mpu.rule(0), EncodeMpuRule(0, 0, true, false, true));
  EXPECT_TRUE(mpu.enabled());

  // Reset clears programmable slots but keeps hardwired ones.
  mpu.Write(kMpuRegionBank + kMpuRegionStride, 4, 0x9000);  // Programmable.
  mpu.Reset();
  mpu.Read(kMpuRegionBank + 0, 4, &value);
  EXPECT_EQ(value, 0x400u);
  mpu.Read(kMpuRegionBank + kMpuRegionStride, 4, &value);
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(mpu.enabled());
}

TEST(HardwiredMpuTest, RomTrustletProtectedWithoutAnyLoader) {
  // A SMART-like instantiation: a hardwired code region over PROM with a
  // hardwired key region accessible only to it — protection exists from
  // power-on with zero software configuration.
  Platform platform;
  EaMpu* mpu = platform.mpu();
  MpuRegion rom;
  rom.base = kPromBase + 0x200;
  rom.end = kPromBase + 0x400;
  rom.attr = kMpuAttrEnable | kMpuAttrCode;
  MpuRegion key;
  key.base = kPromBase + 0xF00;
  key.end = kPromBase + 0xF20;
  key.attr = kMpuAttrEnable;
  mpu->HardwireRegion(0, rom);
  mpu->HardwireRegion(1, key);
  mpu->HardwireRule(0, EncodeMpuRule(0, 0, true, false, true));  // self x
  mpu->HardwireRule(1, EncodeMpuRule(0, 1, true, false, false)); // key read
  mpu->HardwireRule(2, EncodeMpuRule(kMpuSubjectAny, 0, false, false, true));
  mpu->HardwireEnable();

  // PROM contents: routine reads the key and stores it to open RAM.
  Result<AsmOutput> rom_code = Assemble(R"(
.org 0x200
rom_entry:
    li  r1, 0xF00
    ldw r2, [r1]
    li  r3, 0x30000
    stw r2, [r3]
    halt
)");
  ASSERT_TRUE(rom_code.ok());
  uint32_t base = 0;
  platform.prom().LoadBytes(0x200, rom_code->Flatten(&base));
  platform.prom().LoadBytes(0xF00, {0xEF, 0xBE, 0xAD, 0xDE});

  // Untrusted code may call the ROM trustlet (entry vector) ...
  Result<AsmOutput> caller = Assemble(R"(
.org 0x31000
    movi r3, 0x200
    jr  r3
)");
  ASSERT_TRUE(caller.ok());
  platform.bus().HostWriteBytes(0x31000, caller->Flatten(&base));
  platform.cpu().Reset(0x31000);
  platform.Run(100);
  uint32_t exported = 0;
  ASSERT_TRUE(platform.bus().HostReadWord(0x30000, &exported));
  EXPECT_EQ(exported, 0xDEADBEEFu);

  // ... but cannot read the key directly, even right after a reset with no
  // loader having run.
  platform.HardReset();
  EXPECT_TRUE(platform.mpu()->enabled());
  Result<AsmOutput> thief = Assemble(R"(
.org 0x31000
    li  r1, 0xF00
    ldw r2, [r1]
    halt
)");
  ASSERT_TRUE(thief.ok());
  platform.bus().HostWriteBytes(0x31000, thief->Flatten(&base));
  platform.cpu().Reset(0x31000);
  platform.Run(100);
  ASSERT_TRUE(platform.cpu().trap().valid);
  EXPECT_EQ(platform.cpu().trap().exception_class, kExcMpuFault);
  EXPECT_EQ(platform.cpu().reg(2), 0u);
}

// ---- Timing extensions (Sec. 9) ----

TEST(TimingTest, DramWaitStatesChargeCycles) {
  auto run = [](uint32_t wait_states) {
    PlatformConfig config;
    config.with_mpu = false;
    config.dram_wait_states = wait_states;
    Platform platform(config);
    Result<AsmOutput> out = Assemble(R"(
.org 0x30000
    li  r1, 0x100000       ; external DRAM
    movi r2, 0
    movi r3, 100
loop:
    stw r2, [r1]
    ldw r4, [r1]
    addi r2, r2, 1
    bne r2, r3, loop
    halt
)");
    uint32_t base = 0;
    platform.bus().HostWriteBytes(0x30000, out->Flatten(&base));
    platform.cpu().Reset(0x30000);
    platform.Run(10000);
    return platform.cpu().cycles();
  };
  const uint64_t fast = run(0);
  const uint64_t slow = run(3);
  // 200 DRAM accesses x 3 wait states.
  EXPECT_EQ(slow - fast, 600u);
}

TEST(TimingTest, ShaEngineBlockLatency) {
  auto run = [](uint32_t cycles_per_block) {
    PlatformConfig config;
    config.with_mpu = false;
    config.sha_cycles_per_block = cycles_per_block;
    Platform platform(config);
    // Hash 128 bytes (2 blocks) + finalize (1 padding block).
    Result<AsmOutput> out = Assemble(R"(
.org 0x30000
    li  r1, 0xF0004000
    movi r2, 1
    stw r2, [r1 + 0]       ; INIT
    movi r3, 0
    movi r4, 32            ; 32 words = 128 bytes
loop:
    stw r3, [r1 + 4]       ; DATA_IN
    addi r3, r3, 1
    bne r3, r4, loop
    movi r2, 2
    stw r2, [r1 + 0]       ; FINALIZE
    halt
)");
    uint32_t base = 0;
    platform.bus().HostWriteBytes(0x30000, out->Flatten(&base));
    platform.cpu().Reset(0x30000);
    platform.Run(10000);
    return platform.cpu().cycles();
  };
  const uint64_t fast = run(0);
  const uint64_t slow = run(50);
  // 2 data blocks complete during absorb + INIT? no (init charges too in our
  // model? INIT is a CTRL write -> charged) + FINALIZE: CTRL writes = 2.
  // Total charged events: 2 block completions + 2 CTRL writes = 4 x 50.
  EXPECT_EQ(slow - fast, 200u);
}

TEST(TimingTest, SramRemainsZeroWait) {
  PlatformConfig config;
  Platform platform(config);
  EXPECT_EQ(platform.sram().WaitStates(0, 4, AccessKind::kRead), 0u);
  EXPECT_EQ(platform.dram().WaitStates(0, 4, AccessKind::kRead), 0u);
  PlatformConfig slow_config;
  slow_config.dram_wait_states = 5;
  Platform slow(slow_config);
  EXPECT_EQ(slow.dram().WaitStates(0, 4, AccessKind::kRead), 5u);
  EXPECT_EQ(slow.sram().WaitStates(0, 4, AccessKind::kRead), 0u);
}

}  // namespace
}  // namespace trustlite
