// Copyright 2026 The TrustLite Reproduction Authors.
// Per-device seed derivation (DESIGN.md §13): every fleet node draws its
// TRNG stream from DeriveDeviceSeed(fleet_seed, device_id). These tests pin
// the properties the fleet depends on — determinism, decorrelation across
// devices, and sensitivity to every input bit.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/rng.h"

namespace trustlite {
namespace {

int PopCount64(uint64_t x) {
  int count = 0;
  while (x != 0) {
    x &= x - 1;
    ++count;
  }
  return count;
}

TEST(SplitMix64Test, DeterministicAndNonTrivial) {
  EXPECT_EQ(SplitMix64Once(42), SplitMix64Once(42));
  EXPECT_NE(SplitMix64Once(42), SplitMix64Once(43));
  // The mix is a bijection with 0 as its only trivial fixed point; the seed
  // derivation always feeds it non-zero inputs (golden-ratio increments).
  EXPECT_NE(SplitMix64Once(0x9E3779B97F4A7C15ull), 0u);
  EXPECT_NE(DeriveDeviceSeed(0, 0), 0u);
}

TEST(DeriveDeviceSeedTest, Reproducible) {
  EXPECT_EQ(DeriveDeviceSeed(7, 3), DeriveDeviceSeed(7, 3));
  EXPECT_NE(DeriveDeviceSeed(7, 3), DeriveDeviceSeed(7, 4));
  EXPECT_NE(DeriveDeviceSeed(7, 3), DeriveDeviceSeed(8, 3));
}

TEST(DeriveDeviceSeedTest, UniqueAcrossLargeFleet) {
  std::set<uint64_t> seen;
  for (uint32_t id = 0; id < 4096; ++id) {
    seen.insert(DeriveDeviceSeed(1, id));
  }
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(DeriveDeviceSeedTest, UniqueAcrossFleetSeeds) {
  std::set<uint64_t> seen;
  for (uint64_t seed = 0; seed < 512; ++seed) {
    seen.insert(DeriveDeviceSeed(seed, 0));
  }
  EXPECT_EQ(seen.size(), 512u);
}

// Adjacent device ids must produce thoroughly decorrelated seeds (a plain
// fleet_seed + id scheme fails this: neighbouring streams would overlap).
TEST(DeriveDeviceSeedTest, AvalancheAcrossDeviceIds) {
  int total_bits = 0;
  const int kPairs = 256;
  for (uint32_t id = 0; id < kPairs; ++id) {
    const uint64_t a = DeriveDeviceSeed(99, id);
    const uint64_t b = DeriveDeviceSeed(99, id + 1);
    const int flipped = PopCount64(a ^ b);
    EXPECT_GE(flipped, 8) << "id " << id;
    total_bits += flipped;
  }
  const double mean = static_cast<double>(total_bits) / kPairs;
  EXPECT_GT(mean, 24.0);  // Ideal avalanche is 32 of 64 bits.
  EXPECT_LT(mean, 40.0);
}

TEST(DeriveDeviceSeedTest, AvalancheAcrossFleetSeedBits) {
  const uint64_t base = DeriveDeviceSeed(0x1234'5678'9ABC'DEF0ull, 5);
  int total_bits = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const uint64_t flipped_seed = 0x1234'5678'9ABC'DEF0ull ^ (1ull << bit);
    total_bits += PopCount64(base ^ DeriveDeviceSeed(flipped_seed, 5));
  }
  const double mean = static_cast<double>(total_bits) / 64.0;
  EXPECT_GT(mean, 24.0);
  EXPECT_LT(mean, 40.0);
}

// The derived seeds must feed Xoshiro streams that do not collide in their
// leading outputs (what the TRNG device actually hands to guests).
TEST(DeriveDeviceSeedTest, DerivedStreamsDiverge) {
  std::set<uint64_t> first_draws;
  for (uint32_t id = 0; id < 256; ++id) {
    Xoshiro256 rng(DeriveDeviceSeed(7, id));
    first_draws.insert(rng.Next64());
  }
  EXPECT_EQ(first_draws.size(), 256u);
}

}  // namespace
}  // namespace trustlite
