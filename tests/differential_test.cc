// Copyright 2026 The TrustLite Reproduction Authors.
//
// Differential-execution corpus and fault-injection campaign tests
// (DESIGN.md Sec. 11). The corpus runs 10,000 seeded random TL32 programs
// through two Platforms in lockstep — fast-path caches enabled vs
// force-disabled — and asserts bit-identical architectural state, memory,
// MPU fault latches, statistics and cycle counts. The campaign tests replay
// fixed-seed fault-injection streams (spurious IRQs, RAM/register bit
// flips, hostile DMA, MPU reprogramming attempts, mid-run resets) against a
// booted victim-trustlet + nanOS system and assert the DESIGN.md Sec. 7
// security invariants after every event.
//
// Any failure names the responsible seed; reproduce outside gtest with
//   tlfuzz diff   --seed <S> --programs 1
//   tlfuzz inject --seed <S> --campaigns 1

#include <gtest/gtest.h>

#include "src/harness/differential.h"
#include "src/harness/injector.h"

namespace trustlite {
namespace {

// 8 shards x 1250 programs = the 10k corpus, split so `ctest -j` runs the
// shards in parallel.
constexpr uint64_t kShardCount = 8;
constexpr uint64_t kShardSize = 1250;
constexpr uint64_t kMaxSteps = 400;

class DifferentialCorpusTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialCorpusTest, CachedAndUncachedExecutionAgree) {
  const uint64_t seed0 =
      1 + static_cast<uint64_t>(GetParam()) * kShardSize;
  for (uint64_t i = 0; i < kShardSize; ++i) {
    const uint64_t seed = seed0 + i;
    const std::optional<Divergence> d = RunRandomProgramDiff(seed, kMaxSteps);
    ASSERT_FALSE(d.has_value())
        << "seed=" << seed << " step=" << d->step << ": " << d->what;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, DifferentialCorpusTest,
                         ::testing::Range(0, static_cast<int>(kShardCount)));

// Windowed corpus: the fast platform advances through Cpu::Run, so the
// threaded-dispatch loop, superinstruction fusion and data-access windows
// are all live — none of which the Step()-lockstep corpus above exercises.
// The reference side stays on the plain uncached interpreter and chases the
// fast side's retire count.
class WindowedDifferentialCorpusTest : public ::testing::TestWithParam<int> {};

TEST_P(WindowedDifferentialCorpusTest, FusedRunLoopMatchesReference) {
  constexpr uint64_t kWindowShardSize = 250;
  const uint64_t seed0 =
      1 + static_cast<uint64_t>(GetParam()) * kWindowShardSize;
  for (uint64_t i = 0; i < kWindowShardSize; ++i) {
    const uint64_t seed = seed0 + i;
    const std::optional<Divergence> d =
        RunRandomProgramDiffWindowed(seed, 2000, /*window=*/64);
    ASSERT_FALSE(d.has_value())
        << "seed=" << seed << " step=" << d->step << ": " << d->what;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, WindowedDifferentialCorpusTest,
                         ::testing::Range(0, 4));

// Window sizes bracketing the fusion group length (1..4 constituents):
// window=1 forces a fused group to start on every Run() call, window=3
// makes budgets expire mid-quad, large windows let groups go hot.
TEST(WindowedDifferentialTest, WindowSizesBracketFusionGroupLength) {
  for (const uint64_t window : {1ull, 3ull, 5ull, 1024ull}) {
    for (const uint64_t seed : {11ull, 23ull, 47ull}) {
      const std::optional<Divergence> d =
          RunRandomProgramDiffWindowed(seed, 3000, window);
      ASSERT_FALSE(d.has_value())
          << "seed=" << seed << " window=" << window << " step=" << d->step
          << ": " << d->what;
    }
  }
}

// The divergence class the harness actually caught: accesses straddling the
// top of the 32-bit address space, where the fast path's end-of-access
// arithmetic used to wrap. Random MPU layouts near 0xFFFFF000 are part of
// every scenario, but pin a few seeds with many more steps so the corner
// stays exercised even if the biased pools are retuned.
TEST(DifferentialRegressionTest, LongRunsStayLockstepped) {
  for (const uint64_t seed : {1ull, 7ull, 42ull, 1337ull}) {
    const std::optional<Divergence> d = RunRandomProgramDiff(seed, 5000);
    ASSERT_FALSE(d.has_value())
        << "seed=" << seed << " step=" << d->step << ": " << d->what;
  }
}

TEST(InjectionCampaignTest, FixedSeedCampaignsHoldInvariants) {
  for (const uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    InjectionCampaignConfig config;
    config.seed = seed;
    config.events = 150;
    config.steps_between = 400;
    const InjectionCampaignResult result = RunInjectionCampaign(config);
    EXPECT_TRUE(result.ok()) << "seed=" << seed << ": "
                             << (result.violations.empty()
                                     ? ""
                                     : result.violations.front());
    EXPECT_EQ(result.events_injected, 150u) << "seed=" << seed;
    EXPECT_GT(result.invariant_checks, 0u) << "seed=" << seed;
  }
}

// The same invariants must hold with the fast-path caches disabled: the
// security properties are properties of the architecture, not of the cache
// layer that accelerates it.
TEST(InjectionCampaignTest, UncachedPlatformHoldsSameInvariants) {
  InjectionCampaignConfig config;
  config.seed = 5;
  config.events = 150;
  config.steps_between = 400;
  config.fast_path = false;
  const InjectionCampaignResult result = RunInjectionCampaign(config);
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? ""
                                   : result.violations.front());
  EXPECT_EQ(result.events_injected, 150u);
}

// A campaign long enough to hit every event type must also show the defense
// mechanisms actually firing — hostile DMA transfers faulting, MPU
// reprogramming attempts being denied, and secure exception entries being
// observed — otherwise a silently broken injector would vacuously pass.
TEST(InjectionCampaignTest, DefensesObservablyEngage) {
  InjectionCampaignConfig config;
  config.seed = 6;
  config.events = 300;
  config.steps_between = 300;
  const InjectionCampaignResult result = RunInjectionCampaign(config);
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? ""
                                   : result.violations.front());
  EXPECT_GT(result.dma_faults, 0u);
  EXPECT_GT(result.mpu_denials, 0u);
  EXPECT_GT(result.secure_entries, 0u);
  for (int e = 0; e < static_cast<int>(InjectionEvent::kNumEvents); ++e) {
    EXPECT_GT(result.event_counts[e], 0u) << "event " << e << " never fired";
  }
}

}  // namespace
}  // namespace trustlite
