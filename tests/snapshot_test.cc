// Copyright 2026 The TrustLite Reproduction Authors.
// Snapshot/restore subsystem tests (DESIGN.md §14): byte-stability of the
// on-disk format, the restore-equals-live digest invariant at random
// checkpoints across the differential corpus, fail-closed handling of
// truncated/bit-flipped snapshots, the per-device snapshot-generation
// counters across HardReset, checkpointed record-replay bisection, and
// warm-boot fleet provisioning.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/fleet/attest.h"
#include "src/fleet/fleet.h"
#include "src/fleet/provision.h"
#include "src/harness/differential.h"
#include "src/isa/assembler.h"
#include "src/mem/layout.h"
#include "src/platform/platform.h"
#include "src/snapshot/snapshot.h"

namespace trustlite {
namespace {

void LoadAt(Platform& platform, const std::string& source, uint32_t origin) {
  Result<AsmOutput> out = Assemble(source, origin);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (const AsmChunk& chunk : out->chunks) {
    ASSERT_TRUE(platform.bus().HostWriteBytes(chunk.base, chunk.bytes));
  }
}

// A small guest that exercises RAM, the UART, the timer and the SHA engine
// so most device snapshot chunks carry real state.
constexpr char kBusyGuest[] = R"(
start:
    li   r1, 0xF0003000       ; uart
    movi r2, 65               ; 'A'
    movi r3, 0
    li   r6, 0xF0002000       ; timer
    movi r7, 500
    stw  r7, [r6 + 4]         ; period
    movi r7, 1
    stw  r7, [r6 + 0]         ; enable
loop:
    stw  r2, [r1 + 0]         ; uart tx
    addi r2, r2, 1
    movi r4, 90               ; 'Z'
    bltu r2, r4, no_wrap
    movi r2, 65
no_wrap:
    li   r5, 0x00120000       ; dram scribble
    shli r8, r3, 2
    add  r5, r5, r8
    stw  r2, [r5]
    addi r3, r3, 1
    movi r4, 2000
    bltu r3, r4, loop
    halt
)";

Platform* NewBusyPlatform() {
  Platform* platform = new Platform();
  Result<AsmOutput> out = Assemble(kBusyGuest, 0x00030000);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  for (const AsmChunk& chunk : out->chunks) {
    EXPECT_TRUE(platform->bus().HostWriteBytes(chunk.base, chunk.bytes));
  }
  platform->cpu().Reset(0x00030000);
  platform->cpu().set_reg(kRegSp, 0x00040000);
  return platform;
}

// ---------------------------------------------------------------------------
// Round-trip byte identity and the restore invariant.

TEST(SnapshotFormatTest, SaveIsByteStable) {
  std::unique_ptr<Platform> platform(NewBusyPlatform());
  platform->Run(1000);
  Result<std::vector<uint8_t>> a = SavePlatform(*platform);
  Result<std::vector<uint8_t>> b = SavePlatform(*platform);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b) << "saving the same state twice must be bit-identical";
}

TEST(SnapshotFormatTest, SaveRestoreSaveRoundTripsExactly) {
  std::unique_ptr<Platform> platform(NewBusyPlatform());
  platform->Run(1234);
  Result<std::vector<uint8_t>> saved = SavePlatform(*platform);
  ASSERT_TRUE(saved.ok());

  Platform other;
  ASSERT_TRUE(RestorePlatform(&other, *saved).ok());
  Result<std::vector<uint8_t>> resaved = SavePlatform(other);
  ASSERT_TRUE(resaved.ok());
  EXPECT_EQ(*saved, *resaved);
  EXPECT_EQ(PlatformStateDigest(*platform), PlatformStateDigest(other));
}

TEST(SnapshotFormatTest, RestoredRunContinuesBitIdentically) {
  std::unique_ptr<Platform> live(NewBusyPlatform());
  live->Run(700);
  Result<std::vector<uint8_t>> saved = SavePlatform(*live);
  ASSERT_TRUE(saved.ok());

  Platform resumed;
  ASSERT_TRUE(RestorePlatform(&resumed, *saved).ok());

  // The subsequent execution transcript must be bit-identical: run both to
  // completion and compare the full state digests.
  live->Run(1'000'000);
  resumed.Run(1'000'000);
  EXPECT_TRUE(live->cpu().halted());
  EXPECT_TRUE(resumed.cpu().halted());
  EXPECT_EQ(PlatformStateDigest(*live), PlatformStateDigest(resumed));
  EXPECT_EQ(live->cpu().cycles(), resumed.cpu().cycles());
  EXPECT_EQ(live->uart().output(), resumed.uart().output());
}

TEST(SnapshotFormatTest, ConfigRoundTrips) {
  PlatformConfig config;
  config.with_mpu = true;
  config.mpu_regions = 12;
  config.mpu_rules = 48;
  config.with_dma = true;
  config.dram_wait_states = 3;
  Platform platform(config);
  Result<std::vector<uint8_t>> saved = SavePlatform(platform);
  ASSERT_TRUE(saved.ok());
  Result<PlatformConfig> read = SnapshotPlatformConfig(*saved);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->with_mpu, config.with_mpu);
  EXPECT_EQ(read->mpu_regions, config.mpu_regions);
  EXPECT_EQ(read->mpu_rules, config.mpu_rules);
  EXPECT_EQ(read->with_dma, config.with_dma);
  EXPECT_EQ(read->dram_wait_states, config.dram_wait_states);

  // A platform built from the read-back config accepts the snapshot.
  Platform clone(*read);
  EXPECT_TRUE(RestorePlatform(&clone, *saved).ok());
}

TEST(SnapshotFormatTest, MismatchedPlatformShapeFailsClosed) {
  Platform small_mpu(PlatformConfig{.mpu_regions = 8, .mpu_rules = 16});
  Result<std::vector<uint8_t>> saved = SavePlatform(small_mpu);
  ASSERT_TRUE(saved.ok());
  Platform default_shape;
  const Status status = RestorePlatform(&default_shape, *saved);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Negative tests: corrupted snapshots must fail closed (Status error, the
// target platform untouched).

TEST(SnapshotCorruptionTest, TruncationsNeverPartiallyRestore) {
  std::unique_ptr<Platform> platform(NewBusyPlatform());
  platform->Run(900);
  Result<std::vector<uint8_t>> saved = SavePlatform(*platform);
  ASSERT_TRUE(saved.ok());

  Xoshiro256 rng(0xDEAD);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<uint8_t> truncated(
        saved->begin(),
        saved->begin() + static_cast<long>(rng.NextBelow(saved->size())));
    Platform target;
    const Sha256Digest before = PlatformStateDigest(target);
    EXPECT_FALSE(RestorePlatform(&target, truncated).ok())
        << "truncation to " << truncated.size() << " bytes was accepted";
    EXPECT_EQ(before, PlatformStateDigest(target))
        << "failed restore mutated the target platform";
  }
}

TEST(SnapshotCorruptionTest, BitFlipsNeverPartiallyRestore) {
  std::unique_ptr<Platform> platform(NewBusyPlatform());
  platform->Run(900);
  Result<std::vector<uint8_t>> saved = SavePlatform(*platform);
  ASSERT_TRUE(saved.ok());

  Xoshiro256 rng(0xBEEF);
  for (int trial = 0; trial < 128; ++trial) {
    std::vector<uint8_t> flipped = *saved;
    const size_t byte = rng.NextBelow(flipped.size());
    flipped[byte] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
    Platform target;
    const Sha256Digest before = PlatformStateDigest(target);
    EXPECT_FALSE(RestorePlatform(&target, flipped).ok())
        << "bit flip at byte " << byte << " was accepted";
    EXPECT_EQ(before, PlatformStateDigest(target))
        << "failed restore mutated the target platform";
  }
}

TEST(SnapshotCorruptionTest, SkippedChecksumsStillFailClosedOnFraming) {
  std::unique_ptr<Platform> platform(NewBusyPlatform());
  platform->Run(900);
  Result<std::vector<uint8_t>> saved = SavePlatform(*platform);
  ASSERT_TRUE(saved.ok());

  // verify_checksums=false (the warm-boot amortization) restores a clean
  // buffer correctly...
  SnapshotRestoreOptions no_crc;
  no_crc.verify_digest = false;
  no_crc.verify_checksums = false;
  Platform clean;
  ASSERT_TRUE(RestorePlatform(&clean, *saved, no_crc).ok());
  EXPECT_EQ(PlatformStateDigest(*platform), PlatformStateDigest(clean));

  // ...and structural corruption (truncation, bad magic, bad chunk sizes)
  // is still rejected by framing checks alone; only payload bit rot relies
  // on the CRC, which the first (verifying) restore of a warm-boot batch
  // covers.
  Xoshiro256 rng(0xCAFE);
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<uint8_t> truncated(
        saved->begin(),
        saved->begin() + static_cast<long>(rng.NextBelow(saved->size())));
    Platform target;
    const Sha256Digest before = PlatformStateDigest(target);
    EXPECT_FALSE(RestorePlatform(&target, truncated, no_crc).ok())
        << "truncation to " << truncated.size()
        << " bytes was accepted with checksums off";
    EXPECT_EQ(before, PlatformStateDigest(target))
        << "failed restore mutated the target platform";
  }
  std::vector<uint8_t> bad_magic = *saved;
  bad_magic[0] ^= 0xFF;
  Platform target;
  EXPECT_FALSE(RestorePlatform(&target, bad_magic, no_crc).ok());
}

// ---------------------------------------------------------------------------
// Property test: at random checkpoints across the differential corpus,
// save -> restore -> save is byte-identical and the restored platform's
// digest matches the live one.

TEST(SnapshotPropertyTest, RestoreEqualsLiveAcrossDifferentialCorpus) {
  Xoshiro256 rng(0x534E4150);  // 'SNAP'
  int checkpoints = 0;
  for (uint64_t seed = 1; checkpoints < 1000; ++seed) {
    DifferentialExecutor diff;
    BuildRandomScenario(diff, seed, RandomProgramOptions{});
    Platform& live = diff.fast();
    // A handful of random checkpoints per scenario.
    for (int k = 0; k < 25 && !live.cpu().halted(); ++k) {
      for (uint64_t s = rng.NextBelow(200) + 1;
           s > 0 && !live.cpu().halted(); --s) {
        live.cpu().Step();
      }
      Result<std::vector<uint8_t>> saved = SavePlatform(live);
      ASSERT_TRUE(saved.ok()) << saved.status().ToString();

      Platform clone;
      ASSERT_TRUE(RestorePlatform(&clone, *saved).ok())
          << "seed " << seed << " checkpoint " << k;
      EXPECT_EQ(PlatformStateDigest(live), PlatformStateDigest(clone))
          << "seed " << seed << " checkpoint " << k;
      Result<std::vector<uint8_t>> resaved = SavePlatform(clone);
      ASSERT_TRUE(resaved.ok());
      EXPECT_EQ(*saved, *resaved)
          << "seed " << seed << " checkpoint " << k
          << ": save -> restore -> save is not byte-identical";
      ++checkpoints;
    }
  }
  EXPECT_GE(checkpoints, 1000);
}

// Platform-shape matrix: the round-trip invariants must hold for every
// supported combination of {with_mpu, secure_exceptions, DMA off /
// unchecked / execution-aware}, not just the default shape — optional
// devices and security features may not silently drop snapshot chunks.
TEST(SnapshotPropertyTest, RoundTripHoldsAcrossPlatformConfigMatrix) {
  const DmaEngine::Mode kDmaModes[] = {DmaEngine::Mode::kUnchecked,
                                       DmaEngine::Mode::kExecutionAware};
  for (bool with_mpu : {true, false}) {
    for (bool secure_exceptions : {true, false}) {
      for (int dma = 0; dma < 3; ++dma) {
      for (uint32_t wait_states : {0u, 3u}) {
        PlatformConfig config;
        config.with_mpu = with_mpu;
        config.secure_exceptions = secure_exceptions;
        config.with_dma = dma > 0;
        if (config.with_dma) {
          config.dma_mode = kDmaModes[dma - 1];
        }
        config.dram_wait_states = wait_states;
        SCOPED_TRACE(testing::Message()
                     << "mpu=" << with_mpu << " sec-exc=" << secure_exceptions
                     << " dma=" << dma << " waits=" << wait_states);

        Platform live(config);
        LoadAt(live, kBusyGuest, 0x00030000);
        live.cpu().Reset(0x00030000);
        live.cpu().set_reg(kRegSp, 0x00040000);
        live.Run(1234);

        Result<std::vector<uint8_t>> saved = SavePlatform(live);
        ASSERT_TRUE(saved.ok()) << saved.status().ToString();
        Platform clone(config);
        ASSERT_TRUE(RestorePlatform(&clone, *saved).ok());
        EXPECT_EQ(PlatformStateDigest(live), PlatformStateDigest(clone));
        Result<std::vector<uint8_t>> resaved = SavePlatform(clone);
        ASSERT_TRUE(resaved.ok());
        EXPECT_EQ(*saved, *resaved);

        // Continued execution stays bit-identical to the live platform.
        live.Run(20'000);
        clone.Run(20'000);
        EXPECT_EQ(PlatformStateDigest(live), PlatformStateDigest(clone));
        EXPECT_EQ(live.uart().output(), clone.uart().output());
      }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Regression (PR 3 bug class): HardReset must clear the per-device
// snapshot-generation counters along with the rest of the device state.

TEST(SnapshotGenerationTest, HardResetClearsGenerationCounters) {
  std::unique_ptr<Platform> platform(NewBusyPlatform());
  platform->Run(500);
  Result<std::vector<uint8_t>> saved = SavePlatform(*platform);
  ASSERT_TRUE(saved.ok());
  ASSERT_TRUE(RestorePlatform(platform.get(), *saved).ok());
  EXPECT_EQ(platform->uart().snapshot_generation(), 2u)
      << "one SaveState + one LoadState";
  EXPECT_EQ(platform->timer().snapshot_generation(), 2u);

  platform->HardReset();
  for (Device* device : platform->bus().devices()) {
    EXPECT_EQ(device->snapshot_generation(), 0u)
        << "device '" << device->name()
        << "' kept a stale snapshot generation across HardReset";
  }
}

TEST(SnapshotGenerationTest, FailedLoadDoesNotBumpGeneration) {
  Platform platform;
  const std::vector<uint8_t> garbage = {1, 2, 3};
  EXPECT_FALSE(platform.uart().LoadState(garbage.data(), garbage.size()).ok());
  EXPECT_EQ(platform.uart().snapshot_generation(), 0u);
}

// ---------------------------------------------------------------------------
// Checkpointed record-replay.

TEST(CheckpointReplayTest, CleanRunMatchesLockstep) {
  DifferentialExecutor diff;
  BuildRandomScenario(diff, 42, RandomProgramOptions{});
  DifferentialExecutor::CheckpointReplay report =
      diff.RunCheckpointed(20'000, 1'000);
  EXPECT_FALSE(report.divergence.has_value())
      << report.divergence->what << " at step " << report.divergence->step;
  EXPECT_GE(report.checkpoints, 1u);
  EXPECT_EQ(report.replayed_steps, 0u);
}

TEST(CheckpointReplayTest, BisectsPlantedDivergenceToTheExactStep) {
  // Two identical spin loops; plant a divergence by making the "fast"
  // platform see a different operand at a known instruction count.
  DifferentialExecutor diff;
  const char* program = R"(
start:
    li   r1, 0x00120000
    movi r2, 0
loop:
    ldw  r3, [r1]            ; r3 = poisoned cell
    add  r2, r2, r3
    addi r2, r2, 1
    jmp  loop
)";
  diff.ForBoth([&](Platform& p) { LoadAt(p, program, 0x00030000); });
  diff.ForBoth([](Platform& p) {
    p.cpu().Reset(0x00030000);
    p.cpu().set_reg(kRegSp, 0x00040000);
  });
  // Let both run identically for a while, then poison one platform's DRAM
  // cell out-of-band: the next `ldw` (within the current window) diverges.
  for (int i = 0; i < 2500; ++i) {
    diff.fast().cpu().Step();
    diff.reference().cpu().Step();
  }
  ASSERT_TRUE(diff.fast().bus().HostWriteWord(0x00120000, 7));

  DifferentialExecutor::CheckpointReplay report =
      diff.RunCheckpointed(10'000, 512);
  ASSERT_TRUE(report.divergence.has_value());
  // The divergence must land in the first window and be localized to a
  // step index inside it (the first diverging ldw/add).
  EXPECT_EQ(report.window_start, 0u);
  EXPECT_EQ(report.window_end, 512u);
  EXPECT_LT(report.divergence->step, 512u);
  EXPECT_GT(report.replayed_steps, 0u);
  EXPECT_NE(report.divergence->what.find("fast="), std::string::npos)
      << report.divergence->what;
}

// ---------------------------------------------------------------------------
// Warm-boot fleet provisioning.

TEST(WarmBootTest, WarmFleetAttestsLikeColdFleet) {
  for (int threads : {1, 4}) {
    FleetConfig config;
    config.nodes = 6;
    config.seed = 11;
    config.threads = threads;
    Fleet fleet(config);
    FleetProvisionConfig prov;
    prov.warm_boot = true;
    prov.tamper_count = 1;
    Result<std::vector<NodeProvision>> provisions =
        ProvisionAttestationFleet(&fleet, prov);
    ASSERT_TRUE(provisions.ok()) << provisions.status().ToString();
    ASSERT_EQ(provisions->size(), 6u);

    FleetAttestor attestor(&fleet, *provisions, AttestPolicy{});
    attestor.Begin();
    for (uint64_t quantum = 0; !attestor.Done() && quantum < 4000;
         ++quantum) {
      fleet.RunQuanta(1);
      attestor.OnQuantumBoundary();
    }
    ASSERT_TRUE(attestor.Done()) << "threads=" << threads;
    EXPECT_EQ(attestor.Verified().size(), 5u) << "threads=" << threads;
    EXPECT_EQ(attestor.Quarantined().size(), 1u) << "threads=" << threads;
  }
}

TEST(WarmBootTest, CloneKeysAndSeedsAreNodeSpecific) {
  FleetConfig config;
  config.nodes = 3;
  config.seed = 77;
  Fleet fleet(config);
  FleetProvisionConfig prov;
  prov.warm_boot = true;
  Result<std::vector<NodeProvision>> provisions =
      ProvisionAttestationFleet(&fleet, prov);
  ASSERT_TRUE(provisions.ok()) << provisions.status().ToString();

  // Keys differ per node and match the shared derivation.
  EXPECT_NE((*provisions)[0].key, (*provisions)[1].key);
  EXPECT_EQ((*provisions)[2].key, DeriveDeviceKey(77, 2));
  // Clones are distinguishable state-wise (key bytes live in SRAM).
  EXPECT_NE(fleet.node(1).StateDigest(), fleet.node(2).StateDigest());
}

}  // namespace
}  // namespace trustlite
