// Copyright 2026 The TrustLite Reproduction Authors.
// Firmware update subsystem tests (DESIGN.md §16): .tlfw container
// pack/parse/sign round-trips, fail-closed parsing under truncation and
// bit flips, the loader-side trial/commit/rollback path, and the monotonic
// anti-rollback counter — including its survival across snapshot restore.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/loader/secure_loader.h"
#include "src/loader/system_image.h"
#include "src/mem/layout.h"
#include "src/os/nanos.h"
#include "src/platform/platform.h"
#include "src/snapshot/snapshot.h"
#include "src/trustlet/builder.h"
#include "src/trustlet/trustlet_table.h"
#include "src/update/apply.h"
#include "src/update/fw_container.h"

namespace trustlite {
namespace {

std::vector<uint8_t> Payload(size_t bytes, uint8_t seed = 0x5A) {
  std::vector<uint8_t> payload(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    payload[i] = static_cast<uint8_t>(seed + 13 * i);
  }
  return payload;
}

std::array<uint8_t, 32> TestDeviceKey(uint8_t fill = 0x41) {
  std::array<uint8_t, 32> key{};
  key.fill(fill);
  return key;
}

// ---------------------------------------------------------------------------
// Container pack/parse/sign.

TEST(FwContainerTest, PackParseRoundTrip) {
  FirmwareContainerSpec spec;
  spec.fw_version = 7;
  spec.name = "demo-image";
  spec.payload = Payload(1500);
  spec.chunk_bytes = 512;
  Result<std::vector<uint8_t>> packed = PackFirmware(spec);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();

  Result<FirmwareImage> image = ParseFirmware(*packed);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->fw_version, 7u);
  EXPECT_EQ(image->name, "demo-image");
  EXPECT_EQ(image->payload, spec.payload);
  EXPECT_EQ(image->measurement,
            Sha256Hash(spec.payload.data(), spec.payload.size()));
  EXPECT_FALSE(image->has_signature);

  // Byte-stable: identical specs serialize identically.
  Result<std::vector<uint8_t>> again = PackFirmware(spec);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*packed, *again);
}

TEST(FwContainerTest, SignVerifyAndWrongKey) {
  FirmwareContainerSpec spec;
  spec.fw_version = 3;
  spec.payload = Payload(700);
  Result<std::vector<uint8_t>> packed = PackFirmware(spec);
  ASSERT_TRUE(packed.ok());

  const std::array<uint8_t, 32> update_key = DeriveUpdateKey(TestDeviceKey());
  Result<std::vector<uint8_t>> signed_bytes = SignFirmware(*packed,
                                                           update_key);
  ASSERT_TRUE(signed_bytes.ok()) << signed_bytes.status().ToString();

  Result<FirmwareImage> image = ParseFirmware(*signed_bytes);
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE(image->has_signature);
  EXPECT_TRUE(VerifyFirmwareSignature(*image, update_key).ok());

  // A different device's update key must not verify, and the device key
  // itself is not the update key (key-family separation).
  EXPECT_FALSE(VerifyFirmwareSignature(
                   *image, DeriveUpdateKey(TestDeviceKey(0x42))).ok());
  EXPECT_FALSE(VerifyFirmwareSignature(*image, TestDeviceKey()).ok());
}

TEST(FwContainerTest, UnsignedImageNeverVerifies) {
  FirmwareContainerSpec spec;
  spec.payload = Payload(64);
  Result<std::vector<uint8_t>> packed = PackFirmware(spec);
  ASSERT_TRUE(packed.ok());
  Result<FirmwareImage> image = ParseFirmware(*packed);
  ASSERT_TRUE(image.ok());
  EXPECT_FALSE(
      VerifyFirmwareSignature(*image, DeriveUpdateKey(TestDeviceKey())).ok());
}

TEST(FwContainerTest, ResigningReplacesSignature) {
  FirmwareContainerSpec spec;
  spec.fw_version = 2;
  spec.payload = Payload(300);
  Result<std::vector<uint8_t>> packed = PackFirmware(spec);
  ASSERT_TRUE(packed.ok());
  const std::array<uint8_t, 32> key_a = DeriveUpdateKey(TestDeviceKey(0x01));
  const std::array<uint8_t, 32> key_b = DeriveUpdateKey(TestDeviceKey(0x02));
  Result<std::vector<uint8_t>> signed_a = SignFirmware(*packed, key_a);
  ASSERT_TRUE(signed_a.ok());
  Result<std::vector<uint8_t>> signed_b = SignFirmware(*signed_a, key_b);
  ASSERT_TRUE(signed_b.ok());
  Result<FirmwareImage> image = ParseFirmware(*signed_b);
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE(VerifyFirmwareSignature(*image, key_b).ok());
  EXPECT_FALSE(VerifyFirmwareSignature(*image, key_a).ok());
  // Re-signing with the same key is byte-stable.
  Result<std::vector<uint8_t>> signed_b2 = SignFirmware(*signed_a, key_b);
  ASSERT_TRUE(signed_b2.ok());
  EXPECT_EQ(*signed_b, *signed_b2);
}

TEST(FwContainerTest, TruncationFailsClosed) {
  FirmwareContainerSpec spec;
  spec.fw_version = 4;
  spec.payload = Payload(1000);
  Result<std::vector<uint8_t>> packed =
      SignFirmware(*PackFirmware(spec), DeriveUpdateKey(TestDeviceKey()));
  ASSERT_TRUE(packed.ok());
  // Every proper prefix must be rejected.
  for (size_t keep = 0; keep < packed->size(); ++keep) {
    std::vector<uint8_t> cut(packed->begin(),
                             packed->begin() + static_cast<long>(keep));
    EXPECT_FALSE(ParseFirmware(cut).ok()) << "prefix of " << keep << " bytes";
  }
  // Trailing garbage is also rejected — END must be the last byte.
  std::vector<uint8_t> padded = *packed;
  padded.push_back(0);
  EXPECT_FALSE(ParseFirmware(padded).ok());
}

TEST(FwContainerTest, EveryBitFlipFailsClosed) {
  FirmwareContainerSpec spec;
  spec.fw_version = 9;
  spec.name = "flip";
  spec.payload = Payload(256);
  spec.chunk_bytes = 96;
  Result<std::vector<uint8_t>> packed =
      SignFirmware(*PackFirmware(spec), DeriveUpdateKey(TestDeviceKey()));
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(ParseFirmware(*packed).ok());
  const std::array<uint8_t, 32> update_key = DeriveUpdateKey(TestDeviceKey());
  for (size_t byte = 0; byte < packed->size(); ++byte) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::vector<uint8_t> flipped = *packed;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      Result<FirmwareImage> image = ParseFirmware(flipped);
      if (!image.ok()) {
        continue;  // CRC/framing caught it — the common case.
      }
      // The only flips that can survive framing live in the SIGN chunk
      // payload (its CRC covers them, but a *recomputed* CRC does not —
      // and we did not recompute). So a parse success here means the CRC
      // happened to still match; the signature check must then fail.
      EXPECT_FALSE(VerifyFirmwareSignature(*image, update_key).ok())
          << "bit " << bit << " of byte " << byte
          << " flipped without any check failing";
    }
  }
}

TEST(FwContainerTest, RejectsOversizedAndEmptyInputs) {
  FirmwareContainerSpec spec;
  spec.fw_version = 0;  // Version must be > 0 (0 is the unprovisioned floor).
  spec.payload = Payload(16);
  EXPECT_FALSE(PackFirmware(spec).ok());
  spec.fw_version = 1;
  spec.name.assign(65, 'x');  // Name cap is 64.
  EXPECT_FALSE(PackFirmware(spec).ok());
  spec.name.clear();
  spec.chunk_bytes = 0;
  EXPECT_FALSE(PackFirmware(spec).ok());
  EXPECT_FALSE(ParseFirmware({}).ok());
}

TEST(FwContainerTest, InspectReportsChunkInventory) {
  FirmwareContainerSpec spec;
  spec.fw_version = 5;
  spec.payload = Payload(1024);
  spec.chunk_bytes = 512;
  Result<std::vector<uint8_t>> packed = PackFirmware(spec);
  ASSERT_TRUE(packed.ok());
  Result<FirmwareContainerInfo> info = InspectFirmware(*packed);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // FWHD + two FWPL + END.
  ASSERT_EQ(info->chunks.size(), 4u);
  EXPECT_EQ(info->chunks[0].tag, kFwChunkHeader);
  EXPECT_EQ(info->chunks[1].tag, kFwChunkPayload);
  EXPECT_EQ(info->chunks[3].tag, kFwChunkEnd);
  EXPECT_EQ(info->image.fw_version, 5u);
  EXPECT_EQ(info->container_bytes, packed->size());
}

// ---------------------------------------------------------------------------
// Loader-side apply/commit/rollback on a booted platform.

class ApplyTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kCodeAddr = 0x11000;
  static constexpr uint32_t kWindowBytes = 128;

  void BootWithWindow() {
    TrustletBuildSpec spec;
    spec.name = "FWA";
    spec.code_addr = kCodeAddr;
    spec.data_addr = 0x12000;
    spec.data_size = 0x400;
    spec.stack_size = 0x100;
    // Explicit tl_handle_call so the builder appends nothing after the
    // body: the .word window is the exact tail of the code region, same
    // shape the fleet provisioner reserves for update payloads.
    spec.body = "tl_main:\n    swi 0\n    jmp tl_main\n"
                "tl_handle_call:\n    jr lr\n";
    for (uint32_t i = 0; i < kWindowBytes / 4; ++i) {
      spec.body += "    .word 0\n";
    }
    Result<TrustletMeta> tl = BuildTrustlet(spec);
    ASSERT_TRUE(tl.ok()) << tl.status().ToString();
    code_size_ = static_cast<uint32_t>(tl->code.size());
    image_.Add(*tl);
    NanosConfig os_config;
    Result<TrustletMeta> os = BuildNanos(os_config);
    ASSERT_TRUE(os.ok());
    image_.Add(*os);
    ASSERT_TRUE(platform_.InstallImage(image_).ok());
    Result<LoadReport> report = platform_.Boot();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }

  FirmwareUpdateTarget Target() const {
    FirmwareUpdateTarget target;
    target.fw_id = MakeTrustletId("FWA");
    target.table_addr = kTrustletTableBase;
    target.code_addr = kCodeAddr;
    target.code_size = code_size_;
    target.payload_offset = code_size_ - kWindowBytes;
    target.payload_capacity = kWindowBytes;
    return target;
  }

  // A parsed image of `bytes` payload bytes at `version`, signed for this
  // device's update key.
  FirmwareImage SignedImage(uint32_t version, size_t bytes,
                            uint8_t seed = 0x77) {
    FirmwareContainerSpec spec;
    spec.fw_version = version;
    spec.payload = Payload(bytes, seed);
    Result<std::vector<uint8_t>> packed =
        SignFirmware(*PackFirmware(spec), DeriveUpdateKey(device_key_));
    EXPECT_TRUE(packed.ok());
    Result<FirmwareImage> image = ParseFirmware(*packed);
    EXPECT_TRUE(image.ok());
    return *image;
  }

  Sha256Digest TableMeasurement() {
    TrustletTableView table(&platform_.bus(), kTrustletTableBase);
    const std::optional<int> row_index = table.FindById(MakeTrustletId("FWA"));
    EXPECT_TRUE(row_index.has_value());
    const std::optional<TrustletTableRow> row = table.ReadRow(*row_index);
    EXPECT_TRUE(row.has_value());
    return row->measurement;
  }

  Sha256Digest LiveMeasurement() {
    std::vector<uint8_t> live;
    EXPECT_TRUE(
        platform_.bus().HostReadBytes(kCodeAddr, code_size_, &live));
    return Sha256Hash(live.data(), live.size());
  }

  Platform platform_;
  SystemImage image_;
  uint32_t code_size_ = 0;
  std::array<uint8_t, 32> device_key_ = TestDeviceKey();
};

TEST_F(ApplyTest, TrialApplyRewritesWindowAndMeasurement) {
  BootWithWindow();
  const Sha256Digest before = TableMeasurement();
  const FirmwareImage image = SignedImage(2, 100);

  Result<FirmwareUpdateReport> report =
      ApplyFirmwareUpdate(&platform_.bus(), device_key_, image, Target());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->old_version, 0u);
  EXPECT_EQ(report->new_version, 2u);
  EXPECT_EQ(report->old_measurement, before);
  EXPECT_NE(report->new_measurement, before);
  // The table row now carries the LIVE measurement of the updated region.
  EXPECT_EQ(TableMeasurement(), report->new_measurement);
  EXPECT_EQ(LiveMeasurement(), report->new_measurement);
  // Trial apply must not advance the anti-rollback counter.
  Result<uint32_t> counter = ReadAntiRollbackCounter(&platform_.bus());
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(*counter, 0u);
  // Window rollback material covers the full capacity.
  EXPECT_EQ(report->old_window.size(), size_t{kWindowBytes});
}

TEST_F(ApplyTest, ApplyZeroPadsShorterPayload) {
  BootWithWindow();
  // A long payload first, then a shorter one: stale tail bytes of the long
  // payload must not survive into the short image's measured window.
  ASSERT_TRUE(ApplyFirmwareUpdate(&platform_.bus(), device_key_,
                                  SignedImage(2, kWindowBytes, 0xAA),
                                  Target())
                  .ok());
  Result<FirmwareUpdateReport> report = ApplyFirmwareUpdate(
      &platform_.bus(), device_key_, SignedImage(3, 20, 0xBB), Target());
  ASSERT_TRUE(report.ok());
  std::vector<uint8_t> window;
  ASSERT_TRUE(platform_.bus().HostReadBytes(
      kCodeAddr + Target().payload_offset, kWindowBytes, &window));
  for (uint32_t i = 20; i < kWindowBytes; ++i) {
    ASSERT_EQ(window[i], 0u) << "stale byte survived at offset " << i;
  }
}

TEST_F(ApplyTest, CommitLatchesMonotonicCounter) {
  BootWithWindow();
  ASSERT_TRUE(ApplyFirmwareUpdate(&platform_.bus(), device_key_,
                                  SignedImage(2, 64), Target())
                  .ok());
  ASSERT_TRUE(CommitFirmwareUpdate(&platform_.bus(), 2).ok());
  Result<uint32_t> counter = ReadAntiRollbackCounter(&platform_.bus());
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(*counter, 2u);
  // The register only latches strictly greater values: lower and equal
  // writes are ignored by hardware, and commit surfaces that as an error.
  EXPECT_FALSE(CommitFirmwareUpdate(&platform_.bus(), 1).ok());
  counter = ReadAntiRollbackCounter(&platform_.bus());
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(*counter, 2u);
}

TEST_F(ApplyTest, AntiRollbackRejectsReplayedOlderImage) {
  BootWithWindow();
  const FirmwareImage old_image = SignedImage(2, 64, 0x10);
  ASSERT_TRUE(ApplyFirmwareUpdate(&platform_.bus(), device_key_, old_image,
                                  Target())
                  .ok());
  ASSERT_TRUE(CommitFirmwareUpdate(&platform_.bus(), 2).ok());
  ASSERT_TRUE(ApplyFirmwareUpdate(&platform_.bus(), device_key_,
                                  SignedImage(3, 64, 0x11), Target())
                  .ok());
  ASSERT_TRUE(CommitFirmwareUpdate(&platform_.bus(), 3).ok());
  // The v2 image is still correctly signed for this device — replaying it
  // must fail on the counter alone, and leave the device untouched.
  const Sha256Digest before = TableMeasurement();
  Result<FirmwareUpdateReport> replay =
      ApplyFirmwareUpdate(&platform_.bus(), device_key_, old_image, Target());
  EXPECT_FALSE(replay.ok());
  EXPECT_NE(replay.status().ToString().find("anti-rollback"),
            std::string::npos)
      << replay.status().ToString();
  EXPECT_EQ(TableMeasurement(), before);
  // Equal version is also a replay.
  EXPECT_FALSE(ApplyFirmwareUpdate(&platform_.bus(), device_key_,
                                   SignedImage(3, 64, 0x12), Target())
                   .ok());
}

TEST_F(ApplyTest, UnsignedOrWrongKeyImageRejected) {
  BootWithWindow();
  FirmwareContainerSpec spec;
  spec.fw_version = 2;
  spec.payload = Payload(64);
  Result<FirmwareImage> unsigned_image = ParseFirmware(*PackFirmware(spec));
  ASSERT_TRUE(unsigned_image.ok());
  EXPECT_FALSE(ApplyFirmwareUpdate(&platform_.bus(), device_key_,
                                   *unsigned_image, Target())
                   .ok());
  // Signed, but for a different device.
  Result<std::vector<uint8_t>> foreign = SignFirmware(
      *PackFirmware(spec), DeriveUpdateKey(TestDeviceKey(0x99)));
  ASSERT_TRUE(foreign.ok());
  Result<FirmwareImage> foreign_image = ParseFirmware(*foreign);
  ASSERT_TRUE(foreign_image.ok());
  EXPECT_FALSE(ApplyFirmwareUpdate(&platform_.bus(), device_key_,
                                   *foreign_image, Target())
                   .ok());
}

TEST_F(ApplyTest, OversizedPayloadRejectedUntouched) {
  BootWithWindow();
  const Sha256Digest before = TableMeasurement();
  EXPECT_FALSE(ApplyFirmwareUpdate(&platform_.bus(), device_key_,
                                   SignedImage(2, kWindowBytes + 1), Target())
                   .ok());
  EXPECT_EQ(TableMeasurement(), before);
}

TEST_F(ApplyTest, RollbackRestoresWindowAndMeasurement) {
  BootWithWindow();
  const Sha256Digest before = TableMeasurement();
  Result<FirmwareUpdateReport> report = ApplyFirmwareUpdate(
      &platform_.bus(), device_key_, SignedImage(2, 96), Target());
  ASSERT_TRUE(report.ok());
  ASSERT_NE(TableMeasurement(), before);

  Result<Sha256Digest> restored = RollbackFirmwareUpdate(
      &platform_.bus(), Target(), report->old_window);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, before);
  EXPECT_EQ(TableMeasurement(), before);
  EXPECT_EQ(LiveMeasurement(), before);
  // The counter never moved, so the old image remains applicable.
  Result<uint32_t> counter = ReadAntiRollbackCounter(&platform_.bus());
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(*counter, 0u);
}

TEST_F(ApplyTest, SecureLoaderEntryPointsDelegate) {
  BootWithWindow();
  LoaderConfig config;
  config.device_key.assign(32, 0x41);  // == TestDeviceKey().
  SecureLoader loader(&platform_.bus(), platform_.mpu(), config);
  FirmwareUpdateTarget target = Target();
  target.table_addr = 0;  // Loader defaults this from its own config.
  Result<FirmwareUpdateReport> report =
      loader.ApplyUpdate(SignedImage(2, 64), target);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(loader.CommitUpdate(2).ok());
  Result<uint32_t> counter = ReadAntiRollbackCounter(&platform_.bus());
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(*counter, 2u);

  // Without a provisioned device key the loader fails closed.
  SecureLoader keyless(&platform_.bus(), platform_.mpu(), LoaderConfig{});
  EXPECT_FALSE(keyless.ApplyUpdate(SignedImage(3, 64), Target()).ok());
}

// ---------------------------------------------------------------------------
// Anti-rollback counter hardware properties.

TEST(AntiRollbackCounterTest, SurvivesResetAndSnapshotRoundTrip) {
  Platform platform;
  ASSERT_TRUE(platform.bus().HostWriteWord(
      kSysCtlBase + kSysCtlRegFwVersion, 5));
  Result<uint32_t> counter = ReadAntiRollbackCounter(&platform.bus());
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(*counter, 5u);

  // Monotonic in hardware: lower/equal writes are ignored.
  ASSERT_TRUE(platform.bus().HostWriteWord(
      kSysCtlBase + kSysCtlRegFwVersion, 4));
  ASSERT_TRUE(platform.bus().HostWriteWord(
      kSysCtlBase + kSysCtlRegFwVersion, 5));
  EXPECT_EQ(*ReadAntiRollbackCounter(&platform.bus()), 5u);
  ASSERT_TRUE(platform.bus().HostWriteWord(
      kSysCtlBase + kSysCtlRegFwVersion, 9));
  EXPECT_EQ(*ReadAntiRollbackCounter(&platform.bus()), 9u);

  // Device reset models a warm reboot: fused, non-volatile state stays.
  platform.sysctl().Reset();
  EXPECT_EQ(*ReadAntiRollbackCounter(&platform.bus()), 9u);

  // And the counter rides snapshots, so warm-boot fleet provisioning and
  // suspend/resume keep the rollback floor.
  Result<std::vector<uint8_t>> saved = SavePlatform(platform);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  Platform clone;
  ASSERT_TRUE(RestorePlatform(&clone, *saved).ok());
  EXPECT_EQ(*ReadAntiRollbackCounter(&clone.bus()), 9u);
}

}  // namespace
}  // namespace trustlite
