// Copyright 2026 The TrustLite Reproduction Authors.
// Unit tests for the bus and memory devices.

#include <gtest/gtest.h>

#include "src/mem/bus.h"
#include "src/mem/layout.h"
#include "src/mem/memory.h"

namespace trustlite {
namespace {

AccessContext Ctx(AccessKind kind = AccessKind::kRead, uint32_t ip = 0) {
  AccessContext ctx;
  ctx.curr_ip = ip;
  ctx.kind = kind;
  return ctx;
}

class MemTest : public ::testing::Test {
 protected:
  MemTest() : ram_("ram", 0x1000, 0x1000), prom_("prom", 0x4000, 0x1000) {
    bus_.Attach(&ram_);
    bus_.Attach(&prom_);
  }

  Bus bus_;
  Ram ram_;
  Prom prom_;
};

TEST_F(MemTest, WordReadWriteRoundTrip) {
  EXPECT_EQ(bus_.Write(Ctx(AccessKind::kWrite), 0x1004, 4, 0xCAFEBABE),
            AccessResult::kOk);
  uint32_t value = 0;
  EXPECT_EQ(bus_.Read(Ctx(), 0x1004, 4, &value), AccessResult::kOk);
  EXPECT_EQ(value, 0xCAFEBABEu);
}

TEST_F(MemTest, ByteAccessLittleEndian) {
  ASSERT_EQ(bus_.Write(Ctx(AccessKind::kWrite), 0x1010, 4, 0x11223344),
            AccessResult::kOk);
  uint32_t b0 = 0;
  uint32_t b3 = 0;
  EXPECT_EQ(bus_.Read(Ctx(), 0x1010, 1, &b0), AccessResult::kOk);
  EXPECT_EQ(bus_.Read(Ctx(), 0x1013, 1, &b3), AccessResult::kOk);
  EXPECT_EQ(b0, 0x44u);
  EXPECT_EQ(b3, 0x11u);
}

TEST_F(MemTest, MisalignedWordFaults) {
  uint32_t value = 0;
  EXPECT_EQ(bus_.Read(Ctx(), 0x1001, 4, &value), AccessResult::kAlignFault);
  EXPECT_EQ(bus_.Write(Ctx(AccessKind::kWrite), 0x1002, 4, 1),
            AccessResult::kAlignFault);
}

TEST_F(MemTest, UnmappedAddressIsBusError) {
  uint32_t value = 0;
  EXPECT_EQ(bus_.Read(Ctx(), 0x9000, 4, &value), AccessResult::kBusError);
  EXPECT_EQ(bus_.Write(Ctx(AccessKind::kWrite), 0x0, 4, 1),
            AccessResult::kBusError);
}

TEST_F(MemTest, AccessAtDeviceEndIsBusError) {
  uint32_t value = 0;
  // Last valid word is 0x1FFC; a word at 0x1FFE straddles past the end (and
  // is misaligned); a word at 0x2000 is outside.
  EXPECT_EQ(bus_.Read(Ctx(), 0x1FFC, 4, &value), AccessResult::kOk);
  EXPECT_EQ(bus_.Read(Ctx(), 0x2000, 4, &value), AccessResult::kBusError);
}

TEST_F(MemTest, PromRejectsGuestWrites) {
  EXPECT_EQ(bus_.Write(Ctx(AccessKind::kWrite), 0x4000, 4, 1),
            AccessResult::kBusError);
  EXPECT_EQ(bus_.Write(Ctx(AccessKind::kWrite), 0x4100, 1, 1),
            AccessResult::kBusError);
}

TEST_F(MemTest, PromHostProgrammingAndGuestRead) {
  prom_.LoadBytes(0, {0xDE, 0xAD, 0xBE, 0xEF});
  uint32_t value = 0;
  EXPECT_EQ(bus_.Read(Ctx(), 0x4000, 4, &value), AccessResult::kOk);
  EXPECT_EQ(value, 0xEFBEADDEu);
}

TEST_F(MemTest, HostHelpers) {
  EXPECT_TRUE(bus_.HostWriteWord(0x1100, 42));
  uint32_t value = 0;
  EXPECT_TRUE(bus_.HostReadWord(0x1100, &value));
  EXPECT_EQ(value, 42u);

  const std::vector<uint8_t> bytes = {1, 2, 3, 4, 5};
  EXPECT_TRUE(bus_.HostWriteBytes(0x1200, bytes));
  std::vector<uint8_t> readback;
  EXPECT_TRUE(bus_.HostReadBytes(0x1200, 5, &readback));
  EXPECT_EQ(readback, bytes);

  EXPECT_FALSE(bus_.HostReadWord(0x9000, &value));
  EXPECT_FALSE(bus_.HostWriteWord(0x9000, 0));
}

TEST_F(MemTest, FindDevice) {
  EXPECT_EQ(bus_.FindDevice(0x1000), &ram_);
  EXPECT_EQ(bus_.FindDevice(0x1FFF), &ram_);
  EXPECT_EQ(bus_.FindDevice(0x4000), &prom_);
  EXPECT_EQ(bus_.FindDevice(0x3000), nullptr);
}

TEST_F(MemTest, RamFillAndReadBytes) {
  ram_.Fill(0xAA);
  const std::vector<uint8_t> bytes = ram_.ReadBytes(0x10, 4);
  EXPECT_EQ(bytes, (std::vector<uint8_t>{0xAA, 0xAA, 0xAA, 0xAA}));
}

// A protection unit that denies everything, to verify check placement.
class DenyAll : public ProtectionUnit {
 public:
  AccessResult Check(const AccessContext&, uint32_t, uint32_t) override {
    ++checks;
    return AccessResult::kProtFault;
  }
  int checks = 0;
};

TEST_F(MemTest, ProtectionUnitConsultedBeforeDevice) {
  DenyAll deny;
  bus_.SetProtectionUnit(&deny);
  uint32_t value = 0;
  EXPECT_EQ(bus_.Read(Ctx(), 0x1000, 4, &value), AccessResult::kProtFault);
  EXPECT_EQ(bus_.Write(Ctx(AccessKind::kWrite), 0x1000, 4, 1),
            AccessResult::kProtFault);
  EXPECT_EQ(deny.checks, 2);
  // Host accesses bypass protection.
  EXPECT_TRUE(bus_.HostWriteWord(0x1000, 7));
  EXPECT_EQ(deny.checks, 2);
  // Engine-port accesses bypass protection as well.
  AccessContext engine;
  engine.engine = true;
  engine.kind = AccessKind::kWrite;
  EXPECT_EQ(bus_.Write(engine, 0x1000, 4, 9), AccessResult::kOk);
  EXPECT_EQ(deny.checks, 2);
}

TEST(MemLayoutTest, RegionsDoNotOverlap) {
  EXPECT_LE(kPromBase + kPromSize, kSramBase);
  EXPECT_LE(kSramBase + kSramSize, kDramBase);
  EXPECT_LT(kDramBase + kDramSize, kMmioBase);
  EXPECT_GE(kTrustletTableBase, kSramBase);
  EXPECT_LT(kTrustletTableBase, kSramBase + kSramSize);
  // MMIO blocks are distinct, kMmioBlockSize-aligned windows.
  const uint32_t blocks[] = {kSysCtlBase, kMpuMmioBase, kTimerBase,
                             kUartBase,   kShaBase,     kTrngBase,
                             kGpioBase,   kSancusMmioBase, kDmaBase};
  for (size_t i = 0; i < std::size(blocks); ++i) {
    EXPECT_EQ(blocks[i] % kMmioBlockSize, 0u) << i;
    for (size_t j = i + 1; j < std::size(blocks); ++j) {
      EXPECT_NE(blocks[i], blocks[j]) << i << "," << j;
    }
  }
}

TEST(BusTopOfMemoryTest, ByteRunsStopAtTheTopOfTheAddressSpace) {
  // A device whose range ends exactly at 2^32: runs inside it work, and
  // runs that would extend past 0xFFFFFFFF fail instead of wrapping around
  // to address 0 (the run arithmetic is 64-bit).
  Bus bus;
  Ram top("top", 0xFFFF'F000u, 0x1000);
  bus.Attach(&top);
  const std::vector<uint8_t> bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_TRUE(bus.HostWriteBytes(0xFFFF'FFF8u, bytes));
  std::vector<uint8_t> readback;
  EXPECT_TRUE(bus.HostReadBytes(0xFFFF'FFF8u, 8, &readback));
  EXPECT_EQ(readback, bytes);
  EXPECT_FALSE(bus.HostWriteBytes(0xFFFF'FFFCu, bytes));
  EXPECT_FALSE(bus.HostReadBytes(0xFFFF'FFFCu, 8, &readback));
  // The word straddling nothing at the very top is still addressable.
  EXPECT_TRUE(bus.HostWriteWord(0xFFFF'FFFCu, 0xA5A5'A5A5u));
  uint32_t word = 0;
  EXPECT_TRUE(bus.HostReadWord(0xFFFF'FFFCu, &word));
  EXPECT_EQ(word, 0xA5A5'A5A5u);
}

}  // namespace
}  // namespace trustlite
