// Copyright 2026 The TrustLite Reproduction Authors.
//
// Watchdog service tests (paper Sec. 6 "Fault Tolerance"): a trustlet that
// exclusively owns the timer and implements its own ISR — the OS cannot
// silence it, heartbeat stalls raise a trusted alarm, and the watchdog's
// defer path doubles as the system's preemption source.

#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/loader/system_image.h"
#include "src/os/nanos.h"
#include "src/platform/platform.h"
#include "src/services/watchdog.h"
#include "src/trustlet/builder.h"

namespace trustlite {
namespace {

constexpr uint32_t kHeartbeat = 0x0003'0000;
constexpr uint32_t kWorkCell = 0x0003'0004;
constexpr uint32_t kWdData = 0x0001'6000;

// A worker trustlet that never yields; it bumps the heartbeat (and a work
// counter) forever. Preemption must come from the watchdog's timer.
TrustletBuildSpec WorkerSpec(bool update_heartbeat) {
  TrustletBuildSpec spec;
  spec.name = "WRK";
  spec.code_addr = 0x11000;
  spec.data_addr = 0x12000;
  spec.data_size = 0x400;
  spec.stack_size = 0x100;
  std::string body = R"(
tl_main:
    li   r4, 0x30000
    li   r5, 0x30004
    movi r1, 0
loop:
    addi r1, r1, 1
    stw  r1, [r5]
)";
  if (update_heartbeat) {
    body += "    stw  r1, [r4]\n";
  }
  body += "    jmp  loop\n";
  spec.body = body;
  return spec;
}

struct WatchdogSystem {
  explicit WatchdogSystem(bool heartbeat_alive, uint32_t timeout_ticks = 4) {
    SystemImage image;

    NanosConfig os_config;
    os_config.enable_timer = false;  // The watchdog owns the only timer.
    os_config.grant_timer = false;
    Result<TrustletMeta> os = BuildNanos(os_config);
    EXPECT_TRUE(os.ok());

    WatchdogSpec wd;
    wd.code_addr = 0x15000;
    wd.data_addr = kWdData;
    wd.heartbeat_addr = kHeartbeat;
    wd.timeout_ticks = timeout_ticks;
    wd.period = 1500;
    wd.os_entry = os_config.code_addr;
    wd.os_stack_grant_base = os->data_addr;
    wd.os_stack_grant_end = os->data_addr + os->data_size;
    Result<TrustletMeta> wd_meta = BuildWatchdog(wd);
    EXPECT_TRUE(wd_meta.ok()) << wd_meta.status().ToString();
    // Scheduler order follows image order: the watchdog must run first to
    // arm the timer, because the worker never yields voluntarily.
    image.Add(*wd_meta);
    image.Add(*BuildTrustlet(WorkerSpec(heartbeat_alive)));
    image.Add(*os);
    EXPECT_TRUE(platform.InstallImage(image).ok());
    Result<LoadReport> report = platform.BootAndLaunch();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
  }

  uint32_t Word(uint32_t addr) {
    uint32_t value = 0;
    EXPECT_TRUE(platform.bus().HostReadWord(addr, &value));
    return value;
  }

  Platform platform;
};

TEST(WatchdogTest, TicksAndSchedulesWhileHeartbeatAlive) {
  WatchdogSystem system(/*heartbeat_alive=*/true);
  system.platform.Run(300000);
  ASSERT_FALSE(system.platform.cpu().halted())
      << system.platform.cpu().trap().reason;
  // Ticks advanced, no alarm, no stall accumulation.
  EXPECT_GT(system.Word(kWdData + kWdTick), 10u);
  EXPECT_EQ(system.Word(kWdData + kWdAlarm), 0u);
  EXPECT_LT(system.Word(kWdData + kWdStalled), 4u);
  EXPECT_EQ(system.platform.gpio().out(), 0u);
  // The non-yielding worker made progress: the watchdog's defer path is the
  // only preemption source in this system.
  EXPECT_GT(system.Word(kWorkCell), 1000u);
  EXPECT_GT(system.platform.cpu().stats().trustlet_interrupts, 10u);
}

TEST(WatchdogTest, StalledHeartbeatRaisesTrustedAlarm) {
  WatchdogSystem system(/*heartbeat_alive=*/false, /*timeout_ticks=*/3);
  system.platform.Run(300000);
  ASSERT_FALSE(system.platform.cpu().halted())
      << system.platform.cpu().trap().reason;
  EXPECT_EQ(system.Word(kWdData + kWdAlarm), 1u);
  EXPECT_EQ(system.platform.gpio().out(), kWdAlarmPattern);
  EXPECT_GE(system.Word(kWdData + kWdStalled), 3u);
}

TEST(WatchdogTest, OsCannotSilenceTheWatchdog) {
  WatchdogSystem system(/*heartbeat_alive=*/true);
  system.platform.Run(100000);
  const uint32_t ticks_before = system.Word(kWdData + kWdTick);
  ASSERT_GT(ticks_before, 3u);

  // Hostile code (a compromised OS) tries to disable the timer.
  Result<AsmOutput> attacker = Assemble(R"(
.org 0x31000
    li  r1, 0xF0002000
    movi r2, 0
    stw r2, [r1 + 0]       ; TIMER_CTRL = 0 -> MPU fault
    halt
)");
  ASSERT_TRUE(attacker.ok());
  uint32_t base = 0;
  ASSERT_TRUE(system.platform.bus().HostWriteBytes(0x31000,
                                                   attacker->Flatten(&base)));
  system.platform.cpu().Reset(0x31000);
  system.platform.cpu().set_reg(kRegSp, 0x38000);
  system.platform.Run(1000);
  // The poke faulted (nanOS policy halts on OS faults)...
  ASSERT_TRUE(system.platform.cpu().halted());
  // ...and the timer remained armed throughout.
  uint32_t ctrl = 0;
  ASSERT_TRUE(system.platform.bus().HostReadWord(kTimerBase + kTimerRegCtrl,
                                                 &ctrl));
  EXPECT_NE(ctrl & kTimerCtrlEnable, 0u);
}

TEST(WatchdogTest, WatchdogSurvivesInterruptingItself) {
  // With a short period the timer regularly fires while the watchdog's own
  // park loop runs (trustlet path into its own ISR).
  WatchdogSystem system(/*heartbeat_alive=*/true);
  system.platform.Run(400000);
  ASSERT_FALSE(system.platform.cpu().halted())
      << system.platform.cpu().trap().reason;
  EXPECT_GT(system.Word(kWdData + kWdTick), 20u);
}

}  // namespace
}  // namespace trustlite
