// Copyright 2026 The TrustLite Reproduction Authors.
// SMART and Sancus baseline tests: access-control automata, guest-visible
// behaviour (attestation tags verified against host crypto), reset/wipe
// semantics, and the restrictions TrustLite lifts.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/isa/assembler.h"
#include "src/sancus/sancus.h"
#include "src/smart/smart.h"

namespace trustlite {
namespace {

std::array<uint8_t, 32> TestKey() {
  std::array<uint8_t, 32> key;
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0xA0 + i);
  }
  return key;
}

// ---------------- SMART ----------------

TEST(SmartTest, RoutineAssemblesWithinRom) {
  SmartConfig config;
  Result<std::vector<uint8_t>> routine = BuildSmartRoutine(config);
  ASSERT_TRUE(routine.ok()) << routine.status().ToString();
  EXPECT_GT(routine->size(), 200u);
  EXPECT_LE(config.rom_base + routine->size(), config.rom_end);
}

TEST(SmartTest, AttestationTagIsGenuineHmac) {
  SmartSystem smart(SmartConfig{}, TestKey());
  // Some "firmware" to attest, in open RAM.
  const uint32_t region_base = 0x0003'1000;
  std::vector<uint8_t> firmware(128);
  for (size_t i = 0; i < firmware.size(); ++i) {
    firmware[i] = static_cast<uint8_t>(i * 3);
  }
  ASSERT_TRUE(smart.platform().bus().HostWriteBytes(region_base, firmware));

  Sha256Digest tag;
  ASSERT_TRUE(smart.InvokeAttestation(0xDEAD0001, region_base,
                                      region_base + 128, &tag));
  EXPECT_EQ(tag, smart.ExpectedTag(0xDEAD0001, firmware));

  // Different nonce -> different tag (freshness).
  Sha256Digest tag2;
  ASSERT_TRUE(smart.InvokeAttestation(0xDEAD0002, region_base,
                                      region_base + 128, &tag2));
  EXPECT_NE(tag, tag2);
  EXPECT_EQ(tag2, smart.ExpectedTag(0xDEAD0002, firmware));
}

TEST(SmartTest, TamperedFirmwareChangesTag) {
  SmartSystem smart(SmartConfig{}, TestKey());
  const uint32_t region_base = 0x0003'1000;
  std::vector<uint8_t> firmware(64, 0x5A);
  ASSERT_TRUE(smart.platform().bus().HostWriteBytes(region_base, firmware));
  Sha256Digest clean;
  ASSERT_TRUE(
      smart.InvokeAttestation(7, region_base, region_base + 64, &clean));
  ASSERT_TRUE(smart.platform().bus().HostWriteWord(region_base + 16, 0x666));
  Sha256Digest tampered;
  ASSERT_TRUE(
      smart.InvokeAttestation(7, region_base, region_base + 64, &tampered));
  EXPECT_NE(clean, tampered);
}

TEST(SmartTest, DirectKeyReadForcesReset) {
  SmartConfig config;
  SmartSystem smart(config, TestKey());
  // Untrusted code reads the key region directly.
  std::string src = ".org 0x31000\n    li r1, 0x" + [&] {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%x", config.key_base);
    return std::string(buf);
  }() + "\n    ldw r2, [r1]\n    halt\n";
  Result<AsmOutput> out = Assemble(src);
  ASSERT_TRUE(out.ok());
  uint32_t base = 0;
  ASSERT_TRUE(smart.platform().bus().HostWriteBytes(0x31000,
                                                    out->Flatten(&base)));
  smart.platform().cpu().Reset(0x31000);
  smart.platform().Run(100);
  ASSERT_TRUE(smart.platform().cpu().halted());
  EXPECT_EQ(smart.platform().cpu().trap().exception_class, kExcReset);
  EXPECT_TRUE(smart.unit().violation());
  EXPECT_EQ(smart.unit().violation_addr(), config.key_base);
  // The key value never reached the register.
  EXPECT_EQ(smart.platform().cpu().reg(2), 0u);
}

TEST(SmartTest, MidRoutineJumpForcesReset) {
  SmartConfig config;
  SmartSystem smart(config, TestKey());
  std::string src = ".org 0x31000\n    li r1, 0x" + [&] {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%x", config.rom_base + 0x40);
    return std::string(buf);
  }() + "\n    jr r1\n    halt\n";
  Result<AsmOutput> out = Assemble(src);
  ASSERT_TRUE(out.ok());
  uint32_t base = 0;
  ASSERT_TRUE(smart.platform().bus().HostWriteBytes(0x31000,
                                                    out->Flatten(&base)));
  smart.platform().cpu().Reset(0x31000);
  smart.platform().Run(100);
  ASSERT_TRUE(smart.platform().cpu().halted());
  EXPECT_EQ(smart.platform().cpu().trap().exception_class, kExcReset);
}

TEST(SmartTest, ResetWipesAllVolatileMemory) {
  SmartSystem smart(SmartConfig{}, TestKey());
  ASSERT_TRUE(smart.platform().bus().HostWriteWord(0x00031000, 0x5EC8E7));
  const uint64_t wipe_cycles = smart.ResetAndSanitize();
  EXPECT_EQ(wipe_cycles,
            MemorySanitizeCycles(kSramSize + kDramSize));
  uint32_t word = 1;
  ASSERT_TRUE(smart.platform().bus().HostReadWord(0x00031000, &word));
  EXPECT_EQ(word, 0u);
  EXPECT_FALSE(smart.unit().violation());
}

TEST(SmartTest, SoftwareHashVariantProducesSameHmac) {
  // The original SMART had no crypto accelerator: the ROM routine carries
  // its own SHA-256. Same key, same mailbox protocol, same tag.
  SmartSystem smart(SoftwareSmartConfig(), TestKey());
  const uint32_t region_base = 0x0003'1000;
  std::vector<uint8_t> firmware(256);
  for (size_t i = 0; i < firmware.size(); ++i) {
    firmware[i] = static_cast<uint8_t>(i ^ 0x37);
  }
  ASSERT_TRUE(smart.platform().bus().HostWriteBytes(region_base, firmware));
  Sha256Digest tag;
  uint64_t soft_cycles = 0;
  ASSERT_TRUE(smart.InvokeAttestation(0xAB, region_base, region_base + 256,
                                      &tag, &soft_cycles));
  EXPECT_EQ(tag, smart.ExpectedTag(0xAB, firmware));

  // Key-derived staging bytes were wiped before the routine returned.
  const SmartConfig config = SoftwareSmartConfig();
  std::vector<uint8_t> stage;
  ASSERT_TRUE(smart.platform().bus().HostReadBytes(config.soft_scratch,
                                                   24 * 4, &stage));
  for (const uint8_t byte : stage) {
    ASSERT_EQ(byte, 0);
  }

  // Cost contrast: the engine-backed routine is far cheaper.
  SmartSystem hw(SmartConfig{}, TestKey());
  ASSERT_TRUE(hw.platform().bus().HostWriteBytes(region_base, firmware));
  Sha256Digest hw_tag;
  uint64_t hw_cycles = 0;
  ASSERT_TRUE(hw.InvokeAttestation(0xAB, region_base, region_base + 256,
                                   &hw_tag, &hw_cycles));
  EXPECT_EQ(hw_tag, tag);
  EXPECT_GT(soft_cycles, hw_cycles * 10);
}

TEST(SmartTest, SoftwareVariantKeyStillGated) {
  const SmartConfig config = SoftwareSmartConfig();
  SmartSystem smart(config, TestKey());
  Result<AsmOutput> thief = Assemble(
      ".org 0x31000\n    li r1, " + std::to_string(config.key_base) +
      "\n    ldw r2, [r1]\n    halt\n");
  ASSERT_TRUE(thief.ok());
  uint32_t base = 0;
  ASSERT_TRUE(
      smart.platform().bus().HostWriteBytes(0x31000, thief->Flatten(&base)));
  smart.platform().cpu().Reset(0x31000);
  smart.platform().Run(100);
  EXPECT_EQ(smart.platform().cpu().trap().exception_class, kExcReset);
}

// ---------------- Sancus ----------------

class SancusTest : public ::testing::Test {
 protected:
  SancusTest()
      : platform_([] {
          PlatformConfig pc;
          pc.with_mpu = false;
          return pc;
        }()),
        unit_(8, std::vector<uint8_t>(16, 0x42)) {
    unit_.Install(&platform_.cpu(), &platform_.bus());
  }

  // Assembles at fixed origins and loads.
  void Load(const std::string& source) {
    Result<AsmOutput> out = Assemble(source);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    for (const AsmChunk& chunk : out->chunks) {
      ASSERT_TRUE(platform_.bus().HostWriteBytes(chunk.base, chunk.bytes));
    }
    symbols_ = out->symbols;
  }

  Platform platform_;
  SancusUnit unit_;
  std::map<std::string, uint32_t> symbols_;
};

TEST_F(SancusTest, ProtectCreatesModuleWithDerivedKey) {
  Load(R"(
.org 0x30000
start:
    la  r1, descriptor
    protect r1
    halt
descriptor:
    .word 0x11000, 0x11100, 0x12000, 0x12100
.org 0x11000
module_code:
    .word 1, 2, 3, 4
)");
  platform_.cpu().Reset(0x30000);
  platform_.Run(100);
  EXPECT_EQ(platform_.cpu().reg(0), 1u);  // Module id.
  EXPECT_EQ(unit_.active_modules(), 1);
  const SancusModule* module = unit_.module_by_id(1);
  ASSERT_NE(module, nullptr);
  // Key derives from the text contents under the master key.
  std::vector<uint8_t> text;
  ASSERT_TRUE(platform_.bus().HostReadBytes(0x11000, 0x100, &text));
  EXPECT_EQ(module->key, unit_.DeriveKey(text));
}

TEST_F(SancusTest, ModuleDataIsolatedFromOutside) {
  Load(R"(
.org 0x30000
start:
    la  r1, descriptor
    protect r1
    li  r2, 0x12000
    ldw r3, [r2]          ; foreign read of module data -> reset
    halt
descriptor:
    .word 0x11000, 0x11100, 0x12000, 0x12100
)");
  platform_.cpu().Reset(0x30000);
  platform_.Run(100);
  ASSERT_TRUE(platform_.cpu().halted());
  EXPECT_EQ(platform_.cpu().trap().exception_class, kExcReset);
  EXPECT_TRUE(unit_.violation());
}

TEST_F(SancusTest, ModuleEntryOnlyAtTextStart) {
  Load(R"(
.org 0x30000
start:
    la  r1, descriptor
    protect r1
    li  r2, 0x11008       ; mid-module target
    jr  r2
    halt
descriptor:
    .word 0x11000, 0x11100, 0x12000, 0x12100
.org 0x11000
module:
    nop
    nop
    halt
)");
  platform_.cpu().Reset(0x30000);
  platform_.Run(100);
  EXPECT_EQ(platform_.cpu().trap().exception_class, kExcReset);
}

TEST_F(SancusTest, ModuleCanUseItsDataAndAttest) {
  Load(R"(
.org 0x30000
start:
    la  r1, descriptor
    protect r1
    li  r2, 0x11000
    jr  r2                ; enter the module at its start
    halt
descriptor:
    .word 0x11000, 0x11100, 0x12000, 0x12100

.org 0x11000
module:
    ; use own data section
    li  r3, 0x12000
    li  r4, 0x600D
    stw r4, [r3]
    ldw r5, [r3]
    ; attest some open memory
    li  r6, 0x12010       ; descriptor inside own data
    li  r7, 0x12040       ; out_ptr
    stw r7, [r6 + 0]
    li  r7, 0x31000       ; target start
    stw r7, [r6 + 4]
    li  r7, 0x31040       ; target end
    stw r7, [r6 + 8]
    li  r7, 0x123
    stw r7, [r6 + 12]     ; nonce
    attest r8, r6
    halt
)");
  // Target bytes.
  std::vector<uint8_t> target(0x40, 0xAB);
  ASSERT_TRUE(platform_.bus().HostWriteBytes(0x31000, target));

  platform_.cpu().Reset(0x30000);
  platform_.Run(1000);
  ASSERT_TRUE(platform_.cpu().halted());
  ASSERT_FALSE(unit_.violation());
  EXPECT_EQ(platform_.cpu().reg(5), 0x600Du);
  EXPECT_EQ(platform_.cpu().reg(8), 1u);  // Attest succeeded.

  // The tag in the module's data matches the host model under the module key.
  const SancusModule* module = unit_.module_by_id(1);
  ASSERT_NE(module, nullptr);
  std::vector<uint8_t> tag_bytes;
  ASSERT_TRUE(platform_.bus().HostReadBytes(0x12040, kSpongentDigestSize,
                                            &tag_bytes));
  const SpongentDigest expected = unit_.ExpectedTag(module->key, 0x123, target);
  EXPECT_TRUE(std::equal(tag_bytes.begin(), tag_bytes.end(), expected.begin()));
}

TEST_F(SancusTest, AttestOutsideModuleFails) {
  Load(R"(
.org 0x30000
start:
    li  r6, 0x31000
    attest r8, r6
    halt
)");
  platform_.cpu().Reset(0x30000);
  platform_.cpu().set_reg(8, 77);
  platform_.Run(100);
  EXPECT_EQ(platform_.cpu().reg(8), 0u);
  EXPECT_FALSE(platform_.cpu().trap().valid);
}

TEST_F(SancusTest, InterruptInsideModuleForcesReset) {
  Load(R"(
.org 0x30000
start:
    la  r1, descriptor
    protect r1
    ; arm the timer, then enter the module
    li  r2, 0xF0002000
    movi r3, 50
    stw r3, [r2 + 4]
    la  r3, isr
    stw r3, [r2 + 12]
    movi r3, 3
    stw r3, [r2 + 0]
    sti
    li  r2, 0x11000
    jr  r2
isr:
    halt
descriptor:
    .word 0x11000, 0x11100, 0x12000, 0x12100
.org 0x11000
module:
spin:
    jmp spin
)");
  platform_.cpu().Reset(0x30000);
  platform_.Run(10000);
  ASSERT_TRUE(platform_.cpu().halted());
  // Sancus cannot interrupt a module: the platform resets instead of
  // invoking the ISR (TrustLite's secure exceptions remove this limitation).
  EXPECT_EQ(platform_.cpu().trap().exception_class, kExcReset);
}

TEST_F(SancusTest, UnprotectTearsDownModule) {
  Load(R"(
.org 0x30000
start:
    la  r1, descriptor
    protect r1
    li  r2, 0x11000
    jr  r2
descriptor:
    .word 0x11000, 0x11100, 0x12000, 0x12100
.org 0x11000
module:
    unprotect
    halt
)");
  platform_.cpu().Reset(0x30000);
  platform_.Run(100);
  ASSERT_TRUE(platform_.cpu().halted());
  EXPECT_FALSE(platform_.cpu().trap().valid);
  EXPECT_EQ(unit_.active_modules(), 0);
}

TEST_F(SancusTest, OverlappingProtectRejected) {
  Load(R"(
.org 0x30000
start:
    la  r1, d1
    protect r1
    mov r9, r0
    la  r1, d2
    protect r1
    halt
d1: .word 0x11000, 0x11100, 0x12000, 0x12100
d2: .word 0x11080, 0x11200, 0x13000, 0x13100
)");
  platform_.cpu().Reset(0x30000);
  platform_.Run(100);
  EXPECT_EQ(platform_.cpu().reg(9), 1u);  // First succeeded.
  EXPECT_EQ(platform_.cpu().reg(0), 0u);  // Overlap rejected.
  EXPECT_EQ(unit_.active_modules(), 1);
}

TEST_F(SancusTest, ModuleSlotsExhaust) {
  // 8 slots; the 9th protect fails — the production-time limit that
  // Figure 7 prices.
  std::string src = ".org 0x30000\nstart:\n";
  for (int i = 0; i < 9; ++i) {
    src += "    la r1, d" + std::to_string(i) + "\n    protect r1\n";
    src += "    mov r" + std::to_string(2 + i % 10) + ", r0\n";
  }
  src += "    halt\n";
  for (int i = 0; i < 9; ++i) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "d%d: .word 0x%x, 0x%x, 0x%x, 0x%x\n", i,
                  0x11000 + i * 0x400, 0x11100 + i * 0x400,
                  0x18000 + i * 0x400, 0x18100 + i * 0x400);
    src += buf;
  }
  Load(src);
  platform_.cpu().Reset(0x30000);
  platform_.Run(1000);
  EXPECT_EQ(unit_.active_modules(), 8);
  EXPECT_EQ(platform_.cpu().reg(0), 0u);  // Last protect failed.
}

TEST_F(SancusTest, SingleContiguousDataSectionCannotSpanDisjointMmio) {
  // Paper Sec. 3.3: "the Sancus task model requires that all memory and
  // MMIO accessible for a trustlet are wired into the same contiguous data
  // region, which is unusual". A module whose data section covers its RAM
  // cannot also reach a disjoint MMIO block: the access resets the
  // platform. (TrustLite expresses this with a second grant region — see
  // IntegrationTest.SecurePeripheralExclusiveToTrustlet and the watchdog.)
  Load(R"(
.org 0x30000
start:
    la  r1, descriptor
    protect r1
    li  r2, 0x11000
    jr  r2
descriptor:
    .word 0x11000, 0x11100, 0x12000, 0x12100

.org 0x11000
module:
    ; own data: fine
    li  r3, 0x12000
    movi r4, 1
    stw r4, [r3]
    ; disjoint MMIO (GPIO): outside the single data section -> allowed only
    ; because it is outside EVERY module section (open); but granting it
    ; *exclusively* is impossible — any other code may use it too.
    li  r3, 0xF0006000
    stw r4, [r3]
    halt
)");
  platform_.cpu().Reset(0x30000);
  platform_.Run(1000);
  ASSERT_TRUE(platform_.cpu().halted());
  EXPECT_FALSE(unit_.violation());
  // The GPIO write went through — and so would anyone else's: Sancus cannot
  // give the module exclusivity over a disjoint MMIO range.
  AccessContext outsider;
  outsider.curr_ip = 0x30000;
  outsider.kind = AccessKind::kWrite;
  EXPECT_EQ(unit_.Check(outsider, 0xF0006000, 4), AccessResult::kOk);
  // Folding the MMIO into the module data section would require the data
  // descriptor to span 0x12000..0xF0007000 — covering (and confiscating)
  // all of DRAM and every other peripheral: the unusual wiring the paper
  // criticizes. Protect rejects it here because it overlaps module text.
  Load(R"(
.org 0x32000
start2:
    la  r1, big_descriptor
    protect r1
    halt
big_descriptor:
    .word 0x13000, 0x13100, 0x12000, 0xF0007000
)");
  platform_.cpu().Reset(0x32000);
  platform_.Run(1000);
  EXPECT_EQ(platform_.cpu().reg(0), 0u);  // Overlap -> rejected.
}

TEST_F(SancusTest, ResetDestroysModulesAndKeys) {
  Load(R"(
.org 0x30000
start:
    la  r1, descriptor
    protect r1
    halt
descriptor:
    .word 0x11000, 0x11100, 0x12000, 0x12100
)");
  platform_.cpu().Reset(0x30000);
  platform_.Run(100);
  ASSERT_EQ(unit_.active_modules(), 1);
  platform_.HardReset();  // Bus reset also resets the protection unit.
  EXPECT_EQ(unit_.active_modules(), 0);
}

}  // namespace
}  // namespace trustlite
