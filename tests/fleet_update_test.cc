// Copyright 2026 The TrustLite Reproduction Authors.
// Staged fleet firmware rollout tests (DESIGN.md §16): clean canary-first
// campaigns ending in fleet-wide commit and re-attestation against the new
// golden measurement, bit-identical transcripts across host thread counts,
// halt-on-quarantine abort + rollback under a mid-campaign tamper, the
// fleet-wide anti-rollback rejection of a replayed older signed image, and
// campaign survival under the PR7 hostile link modes.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/fleet/attest.h"
#include "src/fleet/fleet.h"
#include "src/fleet/link.h"
#include "src/fleet/provision.h"
#include "src/fleet/update.h"
#include "src/harness/fleet_campaign.h"
#include "src/update/apply.h"
#include "src/update/fw_container.h"

namespace trustlite {
namespace {

std::vector<uint8_t> PackedContainer(uint32_t version, size_t bytes,
                                     uint8_t seed) {
  FirmwareContainerSpec spec;
  spec.fw_version = version;
  spec.payload.resize(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    spec.payload[i] = static_cast<uint8_t>(seed + 7 * i);
  }
  Result<std::vector<uint8_t>> packed = PackFirmware(spec);
  EXPECT_TRUE(packed.ok()) << packed.status().ToString();
  return *packed;
}

struct CampaignOutcome {
  UpdatePhase phase = UpdatePhase::kIdle;
  std::vector<UpdateNodeState> states;
  std::vector<int> canaries;
  std::string transcript;
};

struct UpdateRun {
  bool attest_resolved = false;
  std::vector<CampaignOutcome> campaigns;
  std::vector<AttestNodeState> attest_states;
  std::vector<uint32_t> counters;  // Per-node anti-rollback counters.
  Sha256Digest digest{};
  std::string transcript;  // Attestor + campaign transcripts.
  LinkFabric::Stats link_stats;
};

struct UpdateRunConfig {
  int nodes = 8;
  int threads = 1;
  uint64_t seed = 7;
  int canary_pct = 25;
  bool halt_on_quarantine = true;
  bool tamper_first_canary = false;
  HostileMode hostile = HostileMode::kNone;
  uint32_t hostile_ppm = 0;
  std::vector<std::vector<uint8_t>> containers;
};

UpdateRun RunUpdateFleet(const UpdateRunConfig& rc) {
  FleetConfig config;
  config.nodes = rc.nodes;
  config.topology = Topology::kStar;
  config.seed = rc.seed;
  config.threads = rc.threads;
  config.quantum = 20'000;
  config.link.latency_cycles = 1'000;
  config.link = ApplyHostileMode(config.link, rc.hostile, rc.hostile_ppm);
  Fleet fleet(config);

  FleetProvisionConfig prov;
  for (const std::vector<uint8_t>& container : rc.containers) {
    Result<FirmwareImage> image = ParseFirmware(container);
    EXPECT_TRUE(image.ok()) << image.status().ToString();
    if (image->payload.size() > prov.payload_capacity) {
      prov.payload_capacity =
          static_cast<uint32_t>(image->payload.size());
    }
  }
  Result<std::vector<NodeProvision>> provisions =
      ProvisionAttestationFleet(&fleet, prov);
  EXPECT_TRUE(provisions.ok()) << provisions.status().ToString();

  UpdateRun run;
  FleetAttestor attestor(&fleet, *provisions, AttestPolicy{});
  attestor.Begin();
  for (uint64_t q = 0; q < 600 && !attestor.Done(); ++q) {
    fleet.RunQuantum();
    attestor.OnQuantumBoundary();
  }
  run.attest_resolved = attestor.Done();
  EXPECT_TRUE(run.attest_resolved) << "initial attestation unresolved";
  run.transcript = attestor.transcript();

  UpdateCampaignConfig ucfg;
  ucfg.canary_pct = rc.canary_pct;
  ucfg.halt_on_quarantine = rc.halt_on_quarantine;
  for (size_t k = 0; k < rc.containers.size(); ++k) {
    UpdateCampaign campaign(&fleet, &attestor, rc.containers[k], ucfg);
    EXPECT_TRUE(campaign.Start().ok());
    bool tampered = false;
    for (uint64_t q = 0; q < 2'000 && !campaign.Done(); ++q) {
      fleet.RunQuantum();
      campaign.OnQuantumBoundary();
      if (rc.tamper_first_canary && k == 0 && !tampered &&
          campaign.phase() == UpdatePhase::kCanaryVerify) {
        const int victim = campaign.canaries().front();
        EXPECT_TRUE(TamperNode(fleet.node(victim),
                               &(*provisions)[static_cast<size_t>(victim)])
                        .ok());
        tampered = true;
      }
    }
    CampaignOutcome outcome;
    outcome.phase = campaign.phase();
    for (int i = 0; i < rc.nodes; ++i) {
      outcome.states.push_back(campaign.state(i));
    }
    outcome.canaries = campaign.canaries();
    outcome.transcript = campaign.transcript();
    run.transcript += campaign.transcript();
    run.campaigns.push_back(std::move(outcome));
  }

  for (int i = 0; i < rc.nodes; ++i) {
    run.attest_states.push_back(attestor.state(i));
    Result<uint32_t> counter =
        ReadAntiRollbackCounter(&fleet.node(i).platform().bus());
    EXPECT_TRUE(counter.ok());
    run.counters.push_back(counter.ok() ? *counter : 0xFFFF'FFFFu);
  }
  run.digest = fleet.FleetDigest();
  run.link_stats = fleet.fabric().stats();
  return run;
}

int CountStates(const CampaignOutcome& outcome, UpdateNodeState want) {
  int count = 0;
  for (UpdateNodeState state : outcome.states) {
    count += state == want ? 1 : 0;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Frame scanner unit properties.

TEST(UpdateFrameTest, EncodeScanRoundTrip) {
  const uint8_t data[] = {1, 2, 3, 4, 5};
  const std::string frame = EncodeUpdateFrame(0xABCD1234, 512, data, 5);
  ASSERT_EQ(static_cast<uint8_t>(frame[0]), kUpdateFrameMarker);
  size_t frame_start = 0;
  size_t next = 0;
  uint32_t cid = 0;
  uint32_t offset = 0;
  std::string payload;
  const std::string rx = std::string("noise") + frame + "tail";
  EXPECT_EQ(ScanUpdateFrame(rx, 0, &frame_start, &next, &cid, &offset,
                            &payload),
            UpdateScan::kFrame);
  EXPECT_EQ(frame_start, 5u);
  EXPECT_EQ(next, 5u + frame.size());
  EXPECT_EQ(cid, 0xABCD1234u);
  EXPECT_EQ(offset, 512u);
  EXPECT_EQ(payload, std::string(data, data + 5));
}

TEST(UpdateFrameTest, CorruptedFrameSkippedAsNoise) {
  const uint8_t data[] = {9, 9, 9, 9};
  std::string frame = EncodeUpdateFrame(1, 0, data, 4);
  frame[6] ^= 0x40;  // Damage the offset field; the CRC no longer matches.
  size_t frame_start = 0;
  size_t next = 0;
  uint32_t cid = 0;
  uint32_t offset = 0;
  std::string payload;
  EXPECT_EQ(ScanUpdateFrame(frame, 0, &frame_start, &next, &cid, &offset,
                            &payload),
            UpdateScan::kNoFrame);
  // A valid frame after the damaged one is still found.
  const std::string good = EncodeUpdateFrame(1, 4, data, 4);
  const std::string rx = frame + good;
  EXPECT_EQ(ScanUpdateFrame(rx, 0, &frame_start, &next, &cid, &offset,
                            &payload),
            UpdateScan::kFrame);
  EXPECT_EQ(offset, 4u);
}

TEST(UpdateFrameTest, PartialFrameReportsNeedMore) {
  const uint8_t data[] = {7, 7, 7};
  const std::string frame = EncodeUpdateFrame(2, 0, data, 3);
  const std::string partial = frame.substr(0, frame.size() - 2);
  size_t frame_start = 99;
  size_t next = 0;
  uint32_t cid = 0;
  uint32_t offset = 0;
  std::string payload;
  EXPECT_EQ(ScanUpdateFrame(partial, 0, &frame_start, &next, &cid, &offset,
                            &payload),
            UpdateScan::kNeedMore);
  EXPECT_EQ(frame_start, 0u);
}

// ---------------------------------------------------------------------------
// Campaign end-to-end.

TEST(FleetUpdateTest, CleanRolloutCommitsEveryNodeAndReattests) {
  UpdateRunConfig rc;
  rc.containers.push_back(PackedContainer(2, 1200, 0x30));
  UpdateRun run = RunUpdateFleet(rc);
  ASSERT_EQ(run.campaigns.size(), 1u);
  const CampaignOutcome& outcome = run.campaigns[0];
  EXPECT_EQ(outcome.phase, UpdatePhase::kDone);
  EXPECT_EQ(CountStates(outcome, UpdateNodeState::kCommitted), rc.nodes);
  EXPECT_EQ(outcome.canaries.size(), 2u) << "25% of 8";
  for (int i = 0; i < rc.nodes; ++i) {
    EXPECT_EQ(run.counters[static_cast<size_t>(i)], 2u) << "node " << i;
    // The post-update re-attestation verified everyone against the NEW
    // golden measurement — nobody is left quarantined or unresolved.
    EXPECT_EQ(run.attest_states[static_cast<size_t>(i)],
              AttestNodeState::kVerified)
        << "node " << i;
  }
  EXPECT_NE(outcome.transcript.find("complete committed=8"),
            std::string::npos)
      << outcome.transcript;
}

TEST(FleetUpdateTest, TranscriptAndDigestIdenticalAcrossThreadCounts) {
  UpdateRunConfig rc;
  rc.containers.push_back(PackedContainer(2, 1200, 0x30));
  UpdateRun one = RunUpdateFleet(rc);
  rc.threads = 8;
  UpdateRun many = RunUpdateFleet(rc);
  EXPECT_EQ(one.transcript, many.transcript);
  EXPECT_EQ(one.digest, many.digest);
  EXPECT_EQ(one.counters, many.counters);
  ASSERT_EQ(one.campaigns.size(), many.campaigns.size());
  EXPECT_EQ(one.campaigns[0].states, many.campaigns[0].states);
  EXPECT_EQ(one.campaigns[0].canaries, many.campaigns[0].canaries);
}

TEST(FleetUpdateTest, TamperDeterminismAcrossThreadCounts) {
  UpdateRunConfig rc;
  rc.containers.push_back(PackedContainer(2, 800, 0x31));
  rc.tamper_first_canary = true;
  UpdateRun one = RunUpdateFleet(rc);
  rc.threads = 8;
  UpdateRun many = RunUpdateFleet(rc);
  EXPECT_EQ(one.transcript, many.transcript);
  EXPECT_EQ(one.digest, many.digest);
  EXPECT_EQ(one.campaigns[0].states, many.campaigns[0].states);
}

TEST(FleetUpdateTest, MidCampaignTamperAbortsRollsBackAndQuarantines) {
  UpdateRunConfig rc;
  rc.containers.push_back(PackedContainer(2, 800, 0x31));
  rc.tamper_first_canary = true;
  UpdateRun run = RunUpdateFleet(rc);
  ASSERT_EQ(run.campaigns.size(), 1u);
  const CampaignOutcome& outcome = run.campaigns[0];
  EXPECT_EQ(outcome.phase, UpdatePhase::kAborted);

  const int victim = outcome.canaries.front();
  EXPECT_EQ(outcome.states[static_cast<size_t>(victim)],
            UpdateNodeState::kQuarantined);
  EXPECT_EQ(run.attest_states[static_cast<size_t>(victim)],
            AttestNodeState::kQuarantined);
  // The other canaries were applied but uncommitted — they roll back; the
  // rest of the fleet never left pending; nothing ever committed.
  EXPECT_EQ(CountStates(outcome, UpdateNodeState::kRolledBack),
            static_cast<int>(outcome.canaries.size()) - 1);
  EXPECT_EQ(CountStates(outcome, UpdateNodeState::kCommitted), 0);
  EXPECT_EQ(CountStates(outcome, UpdateNodeState::kPending),
            rc.nodes - static_cast<int>(outcome.canaries.size()));
  for (int i = 0; i < rc.nodes; ++i) {
    EXPECT_EQ(run.counters[static_cast<size_t>(i)], 0u)
        << "counter advanced on node " << i << " despite the abort";
    if (i == victim) {
      continue;
    }
    // Rolled-back and pending nodes re-attest cleanly against the OLD
    // golden — the abort restored both image and golden custody.
    EXPECT_EQ(run.attest_states[static_cast<size_t>(i)],
              AttestNodeState::kVerified)
        << "node " << i;
  }
  EXPECT_NE(outcome.transcript.find("aborted"), std::string::npos);
  EXPECT_NE(outcome.transcript.find("rolled back"), std::string::npos);
}

TEST(FleetUpdateTest, ReplayedOlderImageRejectedFleetWide) {
  UpdateRunConfig rc;
  rc.canary_pct = 100;  // Single-stage: every node sees the replay.
  rc.containers.push_back(PackedContainer(3, 600, 0x32));
  rc.containers.push_back(PackedContainer(2, 600, 0x33));  // The replay.
  UpdateRun run = RunUpdateFleet(rc);
  ASSERT_EQ(run.campaigns.size(), 2u);
  EXPECT_EQ(run.campaigns[0].phase, UpdatePhase::kDone);
  EXPECT_EQ(CountStates(run.campaigns[0], UpdateNodeState::kCommitted),
            rc.nodes);

  const CampaignOutcome& replay = run.campaigns[1];
  EXPECT_EQ(replay.phase, UpdatePhase::kAborted);
  EXPECT_EQ(CountStates(replay, UpdateNodeState::kRejected), rc.nodes);
  EXPECT_EQ(CountStates(replay, UpdateNodeState::kCommitted), 0);
  for (int i = 0; i < rc.nodes; ++i) {
    EXPECT_EQ(run.counters[static_cast<size_t>(i)], 3u) << "node " << i;
  }
  EXPECT_NE(replay.transcript.find("anti-rollback"), std::string::npos)
      << replay.transcript;
}

TEST(FleetUpdateTest, CampaignSurvivesHostileLinkMatrix) {
  const struct {
    HostileMode mode;
    uint32_t ppm;
  } kCases[] = {
      // Corrupted chunks are dropped by the frame CRC and retransmit on
      // the stop-and-wait deadline; replay and reflection never damage the
      // fresh copy and can run hotter.
      {HostileMode::kCorrupt, 150'000},
      {HostileMode::kReplay, 500'000},
      {HostileMode::kReflect, 500'000},
  };
  for (const auto& hostile : kCases) {
    SCOPED_TRACE(HostileModeName(hostile.mode));
    UpdateRunConfig rc;
    rc.nodes = 6;
    rc.canary_pct = 34;
    rc.hostile = hostile.mode;
    rc.hostile_ppm = hostile.ppm;
    rc.containers.push_back(PackedContainer(2, 700, 0x34));
    UpdateRun run = RunUpdateFleet(rc);
    ASSERT_EQ(run.campaigns.size(), 1u);
    EXPECT_EQ(run.campaigns[0].phase, UpdatePhase::kDone)
        << run.campaigns[0].transcript;
    EXPECT_EQ(CountStates(run.campaigns[0], UpdateNodeState::kCommitted),
              rc.nodes);
    switch (hostile.mode) {
      case HostileMode::kCorrupt:
        EXPECT_GT(run.link_stats.corrupted, 0u);
        break;
      case HostileMode::kReplay:
        EXPECT_GT(run.link_stats.replayed, 0u);
        break;
      case HostileMode::kReflect:
        EXPECT_GT(run.link_stats.reflected, 0u);
        break;
      default:
        break;
    }
  }
}

TEST(FleetUpdateTest, ReflectedTransferFramesNeverApply) {
  UpdateRunConfig rc;
  rc.nodes = 6;
  rc.canary_pct = 34;
  rc.hostile = HostileMode::kReflect;
  rc.hostile_ppm = 1'000'000;  // Echo EVERY verifier transmission.
  rc.containers.push_back(PackedContainer(2, 700, 0x35));
  UpdateRun run = RunUpdateFleet(rc);
  ASSERT_EQ(run.campaigns.size(), 1u);
  const CampaignOutcome& outcome = run.campaigns[0];
  EXPECT_EQ(outcome.phase, UpdatePhase::kDone) << outcome.transcript;
  EXPECT_GT(run.link_stats.reflected, 0u);
  // Every node applied exactly once: the echoed frames landed in the
  // verifier's own attestation stream as noise and never reached a node's
  // update staging path, so no double/spurious apply is ever logged.
  size_t applies = 0;
  size_t pos = 0;
  while ((pos = outcome.transcript.find(" applied v", pos)) !=
         std::string::npos) {
    ++applies;
    ++pos;
  }
  EXPECT_EQ(applies, static_cast<size_t>(rc.nodes));
  EXPECT_EQ(CountStates(outcome, UpdateNodeState::kCommitted), rc.nodes);
}

}  // namespace
}  // namespace trustlite
