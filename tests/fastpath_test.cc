// Copyright 2026 The TrustLite Reproduction Authors.
//
// Invalidation tests for the simulator fast path: the decoded-instruction
// cache, the EA-MPU subject/decision/fetch caches, and the bus routing
// memoization. These caches are host-side speedups only — every test here
// pins down a case where stale cached state would change guest-visible
// behavior, and checks that it does not.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/isa/isa.h"
#include "src/mem/layout.h"
#include "src/mem/memory.h"
#include "src/mpu/ea_mpu.h"
#include "src/platform/platform.h"

namespace trustlite {
namespace {

// ---------------------------------------------------------------------------
// Decode cache: self-modifying code.

// A loop body patches its own first instruction (addi r3, r3, 1 ->
// addi r3, r3, 100) through a guest store, then runs the patched site a
// second time. A decode cache that failed to notice the store would replay
// the stale decode and end with r3 == 2 instead of 101.
TEST(FastPathDecodeTest, SelfModifyingCodeIsRedecoded) {
  Instruction patched;
  patched.opcode = Opcode::kAddi;
  patched.rd = 3;
  patched.rs1 = 3;
  patched.imm = 100;
  char source[512];
  std::snprintf(source, sizeof(source), R"(
.org 0x30000
start:
    la  r1, target
    li  r2, 0x%x
    movi r3, 0
    movi r5, 0
    li  r6, 2
again:
target:
    addi r3, r3, 1
    stw r2, [r1]
    addi r5, r5, 1
    bne r5, r6, again
    halt
)",
                Encode(patched));

  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  Result<AsmOutput> out = Assemble(source);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  uint32_t base = 0;
  ASSERT_TRUE(platform.bus().HostWriteBytes(base = 0x30000, out->Flatten(&base)));
  platform.cpu().Reset(out->symbols.at("start"));
  platform.Run(1000);
  ASSERT_TRUE(platform.cpu().halted());
  // Pass 1 adds 1, pass 2 runs the patched instruction and adds 100.
  EXPECT_EQ(platform.cpu().reg(3), 101u);
  EXPECT_EQ(platform.cpu().reg(5), 2u);
  // The loop tail (stw/addi/bne) re-executes unmodified and must hit.
  EXPECT_GT(platform.cpu().stats().decode_hits, 0u);
  EXPECT_GT(platform.cpu().stats().decode_misses, 0u);
}

// Host-path stores (loaders, debuggers) must also reach a previously
// executed instruction: the word comparison re-decodes the new word even
// though no guest store happened.
TEST(FastPathDecodeTest, HostPatchIsRedecoded) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  Result<AsmOutput> out = Assemble(R"(
.org 0x30000
start:
    movi r3, 0
site:
    addi r3, r3, 1
    halt
)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  uint32_t base = 0;
  ASSERT_TRUE(platform.bus().HostWriteBytes(0x30000, out->Flatten(&base)));
  const uint32_t site = out->symbols.at("site");
  platform.cpu().Reset(out->symbols.at("start"));
  platform.Run(100);
  ASSERT_TRUE(platform.cpu().halted());
  EXPECT_EQ(platform.cpu().reg(3), 1u);

  Instruction patched;
  patched.opcode = Opcode::kAddi;
  patched.rd = 3;
  patched.rs1 = 3;
  patched.imm = 42;
  ASSERT_TRUE(platform.bus().HostWriteWord(site, Encode(patched)));
  platform.cpu().Reset(out->symbols.at("start"));
  platform.Run(100);
  ASSERT_TRUE(platform.cpu().halted());
  EXPECT_EQ(platform.cpu().reg(3), 42u);
}

// ---------------------------------------------------------------------------
// EA-MPU caches. Fixture mirrors mpu_test.cc: two trustlet code/data region
// pairs inside one RAM, configured through the guest-visible MMIO interface
// (so every reprogramming step goes down the same invalidation path the
// paper's secure loader would use).

constexpr uint32_t kCodeA = 0x0001'0000;
constexpr uint32_t kCodeAEnd = 0x0001'0100;
constexpr uint32_t kDataA = 0x0001'1000;
constexpr uint32_t kDataAEnd = 0x0001'1100;
constexpr uint32_t kCodeB = 0x0001'2000;
constexpr uint32_t kCodeBEnd = 0x0001'2100;
constexpr uint32_t kOpenRam = 0x0001'8000;

constexpr int kRegionCodeA = 0;
constexpr int kRegionDataA = 1;
constexpr int kRegionCodeB = 2;

class FastPathMpuTest : public ::testing::Test {
 protected:
  FastPathMpuTest()
      : ram_("ram", kSramBase, kSramSize), mpu_(kMpuMmioBase, 16, 32) {
    bus_.Attach(&ram_);
    bus_.Attach(&mpu_);
    bus_.SetProtectionUnit(&mpu_);
    SetRegion(kRegionCodeA, kCodeA, kCodeAEnd, kMpuAttrEnable | kMpuAttrCode);
    SetRegion(kRegionDataA, kDataA, kDataAEnd, kMpuAttrEnable);
    SetRegion(kRegionCodeB, kCodeB, kCodeBEnd, kMpuAttrEnable | kMpuAttrCode);
  }

  void SetRegion(int index, uint32_t base, uint32_t end, uint32_t attr) {
    const uint32_t reg = kMpuMmioBase + kMpuRegionBank +
                         static_cast<uint32_t>(index) * kMpuRegionStride;
    ASSERT_TRUE(bus_.HostWriteWord(reg + 0, base));
    ASSERT_TRUE(bus_.HostWriteWord(reg + 4, end));
    ASSERT_TRUE(bus_.HostWriteWord(reg + 8, attr));
  }

  void SetRule(int index, uint32_t subject, uint32_t object, bool r, bool w,
               bool x) {
    ASSERT_TRUE(bus_.HostWriteWord(
        kMpuMmioBase + kMpuRuleBank + static_cast<uint32_t>(index) * 4,
        EncodeMpuRule(subject, object, r, w, x)));
  }

  void Enable(uint32_t extra = 0) {
    ASSERT_TRUE(
        bus_.HostWriteWord(kMpuMmioBase + kMpuRegCtrl, kMpuCtrlEnable | extra));
  }

  AccessResult Access(uint32_t ip, AccessKind kind, uint32_t addr,
                      uint32_t width = 4, bool privileged = false) {
    AccessContext ctx;
    ctx.curr_ip = ip;
    ctx.kind = kind;
    ctx.privileged = privileged;
    return mpu_.Check(ctx, addr, width);
  }

  void AckFault() {
    ASSERT_TRUE(bus_.HostWriteWord(kMpuMmioBase + kMpuRegFaultInfo, 0));
  }

  Bus bus_;
  Ram ram_;
  EaMpu mpu_;
};

TEST_F(FastPathMpuTest, RuleRewriteInvalidatesDecisionCache) {
  Enable();
  SetRule(0, kRegionCodeA, kRegionDataA, true, true, false);
  // Warm the subject and decision caches.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(Access(kCodeA + 4, AccessKind::kRead, kDataA), AccessResult::kOk);
  }
  EXPECT_GT(mpu_.stats().decision_hits, 0u);
  // Revoke read: the cached allow must not survive the rule write.
  const uint64_t gen = mpu_.config_generation();
  SetRule(0, kRegionCodeA, kRegionDataA, false, true, false);
  EXPECT_GT(mpu_.config_generation(), gen);
  EXPECT_EQ(Access(kCodeA + 4, AccessKind::kRead, kDataA),
            AccessResult::kProtFault);
  AckFault();
  EXPECT_EQ(Access(kCodeA + 4, AccessKind::kWrite, kDataA), AccessResult::kOk);
}

TEST_F(FastPathMpuTest, RegionReprogramInvalidatesSubjectCache) {
  Enable();
  SetRule(0, kRegionCodeA, kRegionDataA, true, true, false);
  // Warm: IP inside code region A resolves to subject 0 and may read data A.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(Access(kCodeA + 8, AccessKind::kRead, kDataA), AccessResult::kOk);
  }
  EXPECT_GT(mpu_.stats().subject_hits, 0u);
  // Move code region A elsewhere: the same IP is now an unprotected subject
  // and must lose access, even though the rule itself is unchanged.
  SetRegion(kRegionCodeA, kCodeB, kCodeBEnd, kMpuAttrEnable | kMpuAttrCode);
  EXPECT_EQ(Access(kCodeA + 8, AccessKind::kRead, kDataA),
            AccessResult::kProtFault);
}

TEST_F(FastPathMpuTest, LockingARegionInvalidatesAndThenFreezes) {
  Enable();
  SetRule(0, kRegionCodeA, kRegionDataA, true, true, false);
  ASSERT_EQ(Access(kCodeA, AccessKind::kRead, kDataA), AccessResult::kOk);
  // Lock data region A and simultaneously disable it: the lock write itself
  // must invalidate (the region stops covering kDataA -> open memory), and
  // later writes to the locked region are ignored without reviving it.
  const uint32_t attr_reg =
      kMpuMmioBase + kMpuRegionBank + kRegionDataA * kMpuRegionStride + 8;
  ASSERT_TRUE(bus_.HostWriteWord(attr_reg, kMpuAttrLock));
  EXPECT_EQ(Access(kOpenRam, AccessKind::kWrite, kDataA), AccessResult::kOk);
  ASSERT_TRUE(bus_.HostWriteWord(attr_reg, kMpuAttrEnable));  // Ignored.
  EXPECT_EQ(Access(kOpenRam, AccessKind::kWrite, kDataA), AccessResult::kOk);
}

TEST_F(FastPathMpuTest, CompatModeToggleInvalidatesDecisions) {
  Enable();
  SetRule(0, kMpuSubjectAny, kRegionCodeA, false, false, true);
  // Warm execution-aware decisions: B fetching past A's entry vector faults
  // (the wildcard execute grant only covers the entry vector).
  ASSERT_EQ(Access(kCodeB, AccessKind::kFetch, kCodeA + 8),
            AccessResult::kProtFault);
  AckFault();
  // Compat mode drops the entry-vector restriction: the same fetch now
  // passes under rule 0's execute grant (any subject, any offset).
  Enable(kMpuCtrlCompatMode);
  EXPECT_EQ(Access(kCodeB, AccessKind::kFetch, kCodeA + 8), AccessResult::kOk);
  // And back: the compat-mode allow must not stick either.
  Enable();
  EXPECT_EQ(Access(kCodeB, AccessKind::kFetch, kCodeA + 8),
            AccessResult::kProtFault);
}

TEST_F(FastPathMpuTest, EntryVectorStaysExactAfterWarmup) {
  Enable();
  SetRule(0, kRegionCodeB, kRegionCodeB, true, false, true);
  SetRule(1, kMpuSubjectAny, kRegionCodeB, false, false, true);
  // Warm the fetch cache hard on both the entry vector (foreign subject)
  // and the region body (B itself).
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(Access(kCodeA, AccessKind::kFetch, kCodeB), AccessResult::kOk);
    ASSERT_EQ(Access(kCodeB, AccessKind::kFetch, kCodeB + 8),
              AccessResult::kOk);
  }
  EXPECT_GT(mpu_.stats().fetch_hits, 0u);
  // A foreign fetch one word past the entry vector must still fault — a
  // cache keyed on (subject, object) instead of the exact address would
  // reuse the entry-vector allow here.
  EXPECT_EQ(Access(kCodeA, AccessKind::kFetch, kCodeB + 4),
            AccessResult::kProtFault);
  uint32_t fault_addr = 0;
  ASSERT_TRUE(bus_.HostReadWord(kMpuMmioBase + kMpuRegFaultAddr, &fault_addr));
  EXPECT_EQ(fault_addr, kCodeB + 4);
  AckFault();
  // And B's own warmed body fetches must not leak to the foreign subject.
  EXPECT_EQ(Access(kCodeA, AccessKind::kFetch, kCodeB + 8),
            AccessResult::kProtFault);
}

TEST_F(FastPathMpuTest, ResetInvalidatesEverything) {
  Enable();
  SetRule(0, kRegionCodeA, kRegionDataA, true, true, false);
  ASSERT_EQ(Access(kCodeA, AccessKind::kRead, kDataA), AccessResult::kOk);
  mpu_.Reset();
  // Disabled unit: everything passes, and reprogramming from scratch yields
  // fresh decisions (no stale subject/coverage intervals).
  ASSERT_EQ(Access(kCodeA, AccessKind::kRead, kDataA), AccessResult::kOk);
  SetRegion(kRegionDataA, kDataA, kDataAEnd, kMpuAttrEnable);
  Enable();
  EXPECT_EQ(Access(kCodeA, AccessKind::kRead, kDataA),
            AccessResult::kProtFault);  // Region restored, rule gone.
}

TEST_F(FastPathMpuTest, FaultAcknowledgeDoesNotInvalidate) {
  Enable();
  ASSERT_EQ(Access(kOpenRam, AccessKind::kRead, kDataA),
            AccessResult::kProtFault);
  const uint64_t gen = mpu_.config_generation();
  AckFault();
  // The fault-path hot loop (fault, ack, retry) must not thrash the caches.
  EXPECT_EQ(mpu_.config_generation(), gen);
  ASSERT_EQ(Access(kOpenRam, AccessKind::kRead, kDataA),
            AccessResult::kProtFault);
  EXPECT_GT(mpu_.stats().decision_hits + mpu_.stats().subject_hits, 0u);
}

TEST_F(FastPathMpuTest, CountersAccumulate) {
  Enable();
  SetRule(0, kRegionCodeA, kRegionDataA, true, true, false);
  mpu_.ResetStats();
  for (int i = 0; i < 4; ++i) {
    Access(kCodeA, AccessKind::kRead, kDataA);
    Access(kCodeA, AccessKind::kFetch, kCodeA + 4);
  }
  const MpuStats& stats = mpu_.stats();
  EXPECT_EQ(stats.checks, 8u);
  EXPECT_GT(stats.subject_hits, 0u);
  EXPECT_GT(stats.decision_hits, 0u);
  EXPECT_GT(stats.fetch_hits, 0u);
  EXPECT_GT(stats.decision_misses, 0u);
  EXPECT_GT(stats.fetch_misses, 0u);
}

// ---------------------------------------------------------------------------
// Bus routing and host byte-run helpers.

TEST(FastPathBusTest, HostByteRunsCrossDeviceBoundaries) {
  Bus bus;
  Ram lo("lo", 0x1000, 0x100);
  Ram hi("hi", 0x1100, 0x100);
  bus.Attach(&hi);  // Out-of-order attach: the table must still sort.
  bus.Attach(&lo);
  std::vector<uint8_t> pattern(0x80);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  // Write a run straddling the lo/hi boundary, read it back in one run.
  ASSERT_TRUE(bus.HostWriteBytes(0x10C0, pattern));
  std::vector<uint8_t> readback;
  ASSERT_TRUE(bus.HostReadBytes(0x10C0, 0x80, &readback));
  EXPECT_EQ(readback, pattern);
  // Runs extending past the last device fail without partial surprises.
  EXPECT_FALSE(bus.HostReadBytes(0x11C0, 0x80, &readback));
  EXPECT_FALSE(bus.HostWriteBytes(0x11C0, pattern));
  // A run starting in unmapped space fails.
  EXPECT_FALSE(bus.HostReadBytes(0x0F80, 0x100, &readback));
}

TEST(FastPathBusTest, RouteMemoizationCountsHits) {
  Bus bus;
  Ram ram("ram", 0x1000, 0x1000);
  bus.Attach(&ram);
  uint32_t value = 0;
  ASSERT_TRUE(bus.HostReadWord(0x1000, &value));
  const uint64_t misses = bus.stats().route_misses;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(bus.HostReadWord(0x1000 + static_cast<uint32_t>(i) * 4,
                                 &value));
  }
  EXPECT_GT(bus.stats().route_hits, 0u);
  EXPECT_EQ(bus.stats().route_misses, misses);  // Same device every time.
}

TEST(FastPathBusTest, MemoryGenerationTracksStores) {
  Bus bus;
  Ram ram("ram", 0x1000, 0x1000);
  EaMpu mpu(kMpuMmioBase, 16, 32);
  bus.Attach(&ram);
  bus.Attach(&mpu);
  const uint64_t gen = bus.memory_generation();
  uint32_t value = 0;
  ASSERT_TRUE(bus.HostReadWord(0x1000, &value));
  EXPECT_EQ(bus.memory_generation(), gen);  // Reads do not bump.
  ASSERT_TRUE(bus.HostWriteWord(0x1000, 0x1234));
  EXPECT_GT(bus.memory_generation(), gen);
  // MMIO register writes are not memory stores.
  const uint64_t gen2 = bus.memory_generation();
  ASSERT_TRUE(bus.HostWriteWord(kMpuMmioBase + kMpuRegCtrl, 0));
  EXPECT_EQ(bus.memory_generation(), gen2);
}

}  // namespace
}  // namespace trustlite
