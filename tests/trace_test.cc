// Copyright 2026 The TrustLite Reproduction Authors.
// Execution tracer tests: event classification, instruction recording, ring
// capacity, UART capture, and dump formatting.

#include "src/platform/trace.h"

#include <gtest/gtest.h>

#include "src/isa/assembler.h"

namespace trustlite {
namespace {

void LoadAt(Platform& platform, const std::string& source, uint32_t origin) {
  Result<AsmOutput> out = Assemble(source, origin);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (const AsmChunk& chunk : out->chunks) {
    ASSERT_TRUE(platform.bus().HostWriteBytes(chunk.base, chunk.bytes));
  }
}

TEST(TraceTest, RecordsInstructionsAndHalt) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  LoadAt(platform, R"(
    movi r1, 1
    movi r2, 2
    add  r3, r1, r2
    halt
)",
         0x30000);
  platform.cpu().Reset(0x30000);
  ExecutionTracer tracer(/*capacity=*/64, /*record_instructions=*/true);
  EXPECT_EQ(tracer.Run(&platform, 100), StepEvent::kHalted);
  // The HALT transition is reported as a halt event, not a retire.
  EXPECT_EQ(tracer.counts().instructions, 3u);
  ASSERT_GE(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.events().front().type, TraceEventType::kInstruction);
  EXPECT_EQ(tracer.events().back().type, TraceEventType::kHalt);
  EXPECT_EQ(tracer.events().back().detail, 0xFFFFFFFFu);  // Clean halt.
  const std::string dump = tracer.Dump();
  EXPECT_NE(dump.find("movi r1, 1"), std::string::npos);
  EXPECT_NE(dump.find("add r3, r1, r2"), std::string::npos);
  EXPECT_NE(dump.find("(clean)"), std::string::npos);
}

TEST(TraceTest, ClassifiesInterruptsAndExceptions) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  LoadAt(platform, R"(
    li  r1, 0xF0002000
    movi r2, 30
    stw r2, [r1 + 4]
    la  r2, isr
    stw r2, [r1 + 12]
    movi r2, 3
    stw r2, [r1 + 0]
    li  r9, 0xF0000000
    la  r2, swi_handler
    stw r2, [r9 + 32]
    li  sp, 0x3c000
    swi 0
    sti
spin:
    jmp spin
isr:
    halt
swi_handler:
    addi sp, sp, 4
    iret
)",
         0x30000);
  platform.cpu().Reset(0x30000);
  ExecutionTracer tracer(64, /*record_instructions=*/false);
  tracer.Run(&platform, 10000);
  EXPECT_EQ(tracer.counts().exceptions, 1u);  // The SWI.
  EXPECT_EQ(tracer.counts().interrupts, 1u);  // The timer.
  EXPECT_GT(tracer.counts().instructions, 0u);  // Counted, not recorded.
  bool saw_insn = false;
  bool saw_exc = false;
  bool saw_irq = false;
  for (const TraceEvent& event : tracer.events()) {
    saw_insn |= event.type == TraceEventType::kInstruction;
    saw_exc |= event.type == TraceEventType::kException;
    saw_irq |= event.type == TraceEventType::kInterrupt;
  }
  EXPECT_FALSE(saw_insn);  // Recording disabled: ring holds only events.
  EXPECT_TRUE(saw_exc);
  EXPECT_TRUE(saw_irq);
}

TEST(TraceTest, CapturesUartBytes) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  LoadAt(platform, R"(
    li  r1, 0xF0003000
    movi r2, 'H'
    stw r2, [r1]
    movi r2, 'i'
    stw r2, [r1]
    halt
)",
         0x30000);
  platform.cpu().Reset(0x30000);
  ExecutionTracer tracer;
  tracer.Run(&platform, 100);
  EXPECT_EQ(tracer.counts().uart_bytes, 2u);
  const std::string dump = tracer.Dump();
  EXPECT_NE(dump.find("'H'"), std::string::npos);
  EXPECT_NE(dump.find("'i'"), std::string::npos);
}

// Regression (observability rework): a UART byte produced while the tracer
// is attached but *not* driving the CPU — here: a timer ISR print executed
// via a direct cpu().Run() after tracer.Run() returned — must still be
// captured, attributed to the IP of the instruction that stored to TXDATA.
// The old polling tracer only saw bytes appearing during its own Run loop
// and recorded nothing here.
TEST(TraceTest, UartTxAttributedToEmittingInstructionInIsr) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  Result<AsmOutput> out = Assemble(R"(
start:
    li  r1, 0xF0002000
    movi r2, 200
    stw r2, [r1 + 4]
    la  r2, isr
    stw r2, [r1 + 12]
    movi r2, 7
    stw r2, [r1 + 0]
    li  sp, 0x3c000
    sti
idle:
    jmp idle
isr:
    li  r9, 0xF0003000
    movi r5, '*'
print:
    stw r5, [r9]
    halt
)",
                                   0x30000);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (const AsmChunk& chunk : out->chunks) {
    ASSERT_TRUE(platform.bus().HostWriteBytes(chunk.base, chunk.bytes));
  }
  platform.cpu().Reset(out->symbols.at("start"));

  ExecutionTracer tracer;
  // A budget far below the 200-cycle timer period: Run returns with the
  // tracer attached but no byte printed yet.
  tracer.Run(&platform, 5);
  EXPECT_EQ(tracer.counts().uart_bytes, 0u);

  // The ISR fires and prints while the CPU is driven directly.
  platform.cpu().Run(100000);
  ASSERT_TRUE(platform.cpu().halted());
  ASSERT_EQ(platform.uart().output(), "*");

  EXPECT_EQ(tracer.counts().uart_bytes, 1u);
  const uint32_t print_ip = out->symbols.at("print");
  bool saw_attributed_byte = false;
  for (const TraceEvent& event : tracer.events()) {
    if (event.type == TraceEventType::kUartTx) {
      EXPECT_EQ(event.ip, print_ip);
      EXPECT_EQ(event.detail, uint32_t{'*'});
      saw_attributed_byte = true;
    }
  }
  EXPECT_TRUE(saw_attributed_byte);
}

// Regression (observability rework): repeated Run calls interleaved with
// direct cpu().Step() calls must neither skip nor double-count UART bytes.
// The old tracer snapshotted `uart_seen = output().size()` at the top of
// each Run, so a byte emitted between two Runs was silently skipped.
TEST(TraceTest, TwoRunCallsDoNotSkipInterleavedUartBytes) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  LoadAt(platform, R"(
    li  r1, 0xF0003000
    movi r2, 'A'
    stw r2, [r1]
    movi r2, 'B'
    stw r2, [r1]
    movi r2, 'C'
    stw r2, [r1]
    halt
)",
         0x30000);
  platform.cpu().Reset(0x30000);

  ExecutionTracer tracer;
  // li expands to lui+ori; 4 steps retire up to the first stw -> 'A'.
  tracer.Run(&platform, 4);
  EXPECT_EQ(tracer.counts().uart_bytes, 1u);

  // 'B' is emitted by direct steps, outside any tracer.Run call.
  platform.cpu().Step();
  platform.cpu().Step();
  ASSERT_EQ(platform.uart().output(), "AB");

  tracer.Run(&platform, 100);  // 'C' + halt.
  ASSERT_TRUE(platform.cpu().halted());

  EXPECT_EQ(tracer.counts().uart_bytes, 3u);
  std::string captured;
  for (const TraceEvent& event : tracer.events()) {
    if (event.type == TraceEventType::kUartTx) {
      captured.push_back(static_cast<char>(event.detail));
    }
  }
  EXPECT_EQ(captured, "ABC");
}

TEST(TraceTest, RingDropsOldestBeyondCapacity) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  LoadAt(platform, R"(
    movi r1, 0
    movi r2, 100
loop:
    addi r1, r1, 1
    bne  r1, r2, loop
    halt
)",
         0x30000);
  platform.cpu().Reset(0x30000);
  ExecutionTracer tracer(/*capacity=*/16, /*record_instructions=*/true);
  tracer.Run(&platform, 100000);
  EXPECT_EQ(tracer.events().size(), 16u);
  EXPECT_GT(tracer.counts().instructions, 100u);  // Counted beyond capacity.
  // Dump(last) limits further.
  const std::string tail = tracer.Dump(/*last=*/3);
  EXPECT_EQ(std::count(tail.begin(), tail.end(), '\n'), 3);
}

}  // namespace
}  // namespace trustlite
