// Copyright 2026 The TrustLite Reproduction Authors.
// CPU interpreter tests: instruction semantics, cycle accounting, control
// flow, memory access, SWI/iret, and the cycle counter peripheral wiring.

#include "src/cpu/cpu.h"

#include <gtest/gtest.h>

#include "src/dev/sysctl.h"
#include "src/isa/assembler.h"
#include "src/mem/bus.h"
#include "src/mem/layout.h"
#include "src/mem/memory.h"

namespace trustlite {
namespace {

constexpr uint32_t kOrigin = 0x1000;

class CpuTest : public ::testing::Test {
 protected:
  CpuTest() : ram_("ram", 0, 0x2'0000), sysctl_(kSysCtlBase) {
    bus_.Attach(&ram_);
    bus_.Attach(&sysctl_);
    CpuConfig config;
    cpu_ = std::make_unique<Cpu>(&bus_, &sysctl_, config);
  }

  // Assembles at kOrigin, loads, resets the CPU there and runs to halt.
  void RunProgram(const std::string& source, uint64_t max_instructions = 10000) {
    Result<AsmOutput> out = Assemble(source, kOrigin);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    uint32_t base = 0;
    const std::vector<uint8_t> image = out->Flatten(&base);
    ram_.LoadBytes(base, image);
    cpu_->Reset(kOrigin);
    cpu_->Run(max_instructions);
  }

  Bus bus_;
  Ram ram_;
  SysCtl sysctl_;
  std::unique_ptr<Cpu> cpu_;
};

TEST_F(CpuTest, MoviAndHalt) {
  RunProgram("movi r1, 42\nhalt\n");
  EXPECT_TRUE(cpu_->halted());
  EXPECT_FALSE(cpu_->trap().valid);
  EXPECT_EQ(cpu_->reg(1), 42u);
  EXPECT_EQ(cpu_->stats().instructions, 2u);
}

TEST_F(CpuTest, AluOperations) {
  RunProgram(R"(
    movi r1, 21
    movi r2, 2
    mul  r3, r1, r2        ; 42
    add  r4, r3, r2        ; 44
    sub  r5, r3, r1        ; 21
    and  r6, r3, r2        ; 2
    or   r7, r1, r2        ; 23
    xor  r8, r1, r1        ; 0
    shl  r9, r2, r2        ; 8
    movi r10, -8
    sra  r11, r10, r2      ; -2
    shr  r12, r10, r2      ; big positive
    slt  r0, r10, r2       ; 1 (signed)
    sltu r15, r10, r2      ; 0 (unsigned: -8 is huge)
    halt
)");
  EXPECT_EQ(cpu_->reg(3), 42u);
  EXPECT_EQ(cpu_->reg(4), 44u);
  EXPECT_EQ(cpu_->reg(5), 21u);
  EXPECT_EQ(cpu_->reg(6), 2u);
  EXPECT_EQ(cpu_->reg(7), 23u);
  EXPECT_EQ(cpu_->reg(8), 0u);
  EXPECT_EQ(cpu_->reg(9), 8u);
  EXPECT_EQ(cpu_->reg(11), static_cast<uint32_t>(-2));
  EXPECT_EQ(cpu_->reg(12), 0x3FFFFFFEu);
  EXPECT_EQ(cpu_->reg(0), 1u);
  EXPECT_EQ(cpu_->reg(15), 0u);
}

TEST_F(CpuTest, ImmediateOperations) {
  RunProgram(R"(
    movi r1, 0x155
    andi r2, r1, 0x0F0
    ori  r3, r1, 0x00A
    xori r4, r1, 0x155
    shli r5, r1, 4
    shri r6, r1, 4
    movi r7, -16
    srai r8, r7, 2
    halt
)");
  EXPECT_EQ(cpu_->reg(2), 0x50u);
  EXPECT_EQ(cpu_->reg(3), 0x15Fu);
  EXPECT_EQ(cpu_->reg(4), 0u);
  EXPECT_EQ(cpu_->reg(5), 0x1550u);
  EXPECT_EQ(cpu_->reg(6), 0x15u);
  EXPECT_EQ(cpu_->reg(8), static_cast<uint32_t>(-4));
}

TEST_F(CpuTest, LuiOriBuilds32BitConstant) {
  RunProgram("li r1, 0xDEADBEEF\nhalt\n");
  EXPECT_EQ(cpu_->reg(1), 0xDEADBEEFu);
}

TEST_F(CpuTest, LoadStoreWordAndByte) {
  RunProgram(R"(
    li  r1, 0x8000
    li  r2, 0x11223344
    stw r2, [r1]
    ldw r3, [r1]
    ldb r4, [r1 + 1]
    movi r5, 0xFF
    stb r5, [r1 + 2]
    ldw r6, [r1]
    halt
)");
  EXPECT_EQ(cpu_->reg(3), 0x11223344u);
  EXPECT_EQ(cpu_->reg(4), 0x33u);
  EXPECT_EQ(cpu_->reg(6), 0x11FF3344u);
}

TEST_F(CpuTest, BranchesTakenAndNotTaken) {
  RunProgram(R"(
    movi r1, 5
    movi r2, 5
    movi r3, 0
    beq  r1, r2, eq_taken
    movi r3, 99
eq_taken:
    movi r4, -1
    movi r5, 1
    blt  r4, r5, signed_ok      ; -1 < 1 signed
    halt
signed_ok:
    bltu r5, r4, unsigned_ok    ; 1 < 0xFFFFFFFF unsigned
    halt
unsigned_ok:
    movi r6, 123
    halt
)");
  EXPECT_EQ(cpu_->reg(3), 0u);
  EXPECT_EQ(cpu_->reg(6), 123u);
}

TEST_F(CpuTest, JalAndRet) {
  RunProgram(R"(
    movi r1, 1
    call sub
    movi r3, 3
    halt
sub:
    movi r2, 2
    ret
)");
  EXPECT_EQ(cpu_->reg(1), 1u);
  EXPECT_EQ(cpu_->reg(2), 2u);
  EXPECT_EQ(cpu_->reg(3), 3u);
}

TEST_F(CpuTest, JalrJumpsViaRegister) {
  RunProgram(R"(
    la   r1, target
    jalr r1
    halt
target:
    movi r2, 77
    halt
)");
  EXPECT_EQ(cpu_->reg(2), 77u);
  // lr points after the jalr.
  EXPECT_EQ(cpu_->reg(kRegLr), kOrigin + 12u);
}

TEST_F(CpuTest, PushPopStack) {
  RunProgram(R"(
    li  r13, 0x9000
    movi r1, 11
    movi r2, 22
    push r1
    push r2
    pop r3
    pop r4
    halt
)");
  EXPECT_EQ(cpu_->reg(3), 22u);
  EXPECT_EQ(cpu_->reg(4), 11u);
  EXPECT_EQ(cpu_->reg(kRegSp), 0x9000u);
}

TEST_F(CpuTest, CycleCosts) {
  // movi(1) + movi(1) + mul(3) + ldw(2) + taken jmp(2) + halt(1) ... verify
  // the cycle model end to end.
  RunProgram(R"(
    movi r1, 1
    li   r2, 0x8000
    mul  r3, r1, r1
    ldw  r4, [r2]
    jmp  end
    nop
end:
    halt
)");
  // li expands to a single movi here? 0x8000 fits imm18 -> movi (1 insn).
  // cycles: 1 + 1 + 3 + 2 + 2 + 1 = 10.
  EXPECT_EQ(cpu_->cycles(), 10u);
}

TEST_F(CpuTest, BranchNotTakenCostsOneCycle) {
  RunProgram(R"(
    movi r1, 1
    movi r2, 2
    beq  r1, r2, skip     ; not taken
skip:
    halt
)");
  EXPECT_EQ(cpu_->cycles(), 4u);
}

TEST_F(CpuTest, CliStiToggleInterruptFlag) {
  RunProgram("sti\nhalt\n");
  EXPECT_EQ(cpu_->flags() & kFlagIf, kFlagIf);
  RunProgram("sti\ncli\nhalt\n");
  EXPECT_EQ(cpu_->flags() & kFlagIf, 0u);
}

TEST_F(CpuTest, UnhandledIllegalInstructionHalts) {
  // Opcode 63 is undefined; no handler installed -> trap.
  const uint32_t bad = 63u << 26;
  ram_.LoadBytes(kOrigin, {static_cast<uint8_t>(bad), static_cast<uint8_t>(bad >> 8),
                           static_cast<uint8_t>(bad >> 16),
                           static_cast<uint8_t>(bad >> 24)});
  cpu_->Reset(kOrigin);
  cpu_->Run(10);
  EXPECT_TRUE(cpu_->halted());
  ASSERT_TRUE(cpu_->trap().valid);
  EXPECT_EQ(cpu_->trap().exception_class, kExcIllegal);
}

TEST_F(CpuTest, UnhandledBusErrorHalts) {
  RunProgram(R"(
    li  r1, 0xE0000000
    ldw r2, [r1]
    halt
)");
  EXPECT_TRUE(cpu_->halted());
  ASSERT_TRUE(cpu_->trap().valid);
  EXPECT_EQ(cpu_->trap().exception_class, kExcBusError);
  EXPECT_EQ(cpu_->trap().addr, 0xE0000000u);
}

TEST_F(CpuTest, UnhandledAlignmentFaultHalts) {
  RunProgram(R"(
    movi r1, 0x8001
    ldw r2, [r1]
    halt
)");
  EXPECT_TRUE(cpu_->halted());
  ASSERT_TRUE(cpu_->trap().valid);
  EXPECT_EQ(cpu_->trap().exception_class, kExcAlign);
}

TEST_F(CpuTest, SwiVectorsThroughSysCtlAndResumesAfter) {
  RunProgram(R"(
    ; install SWI0 handler
    li  r1, 0xF0000000
    la  r2, handler
    stw r2, [r1 + 32]          ; handler slot 8 = SWI 0
    li  sp, 0x9000
    movi r3, 0
    swi 0
    movi r4, 44                ; resumes here after iret
    halt
handler:
    movi r3, 33
    addi sp, sp, 4             ; pop error code
    iret
)");
  EXPECT_TRUE(cpu_->halted());
  EXPECT_FALSE(cpu_->trap().valid) << cpu_->trap().reason;
  EXPECT_EQ(cpu_->reg(3), 33u);
  EXPECT_EQ(cpu_->reg(4), 44u);
}

TEST_F(CpuTest, RegularExceptionEntryCostIs21Cycles) {
  RunProgram(R"(
    li  r1, 0xF0000000
    la  r2, handler
    stw r2, [r1 + 32]
    li  sp, 0x9000
    swi 0
    halt
handler:
    halt
)");
  // Without an MPU attached there is no secure-engine detect overhead.
  EXPECT_EQ(cpu_->last_exception_entry_cycles(), 21u);
}

TEST_F(CpuTest, ExceptionFramePushedOnCurrentStack) {
  RunProgram(R"(
    li  r1, 0xF0000000
    la  r2, handler
    stw r2, [r1 + 40]      ; handler slot 10 = SWI 2
    li  sp, 0x9000
    sti
swi_site:
    swi 2
    halt
handler:
    ldw r5, [sp + 0]       ; error code
    ldw r6, [sp + 4]       ; resume ip
    ldw r7, [sp + 8]       ; saved flags
    la  r8, swi_site
    halt
)");
  EXPECT_EQ(cpu_->reg(5), kExcSwiBase + 2u);
  // SWIs resume after the trapping instruction.
  EXPECT_EQ(cpu_->reg(6), cpu_->reg(8) + 4u);
  EXPECT_EQ(cpu_->reg(7) & kFlagIf, kFlagIf);  // Saved flags had IF set.
  EXPECT_EQ(cpu_->flags() & kFlagIf, 0u);      // Cleared on entry.
}

TEST_F(CpuTest, StatsCountInstructionAndExceptions) {
  RunProgram(R"(
    li  r1, 0xF0000000
    la  r2, handler
    stw r2, [r1 + 32]
    li  sp, 0x9000
    swi 0
    halt
handler:
    addi sp, sp, 4
    iret
)");
  EXPECT_EQ(cpu_->stats().exceptions, 1u);
  EXPECT_GE(cpu_->stats().instructions, 7u);
}

TEST_F(CpuTest, SysCtlCycleCounterAdvances) {
  RunProgram(R"(
    li  r1, 0xF0000000
    ldw r2, [r1 + 0x44]    ; CYCLES_LO
    nop
    nop
    nop
    ldw r3, [r1 + 0x44]
    sub r4, r3, r2
    halt
)");
  // Three nops (1 cycle each) plus the second load's own cost separate the
  // two samples; the counter must have advanced by at least 3.
  EXPECT_GE(cpu_->reg(4), 3u);
  EXPECT_TRUE(cpu_->halted());
  EXPECT_FALSE(cpu_->trap().valid);
}

TEST_F(CpuTest, SancusOpcodesIllegalWithoutHook) {
  RunProgram("unprotect\nhalt\n");
  EXPECT_TRUE(cpu_->trap().valid);
  EXPECT_EQ(cpu_->trap().exception_class, kExcIllegal);
}

TEST_F(CpuTest, SancusHookIntercepts) {
  cpu_->SetSancusHook([](const Instruction& insn, Cpu* cpu) {
    if (insn.opcode == Opcode::kAttest) {
      cpu->set_reg(insn.rd, 0x5AFE);
      return true;
    }
    return false;
  });
  RunProgram("attest r3, r1\nhalt\n");
  EXPECT_FALSE(cpu_->trap().valid);
  EXPECT_EQ(cpu_->reg(3), 0x5AFEu);
}

TEST_F(CpuTest, RunWatchdogStopsInfiniteLoop) {
  RunProgram("loop: jmp loop\n", /*max_instructions=*/100);
  EXPECT_FALSE(cpu_->halted());  // Not halted, just out of budget.
  EXPECT_GE(cpu_->stats().instructions, 100u);
}

}  // namespace
}  // namespace trustlite
