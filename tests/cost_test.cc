// Copyright 2026 The TrustLite Reproduction Authors.
// Hardware cost model tests: Table 1 constants, derived quantities the paper
// states in prose (SMART-like instantiation, fixed/per-module ratios,
// Figure 7 crossovers), and the structural estimator's plausibility.

#include "src/cost/hw_cost.h"

#include <gtest/gtest.h>

namespace trustlite {
namespace {

TEST(HwCostTest, Table1Constants) {
  EXPECT_EQ(kTrustLiteBaseCore, (HwCost{5528, 14361}));
  EXPECT_EQ(kTrustLiteExtensionBase, (HwCost{278, 417}));
  EXPECT_EQ(kTrustLitePerModule, (HwCost{116, 182}));
  EXPECT_EQ(kTrustLiteExceptionsBase, (HwCost{34, 22}));
  EXPECT_EQ(kSancusBaseCore, (HwCost{998, 2322}));
  EXPECT_EQ(kSancusExtensionBase, (HwCost{586, 1138}));
  EXPECT_EQ(kSancusPerModule, (HwCost{213, 307}));
}

TEST(HwCostTest, SmartLikeInstantiationMatchesSec53) {
  // Sec. 5.3: "a hardware overhead of only 394 slice registers and 599
  // slice LUTs".
  const HwCost cost = SmartLikeInstantiationCost();
  EXPECT_EQ(cost.regs, 394);
  EXPECT_EQ(cost.luts, 599);
}

TEST(HwCostTest, FixedCostRatioAboutHalfOfSancus) {
  // Sec. 5.2: "TrustLite's fixed costs are 50% of Sancus".
  const double ratio =
      static_cast<double>(TrustLiteExtensionCost(0, false).slices()) /
      SancusExtensionCost(0).slices();
  EXPECT_GT(ratio, 0.35);
  EXPECT_LT(ratio, 0.55);
}

TEST(HwCostTest, PerModuleCostRoughly40PercentLess) {
  // Sec. 5.2: "the per module cost is roughly 40% less".
  const double tl = kTrustLitePerModule.slices();
  const double sancus = kSancusPerModule.slices();
  EXPECT_NEAR(1.0 - tl / sancus, 0.40, 0.06);
}

TEST(HwCostTest, Fig7CrossoverSancusNineTrustLiteTwenty) {
  // Sec. 5.2 / Fig. 7: at twice the openMSP430 core size Sancus fits only
  // ~9 protected modules where TrustLite supports ~20.
  const int budget = 2 * OpenMsp430BaseSlices();
  EXPECT_EQ(MaxModulesWithinBudget(budget, /*sancus=*/true), 9);
  EXPECT_EQ(MaxModulesWithinBudget(budget, /*sancus=*/false), 19);
  // With exceptions the count drops only slightly (the "slightly increased
  // cost" visible between the two TrustLite curves).
  const int with_exc = MaxModulesWithinBudget(budget, false, true);
  EXPECT_GE(with_exc, 17);
  EXPECT_LE(with_exc, 19);
}

TEST(HwCostTest, Fig7SeriesShape) {
  const std::vector<Fig7Row> series = Fig7Series(32);
  ASSERT_EQ(series.size(), 33u);
  // Monotone growth, Sancus always above TrustLite with the gap widening.
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].trustlite, series[i - 1].trustlite);
    EXPECT_GT(series[i].sancus, series[i - 1].sancus);
    EXPECT_GT(series[i].sancus - series[i].trustlite,
              series[i - 1].sancus - series[i - 1].trustlite);
    EXPECT_GE(series[i].trustlite_exc, series[i].trustlite);
  }
  // Despite the 32-bit address space, TrustLite stays around half of Sancus
  // in total overhead at every design point (abstract: "only about half").
  for (int n : {4, 8, 16, 32}) {
    const double ratio = static_cast<double>(series[static_cast<size_t>(n)].trustlite) /
                         series[static_cast<size_t>(n)].sancus;
    EXPECT_LT(ratio, 0.62) << n;
    EXPECT_GT(ratio, 0.40) << n;
  }
  EXPECT_EQ(series[0].msp430_200, 2 * series[0].msp430_base);
  EXPECT_EQ(series[0].msp430_400, 4 * series[0].msp430_base);
}

TEST(HwCostTest, KeyCacheDominatesSancusModuleRegisters) {
  // Sec. 5.2: the 128-bit cached MAC key "accounts for a significant
  // portion of the register cost" per Sancus module.
  EXPECT_GT(kSancusKeyCacheRegsPerModule, kSancusPerModule.regs / 2);
  const HwCost no_cache = SancusExtensionCostNoKeyCache(10);
  const HwCost cached = SancusExtensionCost(10);
  EXPECT_EQ(cached.regs - no_cache.regs, 128 * 10);
}

TEST(HwCostTest, StructuralEstimatorSameOrderAsPublished) {
  // Two regions per module; published per-module cost 116 regs / 182 LUTs.
  const EaMpuEstimate est = EstimateEaMpu(32, /*with_sp_slot=*/false);
  const HwCost per_module = est.per_region * kMpuRegionsPerModule;
  EXPECT_GT(per_module.regs, kTrustLitePerModule.regs / 2);
  EXPECT_LT(per_module.regs, kTrustLitePerModule.regs * 2);
  EXPECT_GT(per_module.luts, kTrustLitePerModule.luts / 3);
  EXPECT_LT(per_module.luts, kTrustLitePerModule.luts * 3);
  // 16-bit datapath halves the dominant (register) term, consistent with
  // the paper's ~50% scaling claim.
  const EaMpuEstimate est16 = EstimateEaMpu(16, false);
  const double scale = static_cast<double>(est16.per_region.regs) /
                       est.per_region.regs;
  EXPECT_NEAR(scale, kDatapathScaleTo16Bit, 0.1);
}

TEST(HwCostTest, RenderTable1ContainsAllRows) {
  const std::string table = RenderTable1();
  EXPECT_NE(table.find("Base Core Size"), std::string::npos);
  EXPECT_NE(table.find("5528"), std::string::npos);
  EXPECT_NE(table.find("14361"), std::string::npos);
  EXPECT_NE(table.find("Exceptions Base Cost"), std::string::npos);
  EXPECT_NE(table.find("2322"), std::string::npos);
}

}  // namespace
}  // namespace trustlite
