// Copyright 2026 The TrustLite Reproduction Authors.
//
// Direct reproduction of paper **Figure 3**: the example memory protection
// table with subjects TL-A, TL-B, OS and objects {entry, code, data, stack}
// of each party plus the MPU and Timer peripheral registers. The EA-MPU is
// programmed to express exactly that matrix, and every cell is checked.
//
//   Object \ Subject          TL-A   TL-B   OS
//   TL-A entry                rx     rx(e)  rx(e)
//   TL-A code                 rx     r      r
//   TL-B entry                rx(e)  rx     rx(e)
//   TL-B code                 r      rx     r
//   OS entry                  rx(e)  rx(e)  rx
//   OS code                   r      r      rx
//   TL-A data/stack           rw     -      -
//   TL-B data/stack           -      rw     -
//   OS data/stack             -      -      rw
//   MPU flags/regions         r      r      rw*
//   Timer period/handler      r      r      rw
//
//   (e): execute admitted only at the entry vector (first word).
//   *: the CTRL hardware lock still protects everything but FAULT_INFO.

#include <gtest/gtest.h>

#include "src/mem/layout.h"
#include "src/mem/memory.h"
#include "src/mpu/ea_mpu.h"

namespace trustlite {
namespace {

// Region indices and layout mirroring the figure's address column.
constexpr uint32_t kACode = 0x0001'0000;   // "0x00.." rows
constexpr uint32_t kACodeEnd = 0x0001'0400;
constexpr uint32_t kBCode = 0x0001'1000;   // "0x0A.." rows
constexpr uint32_t kBCodeEnd = 0x0001'1400;
constexpr uint32_t kOsCode = 0x0001'2000;  // "0x0B.." rows
constexpr uint32_t kOsCodeEnd = 0x0001'2400;
constexpr uint32_t kAData = 0x0002'0000;   // "0x10.." data+stack
constexpr uint32_t kADataEnd = 0x0002'0800;
constexpr uint32_t kBData = 0x0002'1000;   // "0x1A.."
constexpr uint32_t kBDataEnd = 0x0002'1800;
constexpr uint32_t kOsData = 0x0002'2000;  // "0x1B.."
constexpr uint32_t kOsDataEnd = 0x0002'2800;

constexpr int kRegA = 0;
constexpr int kRegB = 1;
constexpr int kRegOs = 2;
constexpr int kRegAData = 3;
constexpr int kRegBData = 4;
constexpr int kRegOsData = 5;
constexpr int kRegMpu = 6;
constexpr int kRegTimer = 7;

class Fig3MatrixTest : public ::testing::Test {
 protected:
  Fig3MatrixTest() : mpu_(kMpuMmioBase, 16, 48) {
    int rule = 0;
    auto region = [&](int i, uint32_t base, uint32_t end, uint32_t attr) {
      mpu_.Write(kMpuRegionBank + static_cast<uint32_t>(i) * kMpuRegionStride,
                 4, base);
      mpu_.Write(
          kMpuRegionBank + static_cast<uint32_t>(i) * kMpuRegionStride + 4, 4,
          end);
      mpu_.Write(
          kMpuRegionBank + static_cast<uint32_t>(i) * kMpuRegionStride + 8, 4,
          attr);
    };
    auto add = [&](uint32_t subject, uint32_t object, bool r, bool w, bool x) {
      mpu_.Write(kMpuRuleBank + static_cast<uint32_t>(rule++) * 4, 4,
                 EncodeMpuRule(subject, object, r, w, x));
    };
    region(kRegA, kACode, kACodeEnd, kMpuAttrEnable | kMpuAttrCode);
    region(kRegB, kBCode, kBCodeEnd, kMpuAttrEnable | kMpuAttrCode);
    region(kRegOs, kOsCode, kOsCodeEnd,
           kMpuAttrEnable | kMpuAttrCode | kMpuAttrOs);
    region(kRegAData, kAData, kADataEnd, kMpuAttrEnable);
    region(kRegBData, kBData, kBDataEnd, kMpuAttrEnable);
    region(kRegOsData, kOsData, kOsDataEnd, kMpuAttrEnable);
    region(kRegMpu, kMpuMmioBase, kMpuMmioBase + kMmioBlockSize,
           kMpuAttrEnable);
    region(kRegTimer, kTimerBase, kTimerBase + kMmioBlockSize, kMpuAttrEnable);

    // Code columns: self full rx; everyone else r + entry-only x.
    for (const int code : {kRegA, kRegB, kRegOs}) {
      add(static_cast<uint32_t>(code), static_cast<uint32_t>(code), true,
          false, true);
      add(kMpuSubjectAny, static_cast<uint32_t>(code), true, false, true);
    }
    // Data/stack: private rw.
    add(kRegA, kRegAData, true, true, false);
    add(kRegB, kRegBData, true, true, false);
    add(kRegOs, kRegOsData, true, true, false);
    // Peripherals per the figure: everyone may read the MPU registers, only
    // the OS writes them; the OS owns the timer, others may read it.
    add(kMpuSubjectAny, kRegMpu, true, false, false);
    add(kRegOs, kRegMpu, true, true, false);
    add(kMpuSubjectAny, kRegTimer, true, false, false);
    add(kRegOs, kRegTimer, true, true, false);
    mpu_.Write(kMpuRegCtrl, 4, kMpuCtrlEnable);
  }

  bool Allowed(uint32_t subject_ip, AccessKind kind, uint32_t addr) {
    AccessContext ctx;
    ctx.curr_ip = subject_ip;
    ctx.kind = kind;
    return mpu_.Check(ctx, addr, 4) == AccessResult::kOk;
  }

  EaMpu mpu_;
};

struct Subject {
  const char* name;
  uint32_t ip;  // Somewhere inside the subject's code region.
};

const Subject kSubjects[] = {
    {"TL-A", kACode + 0x40}, {"TL-B", kBCode + 0x40}, {"OS", kOsCode + 0x40}};

TEST_F(Fig3MatrixTest, CodeColumns) {
  struct CodeObject {
    uint32_t base;
    uint32_t body;  // A non-entry address.
    int owner;      // Index into kSubjects.
  };
  const CodeObject objects[] = {{kACode, kACode + 0x20, 0},
                                {kBCode, kBCode + 0x20, 1},
                                {kOsCode, kOsCode + 0x20, 2}};
  for (int s = 0; s < 3; ++s) {
    for (const CodeObject& object : objects) {
      const bool owner = (s == object.owner);
      // Everyone reads every code region ("r" throughout the figure).
      EXPECT_TRUE(Allowed(kSubjects[s].ip, AccessKind::kRead, object.body))
          << kSubjects[s].name;
      // Nobody writes code.
      EXPECT_FALSE(Allowed(kSubjects[s].ip, AccessKind::kWrite, object.body))
          << kSubjects[s].name;
      // Entry vector executable by all; body only by the owner.
      EXPECT_TRUE(Allowed(kSubjects[s].ip, AccessKind::kFetch, object.base))
          << kSubjects[s].name;
      EXPECT_EQ(Allowed(kSubjects[s].ip, AccessKind::kFetch, object.body),
                owner)
          << kSubjects[s].name;
    }
  }
}

TEST_F(Fig3MatrixTest, DataColumnsArePrivate) {
  const uint32_t data_objects[] = {kAData + 0x10, kBData + 0x10,
                                   kOsData + 0x10};
  for (int s = 0; s < 3; ++s) {
    for (int o = 0; o < 3; ++o) {
      const bool owner = (s == o);
      EXPECT_EQ(Allowed(kSubjects[s].ip, AccessKind::kRead, data_objects[o]),
                owner)
          << kSubjects[s].name << " -> data " << o;
      EXPECT_EQ(Allowed(kSubjects[s].ip, AccessKind::kWrite, data_objects[o]),
                owner)
          << kSubjects[s].name << " -> data " << o;
      // Stacks (top half of the data regions) behave identically.
      EXPECT_EQ(Allowed(kSubjects[s].ip, AccessKind::kWrite,
                        data_objects[o] + 0x400),
                owner)
          << kSubjects[s].name << " -> stack " << o;
      // Data is never executable.
      EXPECT_FALSE(Allowed(kSubjects[s].ip, AccessKind::kFetch,
                           data_objects[o]))
          << kSubjects[s].name;
    }
  }
}

TEST_F(Fig3MatrixTest, PeripheralColumns) {
  const uint32_t mpu_flags = kMpuMmioBase + kMpuRegCtrl;
  const uint32_t mpu_regions = kMpuMmioBase + kMpuRegionBank;
  const uint32_t timer_period = kTimerBase + 0x04;
  const uint32_t timer_handler = kTimerBase + 0x0C;
  for (int s = 0; s < 3; ++s) {
    const bool is_os = (s == 2);
    for (const uint32_t addr :
         {mpu_flags, mpu_regions, timer_period, timer_handler}) {
      EXPECT_TRUE(Allowed(kSubjects[s].ip, AccessKind::kRead, addr))
          << kSubjects[s].name;
      EXPECT_EQ(Allowed(kSubjects[s].ip, AccessKind::kWrite, addr), is_os)
          << kSubjects[s].name << " write " << addr;
    }
  }
}

TEST_F(Fig3MatrixTest, UnprotectedSubjectIsConfinedTheSameWay) {
  // Code running outside every region (e.g. a rogue app) gets the ANY rules
  // only: read code, execute entries, read peripherals — nothing else.
  const uint32_t rogue = 0x0003'0000;
  EXPECT_TRUE(Allowed(rogue, AccessKind::kRead, kACode + 8));
  EXPECT_TRUE(Allowed(rogue, AccessKind::kFetch, kBCode));
  EXPECT_FALSE(Allowed(rogue, AccessKind::kFetch, kBCode + 8));
  EXPECT_FALSE(Allowed(rogue, AccessKind::kRead, kAData));
  EXPECT_FALSE(Allowed(rogue, AccessKind::kWrite, kTimerBase + 4));
  EXPECT_TRUE(Allowed(rogue, AccessKind::kRead, kMpuMmioBase));
}

}  // namespace
}  // namespace trustlite
