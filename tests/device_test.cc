// Copyright 2026 The TrustLite Reproduction Authors.
// Peripheral model tests: timer, UART, SHA accelerator, TRNG, GPIO, SysCtl.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/crypto/sha256.h"
#include "src/dev/gpio.h"
#include "src/dev/sha_accel.h"
#include "src/dev/sysctl.h"
#include "src/dev/timer.h"
#include "src/dev/trng.h"
#include "src/dev/uart.h"
#include "src/mem/layout.h"

namespace trustlite {
namespace {

uint32_t Rd(Device& dev, uint32_t offset) {
  uint32_t value = 0;
  EXPECT_EQ(dev.Read(offset, 4, &value), AccessResult::kOk) << offset;
  return value;
}

void Wr(Device& dev, uint32_t offset, uint32_t value) {
  EXPECT_EQ(dev.Write(offset, 4, value), AccessResult::kOk) << offset;
}

TEST(TimerTest, OneShotCountdownAndIrq) {
  Timer timer(kTimerBase, 0);
  Wr(timer, kTimerRegPeriod, 100);
  Wr(timer, kTimerRegHandler, 0x1234);
  Wr(timer, kTimerRegCtrl, kTimerCtrlEnable | kTimerCtrlIrqEnable);
  EXPECT_FALSE(timer.IrqPending());
  timer.Tick(60);
  EXPECT_FALSE(timer.IrqPending());
  EXPECT_EQ(Rd(timer, kTimerRegCount), 40u);
  timer.Tick(40);
  EXPECT_TRUE(timer.IrqPending());
  EXPECT_EQ(timer.IrqHandler(), 0x1234u);
  // One-shot: disabled after firing.
  EXPECT_EQ(Rd(timer, kTimerRegCtrl) & kTimerCtrlEnable, 0u);
  timer.IrqAck();
  EXPECT_FALSE(timer.IrqPending());
  EXPECT_EQ(timer.fire_count(), 1u);
}

TEST(TimerTest, AutoReloadFiresRepeatedly) {
  Timer timer(kTimerBase, 0);
  Wr(timer, kTimerRegPeriod, 10);
  Wr(timer, kTimerRegCtrl,
     kTimerCtrlEnable | kTimerCtrlIrqEnable | kTimerCtrlAutoReload);
  timer.Tick(35);  // Should fire 3 times.
  EXPECT_EQ(timer.fire_count(), 3u);
  EXPECT_TRUE(timer.IrqPending());
  EXPECT_EQ(Rd(timer, kTimerRegCount), 5u);
}

TEST(TimerTest, IrqMaskedWithoutIrqEnable) {
  Timer timer(kTimerBase, 0);
  Wr(timer, kTimerRegPeriod, 10);
  Wr(timer, kTimerRegCtrl, kTimerCtrlEnable);
  timer.Tick(20);
  EXPECT_EQ(timer.fire_count(), 1u);
  EXPECT_FALSE(timer.IrqPending());  // Pending but masked.
  EXPECT_EQ(Rd(timer, kTimerRegStatus), 1u);
}

TEST(TimerTest, StatusWriteClearsPending) {
  Timer timer(kTimerBase, 0);
  Wr(timer, kTimerRegPeriod, 5);
  Wr(timer, kTimerRegCtrl, kTimerCtrlEnable | kTimerCtrlIrqEnable);
  timer.Tick(5);
  EXPECT_TRUE(timer.IrqPending());
  Wr(timer, kTimerRegStatus, 1);
  EXPECT_FALSE(timer.IrqPending());
}

TEST(TimerTest, ResetClearsState) {
  Timer timer(kTimerBase, 0);
  Wr(timer, kTimerRegPeriod, 5);
  Wr(timer, kTimerRegCtrl, kTimerCtrlEnable);
  timer.Tick(5);
  timer.Reset();
  EXPECT_EQ(Rd(timer, kTimerRegPeriod), 0u);
  EXPECT_EQ(timer.fire_count(), 0u);
}

TEST(UartTest, OutputCapture) {
  Uart uart(kUartBase);
  for (const char c : std::string("hi!\n")) {
    Wr(uart, kUartRegTxData, static_cast<uint32_t>(c));
  }
  EXPECT_EQ(uart.output(), "hi!\n");
  uart.ClearOutput();
  EXPECT_TRUE(uart.output().empty());
}

TEST(UartTest, InputQueue) {
  Uart uart(kUartBase);
  EXPECT_EQ(Rd(uart, kUartRegRxCount), 0u);
  EXPECT_EQ(Rd(uart, kUartRegRxData), 0u);  // Empty: returns 0.
  uart.PushInput("ab");
  EXPECT_EQ(Rd(uart, kUartRegRxCount), 2u);
  EXPECT_EQ(Rd(uart, kUartRegStatus) & 2u, 2u);
  EXPECT_EQ(Rd(uart, kUartRegRxData), static_cast<uint32_t>('a'));
  EXPECT_EQ(Rd(uart, kUartRegRxData), static_cast<uint32_t>('b'));
  EXPECT_EQ(Rd(uart, kUartRegRxCount), 0u);
}

TEST(ShaAccelTest, MatchesSoftwareSha256) {
  ShaAccel sha(kShaBase);
  const std::string msg = "abc";
  Wr(sha, kShaRegCtrl, kShaCtrlInit);
  for (const char c : msg) {
    Wr(sha, kShaRegByteIn, static_cast<uint32_t>(c));
  }
  Wr(sha, kShaRegCtrl, kShaCtrlFinalize);
  EXPECT_EQ(Rd(sha, kShaRegStatus), 1u);

  const Sha256Digest expected =
      Sha256Hash(std::vector<uint8_t>(msg.begin(), msg.end()));
  for (int i = 0; i < 8; ++i) {
    const uint32_t word = Rd(sha, kShaRegDigest + 4 * i);
    const uint32_t expected_word =
        (static_cast<uint32_t>(expected[i * 4]) << 24) |
        (static_cast<uint32_t>(expected[i * 4 + 1]) << 16) |
        (static_cast<uint32_t>(expected[i * 4 + 2]) << 8) |
        static_cast<uint32_t>(expected[i * 4 + 3]);
    EXPECT_EQ(word, expected_word) << i;
  }
}

TEST(ShaAccelTest, WordInputLittleEndian) {
  ShaAccel sha(kShaBase);
  Wr(sha, kShaRegCtrl, kShaCtrlInit);
  // "abcd" as a little-endian word.
  Wr(sha, kShaRegDataIn, 0x64636261);
  Wr(sha, kShaRegCtrl, kShaCtrlFinalize);
  const Sha256Digest expected = Sha256Hash({'a', 'b', 'c', 'd'});
  const uint32_t word0 = Rd(sha, kShaRegDigest);
  const uint32_t expected0 = (static_cast<uint32_t>(expected[0]) << 24) |
                             (static_cast<uint32_t>(expected[1]) << 16) |
                             (static_cast<uint32_t>(expected[2]) << 8) |
                             static_cast<uint32_t>(expected[3]);
  EXPECT_EQ(word0, expected0);
}

TEST(ShaAccelTest, InitResetsState) {
  ShaAccel sha(kShaBase);
  Wr(sha, kShaRegCtrl, kShaCtrlInit);
  Wr(sha, kShaRegByteIn, 'x');
  Wr(sha, kShaRegCtrl, kShaCtrlInit);  // Discard absorbed data.
  Wr(sha, kShaRegCtrl, kShaCtrlFinalize);
  const Sha256Digest empty = Sha256Hash(std::vector<uint8_t>{});
  const uint32_t word0 = Rd(sha, kShaRegDigest);
  const uint32_t expected0 = (static_cast<uint32_t>(empty[0]) << 24) |
                             (static_cast<uint32_t>(empty[1]) << 16) |
                             (static_cast<uint32_t>(empty[2]) << 8) |
                             static_cast<uint32_t>(empty[3]);
  EXPECT_EQ(word0, expected0);
}

TEST(TrngTest, StreamIsDeterministicPerSeed) {
  Trng a(kTrngBase, 1);
  Trng b(kTrngBase, 1);
  Trng c(kTrngBase, 2);
  const uint32_t a1 = Rd(a, kTrngRegValue);
  const uint32_t a2 = Rd(a, kTrngRegValue);
  EXPECT_NE(a1, a2);
  EXPECT_EQ(Rd(b, kTrngRegValue), a1);
  EXPECT_NE(Rd(c, kTrngRegValue), a1);
}

TEST(TrngTest, WriteRejected) {
  Trng trng(kTrngBase, 1);
  EXPECT_EQ(trng.Write(0, 4, 1), AccessResult::kBusError);
}

TEST(GpioTest, OutHistoryAndInput) {
  Gpio gpio(kGpioBase);
  Wr(gpio, kGpioRegOut, 0x1);
  Wr(gpio, kGpioRegOut, 0x3);
  EXPECT_EQ(gpio.out(), 0x3u);
  EXPECT_EQ(gpio.out_history().size(), 2u);
  gpio.SetIn(0x42);
  EXPECT_EQ(Rd(gpio, kGpioRegIn), 0x42u);
  Wr(gpio, kGpioRegIn, 0xFF);  // Guest write to IN is ignored.
  EXPECT_EQ(Rd(gpio, kGpioRegIn), 0x42u);
}

TEST(SysCtlTest, HandlerTable) {
  SysCtl sysctl(kSysCtlBase);
  Wr(sysctl, kSysCtlRegHandlerBase + 0, 0x100);
  Wr(sysctl, kSysCtlRegHandlerBase + 4 * 9, 0x200);
  EXPECT_EQ(sysctl.HandlerFor(ExceptionClass::kMpuFault), 0x100u);
  EXPECT_EQ(sysctl.HandlerFor(ExceptionClass::kSwiBase, 1), 0x200u);
  EXPECT_EQ(sysctl.HandlerFor(ExceptionClass::kIllegalInstruction), 0u);
}

TEST(SysCtlTest, CycleCounterAndReset) {
  SysCtl sysctl(kSysCtlBase);
  sysctl.Tick(100);
  EXPECT_EQ(Rd(sysctl, kSysCtlRegCyclesLo), 100u);
  EXPECT_EQ(Rd(sysctl, kSysCtlRegCyclesHi), 0u);
  EXPECT_FALSE(sysctl.reset_requested());
  Wr(sysctl, kSysCtlRegReset, 1);
  EXPECT_TRUE(sysctl.reset_requested());
  sysctl.Reset();
  EXPECT_FALSE(sysctl.reset_requested());
  // Counter survives reset (free-running).
  EXPECT_EQ(Rd(sysctl, kSysCtlRegCyclesLo), 100u);
  // Handlers cleared.
  EXPECT_EQ(sysctl.HandlerFor(ExceptionClass::kMpuFault), 0u);
}

TEST(SysCtlTest, ScratchRegister) {
  SysCtl sysctl(kSysCtlBase);
  Wr(sysctl, kSysCtlRegScratch, 0xABCD);
  EXPECT_EQ(Rd(sysctl, kSysCtlRegScratch), 0xABCDu);
}

}  // namespace
}  // namespace trustlite
