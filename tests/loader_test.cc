// Copyright 2026 The TrustLite Reproduction Authors.
// Secure Loader tests (Sec. 3.5 / Fig. 5): record discovery, code placement,
// SP-slot patching, initial-frame fabrication, measurement, Trustlet Table
// population, MPU programming/locking, write-cost accounting, secure boot,
// and region exhaustion.

#include "src/loader/secure_loader.h"

#include <gtest/gtest.h>

#include "src/crypto/sha256.h"
#include "src/isa/assembler.h"
#include "src/loader/system_image.h"
#include "src/os/nanos.h"
#include "src/platform/platform.h"
#include "src/trustlet/builder.h"
#include "src/trustlet/frame.h"
#include "src/trustlet/trustlet_table.h"

namespace trustlite {
namespace {

TrustletBuildSpec BasicSpec(const std::string& name, uint32_t code,
                            uint32_t data) {
  TrustletBuildSpec spec;
  spec.name = name;
  spec.code_addr = code;
  spec.data_addr = data;
  spec.data_size = 0x400;
  spec.stack_size = 0x100;
  spec.body = R"(
tl_main:
    movi r1, 1
spin:
    swi 0
    jmp spin
)";
  return spec;
}

class LoaderTest : public ::testing::Test {
 protected:
  void BuildImageWithTrustletAndOs() {
    Result<TrustletMeta> tl = BuildTrustlet(BasicSpec("TLA", 0x11000, 0x12000));
    ASSERT_TRUE(tl.ok()) << tl.status().ToString();
    image_.Add(*tl);
    NanosConfig os_config;
    Result<TrustletMeta> os = BuildNanos(os_config);
    ASSERT_TRUE(os.ok()) << os.status().ToString();
    image_.Add(*os);
    ASSERT_TRUE(platform_.InstallImage(image_).ok());
  }

  Platform platform_;
  SystemImage image_;
};

TEST_F(LoaderTest, BootLoadsTrustletsAndPopulatesTable) {
  BuildImageWithTrustletAndOs();
  Result<LoadReport> report = platform_.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report->trustlets.size(), 2u);
  EXPECT_EQ(report->os_id, MakeTrustletId("OS"));
  EXPECT_NE(report->os_entry, 0u);
  EXPECT_NE(report->os_sp, 0u);

  TrustletTableView table(&platform_.bus(), kTrustletTableBase);
  EXPECT_EQ(table.ReadRowCount(), 2u);
  const std::optional<int> tl_row = table.FindById(MakeTrustletId("TLA"));
  ASSERT_TRUE(tl_row.has_value());
  const std::optional<TrustletTableRow> row = table.ReadRow(*tl_row);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->code_base, 0x11000u);
  EXPECT_EQ(row->entry, 0x11000u);
  EXPECT_EQ(row->data_end, 0x12400u);
  // Initial saved SP points at a fabricated frame below the stack top.
  EXPECT_EQ(row->saved_sp, 0x12400u - kFrameSize);

  // The fabricated frame resumes at tl_main with interrupts enabled.
  const LoadedTrustlet* loaded = report->FindById(MakeTrustletId("TLA"));
  ASSERT_NE(loaded, nullptr);
  uint32_t frame_ip = 0;
  uint32_t frame_flags = 0;
  ASSERT_TRUE(platform_.bus().HostReadWord(row->saved_sp + kFrameOffsetIp,
                                           &frame_ip));
  ASSERT_TRUE(platform_.bus().HostReadWord(row->saved_sp + kFrameOffsetFlags,
                                           &frame_flags));
  EXPECT_EQ(frame_ip, loaded->meta.code_addr + loaded->meta.start_offset);
  EXPECT_EQ(frame_flags, kInitialTrustletFlags);
}

TEST_F(LoaderTest, SpSlotPatchedIntoCode) {
  BuildImageWithTrustletAndOs();
  Result<LoadReport> report = platform_.Boot();
  ASSERT_TRUE(report.ok());
  const LoadedTrustlet* loaded = report->FindById(MakeTrustletId("TLA"));
  ASSERT_NE(loaded, nullptr);
  uint32_t patched = 0;
  ASSERT_TRUE(platform_.bus().HostReadWord(
      loaded->meta.code_addr + loaded->meta.sp_slot_patch_offset, &patched));
  EXPECT_EQ(patched, loaded->sp_slot_addr);
  TrustletTableView table(&platform_.bus(), kTrustletTableBase);
  EXPECT_EQ(patched, table.SavedSpAddress(loaded->tt_index));
}

TEST_F(LoaderTest, MeasurementMatchesPlacedCode) {
  BuildImageWithTrustletAndOs();
  Result<LoadReport> report = platform_.Boot();
  ASSERT_TRUE(report.ok());
  const LoadedTrustlet* loaded = report->FindById(MakeTrustletId("TLA"));
  TrustletTableView table(&platform_.bus(), kTrustletTableBase);
  const std::optional<TrustletTableRow> row = table.ReadRow(loaded->tt_index);
  ASSERT_TRUE(row.has_value());
  // Measurement equals SHA-256 of the code as placed in RAM (which includes
  // the patched SP-slot word, *not* the PROM original).
  std::vector<uint8_t> placed;
  ASSERT_TRUE(platform_.bus().HostReadBytes(
      loaded->meta.code_addr, static_cast<uint32_t>(loaded->meta.code.size()),
      &placed));
  EXPECT_EQ(row->measurement, Sha256Hash(placed));
  // And differs from the unpatched PROM code (the slot pointer changed).
  EXPECT_NE(row->measurement, Sha256Hash(loaded->meta.code));
}

TEST_F(LoaderTest, MpuArmedAndLocked) {
  BuildImageWithTrustletAndOs();
  Result<LoadReport> report = platform_.Boot();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(platform_.mpu()->enabled());
  EXPECT_TRUE(platform_.mpu()->locked());
  // Guest writes to MPU regions are now ineffective.
  AccessContext ctx;
  ctx.curr_ip = report->os_entry;
  ctx.kind = AccessKind::kWrite;
  const uint32_t region0 = kMpuMmioBase + kMpuRegionBank;
  uint32_t before = 0;
  ASSERT_TRUE(platform_.bus().HostReadWord(region0, &before));
  platform_.bus().Write(ctx, region0, 4, 0xDEAD);
  uint32_t after = 0;
  ASSERT_TRUE(platform_.bus().HostReadWord(region0, &after));
  EXPECT_EQ(before, after);
}

TEST_F(LoaderTest, RegionAndRuleCostAccounting) {
  BuildImageWithTrustletAndOs();
  LoaderConfig config;
  Result<LoadReport> report = platform_.Boot(config);
  ASSERT_TRUE(report.ok());
  // Regions: TLA code+data, OS code+data, 2 OS peripheral grants
  // (timer, uart), Trustlet Table, MPU MMIO, SysCtl = 9.
  EXPECT_EQ(report->regions_used, 9);
  EXPECT_GT(report->rules_used, 8);
  // MPU write cost: CTRL clear + 3 per region + 1 SP slot per *code* region
  // (2 code regions) + 1 per rule + CTRL arm.
  const uint64_t expected =
      1 + 3ull * static_cast<uint64_t>(report->regions_used) + 2 +
      static_cast<uint64_t>(report->rules_used) + 1;
  EXPECT_EQ(report->mpu_register_writes, expected);
  EXPECT_GT(report->boot_cycles, 0u);
  EXPECT_GT(report->words_moved, 0u);
}

TEST_F(LoaderTest, WithoutSecureExceptionsNoSpSlotWrites) {
  BuildImageWithTrustletAndOs();
  LoaderConfig config;
  config.secure_exceptions = false;
  Result<LoadReport> report = platform_.Boot(config);
  ASSERT_TRUE(report.ok());
  const uint64_t expected =
      1 + 3ull * static_cast<uint64_t>(report->regions_used) +
      static_cast<uint64_t>(report->rules_used) + 1;
  EXPECT_EQ(report->mpu_register_writes, expected);
}

TEST_F(LoaderTest, UnprotectedProgramLoadedWithoutRegions) {
  Result<AsmOutput> app = Assemble("app:\n  jmp app\n", 0x00100000);
  ASSERT_TRUE(app.ok());
  uint32_t base = 0;
  image_.AddProgram(0x00100000, app->Flatten(&base));
  NanosConfig os_config;
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image_.Add(*os);
  ASSERT_TRUE(platform_.InstallImage(image_).ok());
  Result<LoadReport> report = platform_.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // App code was copied into DRAM.
  uint32_t word = 0;
  ASSERT_TRUE(platform_.bus().HostReadWord(0x00100000, &word));
  EXPECT_NE(word, 0u);
  // Only the OS occupies the table.
  TrustletTableView table(&platform_.bus(), kTrustletTableBase);
  EXPECT_EQ(table.ReadRowCount(), 1u);
}

TEST_F(LoaderTest, SharedGrantRegionsDeduplicated) {
  // Two trustlets requesting the same shared window use one region.
  TrustletBuildSpec a = BasicSpec("A", 0x11000, 0x12000);
  TrustletBuildSpec b = BasicSpec("B", 0x13000, 0x14000);
  const RegionGrant shared{0x15000, 0x15100, kGrantRead | kGrantWrite};
  a.grants.push_back(shared);
  b.grants.push_back(shared);
  Result<TrustletMeta> ta = BuildTrustlet(a);
  Result<TrustletMeta> tb = BuildTrustlet(b);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  image_.Add(*ta);
  image_.Add(*tb);
  NanosConfig os_config;
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image_.Add(*os);
  ASSERT_TRUE(platform_.InstallImage(image_).ok());
  Result<LoadReport> report = platform_.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Regions: 3x(code+data) + 1 shared + 2 OS grants + TT + MPU + SysCtl = 12.
  EXPECT_EQ(report->regions_used, 12);
}

TEST_F(LoaderTest, RegionExhaustionReported) {
  PlatformConfig config;
  config.mpu_regions = 4;  // Too few for trustlet + OS + platform regions.
  Platform small(config);
  SystemImage image;
  Result<TrustletMeta> tl = BuildTrustlet(BasicSpec("TLA", 0x11000, 0x12000));
  ASSERT_TRUE(tl.ok());
  image.Add(*tl);
  NanosConfig os_config;
  Result<TrustletMeta> os = BuildNanos(os_config);
  ASSERT_TRUE(os.ok());
  image.Add(*os);
  ASSERT_TRUE(small.InstallImage(image).ok());
  Result<LoadReport> report = small.Boot();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(LoaderTest, SecureBootAcceptsSignedRejectsTampered) {
  const std::vector<uint8_t> device_key(32, 0x42);
  TrustletBuildSpec spec = BasicSpec("SGN", 0x11000, 0x12000);
  spec.is_signed = true;
  Result<TrustletMeta> tl = BuildTrustlet(spec);
  ASSERT_TRUE(tl.ok());
  image_.Add(*tl);
  image_.SignAll(device_key);
  ASSERT_TRUE(platform_.InstallImage(image_).ok());

  LoaderConfig config;
  config.secure_boot = true;
  config.require_signatures = true;
  config.device_key = device_key;
  Result<LoadReport> report = platform_.Boot(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Tamper with one code byte in PROM: boot must fail.
  Platform tampered;
  SystemImage bad_image;
  Result<TrustletMeta> tl2 = BuildTrustlet(spec);
  ASSERT_TRUE(tl2.ok());
  bad_image.Add(*tl2);
  bad_image.SignAll(device_key);
  bad_image.mutable_records()[0].code[8] ^= 1;
  ASSERT_TRUE(tampered.InstallImage(bad_image).ok());
  Result<LoadReport> bad = tampered.Boot(config);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(LoaderTest, SecureBootRejectsUnsignedWhenRequired) {
  BuildImageWithTrustletAndOs();  // Unsigned records.
  LoaderConfig config;
  config.secure_boot = true;
  config.require_signatures = true;
  config.device_key = std::vector<uint8_t>(32, 0x42);
  Result<LoadReport> report = platform_.Boot(config);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(LoaderTest, RebootReestablishesProtection) {
  BuildImageWithTrustletAndOs();
  Result<LoadReport> first = platform_.Boot();
  ASSERT_TRUE(first.ok());
  // Plant a secret in the trustlet's data region, then reset the platform.
  const LoadedTrustlet* loaded = first->FindById(MakeTrustletId("TLA"));
  ASSERT_TRUE(platform_.bus().HostWriteWord(loaded->meta.data_addr + 0x80,
                                            0x5EC8E7));
  platform_.HardReset();
  EXPECT_FALSE(platform_.mpu()->enabled());  // Hardware reset cleared it.
  Result<LoadReport> second = platform_.Boot();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(platform_.mpu()->enabled());
  EXPECT_TRUE(platform_.mpu()->locked());
  // The loader cleared the re-allocated data region: the secret is gone
  // without any hardware memory wipe (fast startup, Sec. 6).
  uint32_t word = 0xFFFFFFFF;
  ASSERT_TRUE(
      platform_.bus().HostReadWord(loaded->meta.data_addr + 0x80, &word));
  EXPECT_EQ(word, 0u);
}

TEST_F(LoaderTest, DeploymentProfilesSelectTrustletSets) {
  // Paper Sec. 8: one PROM image, several deployment scenarios; the Secure
  // Loader establishes only the selected profile's software stack.
  TrustletBuildSpec payment = BasicSpec("PAY", 0x11000, 0x12000);
  TrustletBuildSpec diag = BasicSpec("DIAG", 0x13000, 0x14000);
  Result<TrustletMeta> pay_meta = BuildTrustlet(payment);
  Result<TrustletMeta> diag_meta = BuildTrustlet(diag);
  ASSERT_TRUE(pay_meta.ok());
  ASSERT_TRUE(diag_meta.ok());
  pay_meta->profile = 1;   // Field profile.
  diag_meta->profile = 2;  // Factory-diagnostics profile.
  image_.Add(*pay_meta);
  image_.Add(*diag_meta);
  NanosConfig os_config;
  Result<TrustletMeta> os = BuildNanos(os_config);  // profile 0: always.
  ASSERT_TRUE(os.ok());
  image_.Add(*os);
  ASSERT_TRUE(platform_.InstallImage(image_).ok());

  LoaderConfig field;
  field.profile = 1;
  Result<LoadReport> report = platform_.Boot(field);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->FindById(MakeTrustletId("PAY")), nullptr);
  EXPECT_EQ(report->FindById(MakeTrustletId("DIAG")), nullptr);
  EXPECT_EQ(report->records_skipped, 1);
  TrustletTableView table(&platform_.bus(), kTrustletTableBase);
  EXPECT_EQ(table.ReadRowCount(), 2u);  // PAY + OS.

  // Second boot phase into the diagnostics scenario: reset + reload.
  platform_.HardReset();
  LoaderConfig diag_config;
  diag_config.profile = 2;
  Result<LoadReport> report2 = platform_.Boot(diag_config);
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(report2->FindById(MakeTrustletId("PAY")), nullptr);
  EXPECT_NE(report2->FindById(MakeTrustletId("DIAG")), nullptr);
  EXPECT_EQ(report2->records_skipped, 1);
}

TEST_F(LoaderTest, MeasureAllOverridesPerTrustletChoice) {
  TrustletBuildSpec spec = BasicSpec("TLA", 0x11000, 0x12000);
  spec.measure = false;
  Result<TrustletMeta> tl = BuildTrustlet(spec);
  ASSERT_TRUE(tl.ok());
  image_.Add(*tl);
  NanosConfig os_config;
  image_.Add(*BuildNanos(os_config));
  ASSERT_TRUE(platform_.InstallImage(image_).ok());

  LoaderConfig no_measure;
  Result<LoadReport> report = platform_.Boot(no_measure);
  ASSERT_TRUE(report.ok());
  TrustletTableView table(&platform_.bus(), kTrustletTableBase);
  Sha256Digest zero{};
  EXPECT_EQ(table.ReadRow(*table.FindById(MakeTrustletId("TLA")))->measurement,
            zero);

  platform_.HardReset();
  LoaderConfig measure_all;
  measure_all.measure_all = true;
  Result<LoadReport> report2 = platform_.Boot(measure_all);
  ASSERT_TRUE(report2.ok());
  EXPECT_NE(table.ReadRow(*table.FindById(MakeTrustletId("TLA")))->measurement,
            zero);
}

TEST_F(LoaderTest, UnlockedInstantiationStaysReprogrammable) {
  // Sec. 3.5 note: locking is a policy choice; an unlocked instantiation
  // (e.g. for a software-update service) keeps the register file writable.
  BuildImageWithTrustletAndOs();
  LoaderConfig config;
  config.lock_mpu = false;
  Result<LoadReport> report = platform_.Boot(config);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(platform_.mpu()->enabled());
  EXPECT_FALSE(platform_.mpu()->locked());
  // Host-level write to a free region register succeeds (no CTRL.lock) —
  // though guest writes would still be subject to the OS->MPU rule matrix.
  const uint32_t free_region =
      kMpuMmioBase + kMpuRegionBank +
      static_cast<uint32_t>(report->regions_used) * kMpuRegionStride;
  ASSERT_TRUE(platform_.bus().HostWriteWord(free_region, 0x4242));
  uint32_t value = 0;
  ASSERT_TRUE(platform_.bus().HostReadWord(free_region, &value));
  EXPECT_EQ(value, 0x4242u);
}

TEST_F(LoaderTest, DisabledMpuInstantiation) {
  // enable_mpu = false: everything loads, nothing is enforced (a pure
  // bring-up/debug configuration).
  BuildImageWithTrustletAndOs();
  LoaderConfig config;
  config.enable_mpu = false;
  config.lock_mpu = false;
  Result<LoadReport> report = platform_.Boot(config);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(platform_.mpu()->enabled());
  AccessContext ctx;
  ctx.curr_ip = 0x30000;
  ctx.kind = AccessKind::kWrite;
  EXPECT_EQ(platform_.mpu()->Check(ctx, 0x12010, 4), AccessResult::kOk);
}

TEST_F(LoaderTest, CorruptRecordRejected) {
  BuildImageWithTrustletAndOs();
  // Corrupt the record-size field of the first record in PROM.
  platform_.prom().LoadBytes(kPromDirectoryBase + 4 - kPromBase,
                             {0x02, 0x00, 0x00, 0x00});  // size = 2 (invalid)
  Result<LoadReport> report = platform_.Boot();
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace trustlite
