// Copyright 2026 The TrustLite Reproduction Authors.
//
// Invalidation tests for the superinstruction fusion layer (DESIGN.md §15)
// and the data-access windows that ride on the same generation counters.
// Fusion only engages inside Cpu::Run's threaded-dispatch loop, so every
// test here drives the guest through Platform::Run — never Step() — and
// first proves fusion actually fired (fusion_groups > 0) before asserting
// that stale fused state did not leak into guest-visible behavior.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/isa/isa.h"
#include "src/platform/platform.h"

namespace trustlite {
namespace {

// Assembles `source`, installs it at 0x30000 and resets to `start`.
void Install(Platform& platform, const std::string& source) {
  Result<AsmOutput> out = Assemble(source);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  uint32_t base = 0;
  const std::vector<uint8_t> image = out->Flatten(&base);
  ASSERT_TRUE(platform.bus().HostWriteBytes(base, image));
  platform.cpu().Reset(out->symbols.at("start"));
}

// ---------------------------------------------------------------------------
// Baseline: a hot straight-line loop fuses and retires groups.

TEST(FusionTest, HotLoopFusesAndRetiresGroups) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  Install(platform, R"(
.org 0x30000
start:
    movi r3, 0
    movi r5, 0
    li  r6, 64
loop:
    addi r3, r3, 2
    addi r3, r3, 3
    addi r3, r3, 5
    addi r5, r5, 1
    bne r5, r6, loop
    halt
)");
  platform.Run(10000);
  ASSERT_TRUE(platform.cpu().halted());
  EXPECT_EQ(platform.cpu().reg(3), 64u * 10u);
  EXPECT_EQ(platform.cpu().reg(5), 64u);
  const CpuStats& stats = platform.cpu().stats();
  EXPECT_GT(stats.fusion_groups, 0u);
  // Every dispatched group retires at least two constituents.
  EXPECT_GE(stats.fusion_retired, 2 * stats.fusion_groups);
  EXPECT_GT(stats.fusion_builds, 0u);
}

// ---------------------------------------------------------------------------
// Self-modifying code across a fused pair: a guest store patches the second
// constituent of a fused group. The always-compare rule on tail words must
// drop the group and re-execute the patched instruction — a fusion cache
// that trusted its cached decode would keep adding 1 instead of 100.

TEST(FusionTest, SelfModifyingStoreAcrossFusedPairIsRefetched) {
  Instruction patched;
  patched.opcode = Opcode::kAddi;
  patched.rd = 3;
  patched.rs1 = 3;
  patched.imm = 100;
  // Phase 0 runs the loop four times so the group headed at `head` — whose
  // second constituent is `target` — is built and goes hot. The patch then
  // lands from *outside* the loop and phase 1 re-enters: the warmed entry
  // is now stale and must be dropped by the tail-word re-compare.
  char source[768];
  std::snprintf(source, sizeof(source), R"(
.org 0x30000
start:
    la  r1, target
    li  r2, 0x%x
    movi r3, 0
    movi r5, 0
    li  r6, 4
    movi r7, 0
    movi r8, 1
again:
head:
    addi r3, r3, 1
target:
    addi r3, r3, 1
    addi r5, r5, 1
    bne r5, r6, again
    beq r7, r8, finish
    movi r7, 1
    stw r2, [r1]
    movi r5, 0
    jmp again
finish:
    halt
)",
                Encode(patched));

  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  Install(platform, source);
  platform.Run(10000);
  ASSERT_TRUE(platform.cpu().halted());
  const CpuStats& stats = platform.cpu().stats();
  EXPECT_GT(stats.fusion_groups, 0u);
  // The stale warmed group was dropped, not replayed.
  EXPECT_GT(stats.fusion_invalidations, 0u);
  // Phase 0: four passes of (+1 +1). Phase 1: four passes of (+1 +100).
  EXPECT_EQ(platform.cpu().reg(3), 8u + 4u * 101u);
  EXPECT_EQ(platform.cpu().reg(5), 4u);
}

// ---------------------------------------------------------------------------
// Reset with a fusion cache warmed mid-quad: run an endless fusable loop
// until the instruction budget expires somewhere inside a fused group, then
// Reset and re-run. The surviving (by design) fusion entries must
// revalidate rather than replay, so the second run is bit-identical to the
// first from the architectural side.

TEST(FusionTest, ResetMidFusedQuadReplaysDeterministically) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  const std::string source = R"(
.org 0x30000
start:
    movi r3, 0
loop:
    addi r3, r3, 1
    addi r3, r3, 1
    addi r3, r3, 1
    addi r3, r3, 1
    movi r9, 7
    jmp loop
)";
  Install(platform, source);
  // 42 is not a multiple of the 6-instruction loop body, so the budget
  // expires inside the straight-line quad once groups have gone hot.
  platform.Run(42);
  ASSERT_FALSE(platform.cpu().halted());
  const uint32_t r3_first = platform.cpu().reg(3);
  const uint64_t groups_first = platform.cpu().stats().fusion_groups;
  EXPECT_GT(groups_first, 0u);

  Install(platform, source);  // Same image + Reset(start).
  platform.Run(42);
  ASSERT_FALSE(platform.cpu().halted());
  // Registers were cleared by Reset and the replay is deterministic.
  EXPECT_EQ(platform.cpu().reg(3), r3_first);
  EXPECT_EQ(platform.cpu().reg(9), 7u);
  // The warmed cache kept fusing after the reset (entries revalidated, not
  // discarded wholesale).
  EXPECT_GT(platform.cpu().stats().fusion_groups, groups_first);
}

// ---------------------------------------------------------------------------
// Host program reload: overwrite a previously fused loop with a different
// program at the same addresses (what loaders and the snapshot restore path
// do), Reset, re-run. Tail words are re-compared through the host backing
// on every dispatch, so the stale group must not replay even though the
// reload may never have bumped the bus memory generation.

TEST(FusionTest, HostReloadAfterResetRefetchesFusedTails) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  Install(platform, R"(
.org 0x30000
start:
    movi r3, 0
    movi r5, 0
    li  r6, 8
loop:
    addi r3, r3, 1
    addi r3, r3, 1
    addi r5, r5, 1
    bne r5, r6, loop
    halt
)");
  platform.Run(1000);
  ASSERT_TRUE(platform.cpu().halted());
  EXPECT_EQ(platform.cpu().reg(3), 16u);
  EXPECT_GT(platform.cpu().stats().fusion_groups, 0u);

  // Same layout, different immediates in the fused pair.
  Install(platform, R"(
.org 0x30000
start:
    movi r3, 0
    movi r5, 0
    li  r6, 8
loop:
    addi r3, r3, 10
    addi r3, r3, 20
    addi r5, r5, 1
    bne r5, r6, loop
    halt
)");
  platform.Run(1000);
  ASSERT_TRUE(platform.cpu().halted());
  EXPECT_EQ(platform.cpu().reg(3), 8u * 30u);
}

// ---------------------------------------------------------------------------
// Config switch: with fusion disabled the counters stay at zero and the
// architectural result is unchanged — fusion is pure memoization.

TEST(FusionTest, DisabledFusionIsPureMemoization) {
  const std::string source = R"(
.org 0x30000
start:
    movi r3, 0
    movi r5, 0
    li  r6, 32
loop:
    addi r3, r3, 3
    addi r3, r3, 4
    addi r5, r5, 1
    bne r5, r6, loop
    halt
)";
  uint32_t r3[2];
  uint64_t cycles[2];
  for (int pass = 0; pass < 2; ++pass) {
    PlatformConfig config;
    config.with_mpu = false;
    config.fusion = (pass == 0);
    Platform platform(config);
    Install(platform, source);
    platform.Run(10000);
    ASSERT_TRUE(platform.cpu().halted());
    r3[pass] = platform.cpu().reg(3);
    cycles[pass] = platform.cpu().cycles();
    if (pass == 0) {
      EXPECT_GT(platform.cpu().stats().fusion_groups, 0u);
    } else {
      EXPECT_EQ(platform.cpu().stats().fusion_groups, 0u);
      EXPECT_EQ(platform.cpu().stats().fusion_builds, 0u);
      EXPECT_EQ(platform.cpu().stats().fusion_retired, 0u);
    }
  }
  EXPECT_EQ(r3[0], r3[1]);
  EXPECT_EQ(cycles[0], cycles[1]);
}

// ---------------------------------------------------------------------------
// Data-access windows: a hot load/store loop over RAM must hit the windows,
// and the counters must stay guest-invisible (result unchanged vs a
// fusion/window-free run is covered by the differential corpus; here we
// pin the counters themselves so --stats reporting can trust them).

TEST(FusionTest, DataWindowCountersAccumulate) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);
  Install(platform, R"(
.org 0x30000
start:
    la  r1, buf
    movi r5, 0
    li  r6, 50
loop:
    ldw r4, [r1]
    addi r4, r4, 1
    stw r4, [r1]
    addi r5, r5, 1
    bne r5, r6, loop
    halt
buf:
    .word 0
)");
  platform.Run(10000);
  ASSERT_TRUE(platform.cpu().halted());
  EXPECT_EQ(platform.cpu().reg(4), 50u);
  const CpuStats& stats = platform.cpu().stats();
  EXPECT_GT(stats.data_window_hits, 0u);
  EXPECT_GT(stats.data_window_misses, 0u);  // At least the first touch.
  // And the platform-level snapshot carries the same counters.
  const FastPathStats fp = platform.fast_path_stats();
  EXPECT_EQ(fp.data_window_hits, stats.data_window_hits);
  EXPECT_EQ(fp.data_window_misses, stats.data_window_misses);
}

}  // namespace
}  // namespace trustlite
