// Copyright 2026 The TrustLite Reproduction Authors.
//
// Tests for the SHA-256 compression engine ladder (scalar reference,
// SHA-NI / NEON hardware tiers, 4-way lane-parallel batch) behind
// src/crypto/sha256_engine.h. The resolved engine is whatever the host
// supports — every tier must agree bit-for-bit with the scalar reference,
// and the batch API must agree with hashing each message on its own.
//
// Known answers are the NIST CAVP / FIPS 180-2 SHA-256 vectors already used
// by crypto_test.cc, re-checked here through the engine entry points so a
// bad hardware tier cannot hide behind a correct scalar default.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha256_engine.h"

namespace trustlite {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string Hex(const Sha256Digest& d) { return HexEncode(d.data(), 32); }

// FIPS 180-2 initial hash value.
constexpr uint32_t kH0[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

// Runs one already-padded message through a compression function and
// returns the digest, bypassing the Sha256 streaming class entirely.
Sha256Digest CompressPadded(Sha256CompressFn fn,
                            const std::vector<uint8_t>& blocks) {
  uint32_t state[8];
  std::memcpy(state, kH0, sizeof(state));
  fn(state, blocks.data(), blocks.size() / kSha256BlockSize);
  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[static_cast<size_t>(i) * 4 + 0] = static_cast<uint8_t>(state[i] >> 24);
    out[static_cast<size_t>(i) * 4 + 1] = static_cast<uint8_t>(state[i] >> 16);
    out[static_cast<size_t>(i) * 4 + 2] = static_cast<uint8_t>(state[i] >> 8);
    out[static_cast<size_t>(i) * 4 + 3] = static_cast<uint8_t>(state[i]);
  }
  return out;
}

// SHA-256 padding: message, 0x80, zeros, 64-bit big-endian bit length.
std::vector<uint8_t> Pad(const std::vector<uint8_t>& msg) {
  std::vector<uint8_t> out = msg;
  out.push_back(0x80);
  while (out.size() % kSha256BlockSize != 56) {
    out.push_back(0);
  }
  const uint64_t bits = static_cast<uint64_t>(msg.size()) * 8;
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<uint8_t>(bits >> (i * 8)));
  }
  return out;
}

struct Kat {
  const char* msg;
  const char* digest;
};

// CAVP short-message vectors spanning 1 and 2 compression blocks.
const Kat kKats[] = {
    {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
    {"abc",
     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
    {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
    {"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
     "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
     "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"},
};

TEST(Sha256EngineTest, ScalarReferencePassesKats) {
  for (const Kat& kat : kKats) {
    EXPECT_EQ(Hex(CompressPadded(&Sha256ScalarCompress, Pad(Bytes(kat.msg)))),
              kat.digest)
        << "msg=\"" << kat.msg << "\"";
  }
}

TEST(Sha256EngineTest, ResolvedEnginePassesKats) {
  // On x86 with SHA-NI this exercises the hardware rounds; on ARMv8 the
  // NEON intrinsics; elsewhere it re-checks the scalar path.
  SCOPED_TRACE(std::string("engine=") + Sha256EngineName());
  for (const Kat& kat : kKats) {
    EXPECT_EQ(Hex(CompressPadded(Sha256Compress(), Pad(Bytes(kat.msg)))),
              kat.digest)
        << "msg=\"" << kat.msg << "\"";
  }
}

TEST(Sha256EngineTest, EngineNameIsStable) {
  const char* name = Sha256EngineName();
  ASSERT_NE(name, nullptr);
  EXPECT_TRUE(std::string(name) == "sha-ni" ||
              std::string(name) == "neon-sha2" || std::string(name) == "scalar")
      << name;
  EXPECT_EQ(Sha256Compress(), Sha256Compress());  // Resolution is cached.
}

TEST(Sha256EngineTest, MillionAsThroughStreamingClass) {
  // The streaming class now feeds multi-block runs to the engine in one
  // call; the classic long-message vector covers that path end to end.
  Sha256 hasher;
  const std::vector<uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(chunk);
  }
  EXPECT_EQ(Hex(hasher.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256EngineTest, EngineMatchesScalarOnRandomMultiBlockRuns) {
  Xoshiro256 rng(0x5eed);
  for (int trial = 0; trial < 64; ++trial) {
    const size_t nblocks = 1 + rng.Next32() % 9;
    std::vector<uint8_t> blocks(nblocks * kSha256BlockSize);
    for (auto& b : blocks) {
      b = static_cast<uint8_t>(rng.Next32());
    }
    uint32_t a[8];
    uint32_t b[8];
    for (int i = 0; i < 8; ++i) {
      a[i] = b[i] = rng.Next32();  // Random chaining value, not just H0.
    }
    Sha256ScalarCompress(a, blocks.data(), nblocks);
    Sha256Compress()(b, blocks.data(), nblocks);
    ASSERT_EQ(0, std::memcmp(a, b, sizeof(a))) << "trial=" << trial;
  }
}

TEST(Sha256BatchTest, BatchPassesKats) {
  std::vector<std::vector<uint8_t>> msgs;
  for (const Kat& kat : kKats) {
    msgs.push_back(Bytes(kat.msg));
  }
  const std::vector<Sha256Digest> digests = Sha256BatchHash(msgs);
  ASSERT_EQ(digests.size(), msgs.size());
  for (size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(Hex(digests[i]), kKats[i].digest);
  }
}

TEST(Sha256BatchTest, BatchMatchesSingleOnRandomMixedLengths) {
  // Mixed lengths hit the lane-parallel common-prefix path, the scalar
  // straggler path, and both padding shapes (tail fits / needs extra
  // block). Counts 1..9 cover empty-lane, partial-lane and multi-quad
  // batches.
  Xoshiro256 rng(77);
  for (size_t count = 1; count <= 9; ++count) {
    std::vector<std::vector<uint8_t>> msgs(count);
    for (auto& msg : msgs) {
      msg.resize(rng.Next32() % 300);
      for (auto& b : msg) {
        b = static_cast<uint8_t>(rng.Next32());
      }
    }
    const std::vector<Sha256Digest> batch = Sha256BatchHash(msgs);
    ASSERT_EQ(batch.size(), count);
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(batch[i], Sha256Hash(msgs[i])) << "count=" << count
                                               << " i=" << i;
    }
  }
}

TEST(Sha256BatchTest, PointerApiMatchesVectorApi) {
  const std::vector<std::vector<uint8_t>> msgs = {
      Bytes("abc"), Bytes(""), std::vector<uint8_t>(200, 0xA5)};
  const uint8_t* ptrs[3];
  size_t lens[3];
  for (size_t i = 0; i < 3; ++i) {
    ptrs[i] = msgs[i].data();
    lens[i] = msgs[i].size();
  }
  Sha256Digest out[3];
  Sha256BatchHash(ptrs, lens, 3, out);
  const std::vector<Sha256Digest> vec = Sha256BatchHash(msgs);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i], vec[i]) << i;
  }
}

TEST(Sha256BatchTest, EmptyBatchAndIdenticalLanes) {
  EXPECT_TRUE(Sha256BatchHash({}).empty());
  // Four identical messages: the full-quad lockstep path with no
  // stragglers; all lanes must produce the same digest as a single hash.
  const std::vector<uint8_t> msg = Bytes("lockstep");
  const std::vector<Sha256Digest> batch =
      Sha256BatchHash({msg, msg, msg, msg});
  const Sha256Digest single = Sha256Hash(msg);
  for (const Sha256Digest& d : batch) {
    EXPECT_EQ(d, single);
  }
}

TEST(Sha256EngineTest, SaveRestoreStateStillRoundTrips) {
  // SaveState/RestoreState (used by the soft-SHA device) must keep working
  // across the engine swap: interrupt a hash mid-stream and resume.
  Sha256 hasher;
  hasher.Update(Bytes("abcdbcdecdefdefgefghfghighijhijkijkl"));
  const Sha256::State saved = hasher.SaveState();
  Sha256 resumed;
  resumed.RestoreState(saved);
  resumed.Update(Bytes("jklmklmnlmnomnopnopq"));
  EXPECT_EQ(Hex(resumed.Finish()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

}  // namespace
}  // namespace trustlite
