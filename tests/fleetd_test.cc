// Copyright 2026 The TrustLite Reproduction Authors.
// Fleet control-plane tests (DESIGN.md §17): the control wire codecs
// (config push / ack / health), the FleetController lifecycle — attestation-
// gated admission, re-attestation epochs, digest-checked config push,
// snapshot scale-up with in-place re-key — and the headline properties:
// quarantine reasons are stable and correct, a restored clone attests as
// ITSELF (new key, distinct digest stream), and whole sessions are
// bit-identical from --threads 1 to --threads 8, hostile links included.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/fleet/attest.h"
#include "src/fleet/control.h"
#include "src/fleet/fleet.h"
#include "src/fleet/link.h"
#include "src/fleet/provision.h"
#include "src/harness/fleet_campaign.h"
#include "src/platform/observe/json.h"
#include "src/snapshot/snapshot.h"

namespace trustlite {
namespace {

// --- Wire codecs ---------------------------------------------------------

TEST(ControlWireTest, ConfigFrameRoundTrip) {
  const std::string frame = EncodeConfigFrame(0xDEADBEEF, 7, "mode=eco\n");
  size_t frame_start = 0;
  size_t next_offset = 0;
  uint32_t push_id = 0;
  uint32_t generation = 0;
  std::string blob;
  ASSERT_EQ(ScanConfigFrame(frame, 0, &frame_start, &next_offset, &push_id,
                            &generation, &blob),
            ControlScan::kFrame);
  EXPECT_EQ(push_id, 0xDEADBEEFu);
  EXPECT_EQ(generation, 7u);
  EXPECT_EQ(blob, "mode=eco\n");
  EXPECT_EQ(next_offset, frame.size());
}

TEST(ControlWireTest, ConfigScannerSkipsNoiseAndCorruption) {
  std::string stream = "garbage";
  std::string corrupted = EncodeConfigFrame(1, 1, "k=v\n");
  corrupted[5] ^= 0x40;  // Body flip: CRC must reject.
  stream += corrupted;
  stream += EncodeConfigFrame(2, 2, "k=w\n");
  size_t frame_start = 0;
  size_t next_offset = 0;
  uint32_t push_id = 0;
  uint32_t generation = 0;
  std::string blob;
  ASSERT_EQ(ScanConfigFrame(stream, 0, &frame_start, &next_offset, &push_id,
                            &generation, &blob),
            ControlScan::kFrame);
  EXPECT_EQ(push_id, 2u);
  EXPECT_EQ(blob, "k=w\n");
}

TEST(ControlWireTest, AckAndHealthShareOneScanner) {
  HealthBeacon beacon;
  beacon.cycle = 123'456'789;
  beacon.instructions = 42;
  beacon.tx_bytes = 7;
  beacon.rx_bytes = 9;
  beacon.config_generation = 3;
  beacon.halted = true;
  const Sha256Digest digest = ConfigRegionDigest(3, "a=b\n");
  std::string stream = EncodeHealthFrame(beacon);
  stream += "noise";
  stream += EncodeConfigAck(55, 3, digest);

  size_t frame_start = 0;
  size_t next_offset = 0;
  ControlFrame frame;
  ASSERT_EQ(ScanControlFrame(stream, 0, &frame_start, &next_offset, &frame),
            ControlScan::kFrame);
  ASSERT_EQ(frame.kind, ControlFrame::Kind::kHealth);
  EXPECT_EQ(frame.beacon.cycle, beacon.cycle);
  EXPECT_EQ(frame.beacon.instructions, beacon.instructions);
  EXPECT_EQ(frame.beacon.tx_bytes, beacon.tx_bytes);
  EXPECT_EQ(frame.beacon.rx_bytes, beacon.rx_bytes);
  EXPECT_EQ(frame.beacon.config_generation, beacon.config_generation);
  EXPECT_TRUE(frame.beacon.halted);

  ASSERT_EQ(ScanControlFrame(stream, next_offset, &frame_start, &next_offset,
                             &frame),
            ControlScan::kFrame);
  ASSERT_EQ(frame.kind, ControlFrame::Kind::kConfigAck);
  EXPECT_EQ(frame.push_id, 55u);
  EXPECT_EQ(frame.generation, 3u);
  EXPECT_EQ(frame.digest, digest);
  EXPECT_EQ(next_offset, stream.size());
}

TEST(ControlWireTest, BlobAndRegionDigest) {
  const std::string blob =
      EncodeConfigBlob({{"log", "debug"}, {"rate", "50"}});
  EXPECT_EQ(blob, "log=debug\nrate=50\n");
  // The digest pins the generation too: same blob, new generation, new
  // digest (an old ack can never settle a newer push).
  EXPECT_NE(ConfigRegionDigest(1, blob), ConfigRegionDigest(2, blob));
}

// --- Controller lifecycle ------------------------------------------------

struct Session {
  std::unique_ptr<Fleet> fleet;
  std::unique_ptr<FleetController> controller;
};

Session MakeSession(int nodes, uint64_t seed, int threads,
                    const FleetdPolicy& policy, int tamper = 0,
                    HostileMode hostile = HostileMode::kNone,
                    uint32_t loss_ppm = 0) {
  FleetConfig config;
  config.nodes = nodes;
  config.topology = Topology::kStar;
  config.seed = seed;
  config.threads = threads;
  config.link.latency_cycles = 1'000;
  config.link.loss_ppm = loss_ppm;
  config.link = ApplyHostileMode(config.link, hostile, 150'000);
  Session session;
  session.fleet = std::make_unique<Fleet>(config);
  FleetProvisionConfig prov;
  prov.tamper_count = tamper;
  auto provisions = ProvisionAttestationFleet(session.fleet.get(), prov);
  EXPECT_TRUE(provisions.ok()) << provisions.status().ToString();
  session.controller = std::make_unique<FleetController>(
      session.fleet.get(), std::move(*provisions), policy);
  return session;
}

TEST(FleetControllerTest, AdmissionConfigPushAndHealth) {
  FleetdPolicy policy;
  policy.beacon_every_quanta = 4;
  Session s = MakeSession(4, 3, 1, policy);
  ASSERT_TRUE(s.controller->RunAdmission().ok());
  EXPECT_EQ(s.controller->Admitted().size(), 4u);

  ASSERT_TRUE(s.controller->RunReattestEpoch().ok());
  ASSERT_TRUE(
      s.controller->PushConfig({{"mode", "eco"}, {"rate", "9600"}}).ok());
  EXPECT_EQ(s.controller->config_generation(), 1u);
  for (int i = 0; i < 4; ++i) {
    const NodeHealth& health = s.controller->health(i);
    EXPECT_EQ(health.roster, RosterState::kAdmitted);
    EXPECT_EQ(health.config_generation, 1u);
    EXPECT_GT(health.last_verified_cycle, 0u);
    // Beacons flowed during the idle window and carry real counters.
    EXPECT_GT(health.beacon_seen_cycle, 0u);
    EXPECT_GT(health.beacon.instructions, 0u);
  }
  // A second push bumps the generation on the same region.
  ASSERT_TRUE(s.controller->PushConfig({{"mode", "perf"}}).ok());
  EXPECT_EQ(s.controller->health(0).config_generation, 2u);

  // Every status epoch is valid JSON.
  ASSERT_GE(s.controller->status_epochs().size(), 4u);
  for (const std::string& epoch : s.controller->status_epochs()) {
    std::string error;
    EXPECT_TRUE(JsonParses(epoch, &error)) << error << "\n" << epoch;
  }
}

TEST(FleetControllerTest, TamperedNodeQuarantinesWithMismatchReason) {
  Session s = MakeSession(4, 3, 1, FleetdPolicy{}, /*tamper=*/1);
  ASSERT_TRUE(s.controller->RunAdmission().ok());
  ASSERT_EQ(s.controller->Quarantined().size(), 1u);
  const int victim = s.controller->Quarantined()[0];
  EXPECT_EQ(s.controller->health(victim).reason,
            QuarantineReason::kMismatch);
  EXPECT_EQ(s.controller->health(victim).roster, RosterState::kQuarantined);
  // The stable reason name lands in the attestor transcript.
  EXPECT_NE(
      s.controller->attestor().transcript().find("quarantined reason=mismatch"),
      std::string::npos);
  // Quarantined nodes are excluded from pushes but the roster still works.
  ASSERT_TRUE(s.controller->PushConfig({{"k", "v"}}).ok());
  EXPECT_EQ(s.controller->health(victim).config_generation, 0u);
}

TEST(FleetControllerTest, DeadLinksQuarantineWithTimeoutReason) {
  FleetdPolicy policy;
  policy.attest.timeout_cycles = 100'000;
  policy.attest.backoff_base_cycles = 20'000;
  Session s = MakeSession(2, 3, 1, policy, /*tamper=*/0, HostileMode::kNone,
                          /*loss_ppm=*/1'000'000);
  ASSERT_TRUE(s.controller->RunAdmission().ok());
  EXPECT_EQ(s.controller->Admitted().size(), 0u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(s.controller->health(i).reason, QuarantineReason::kTimeout);
  }
}

TEST(FleetControllerTest, HaltOnQuarantineFailsThePhase) {
  FleetdPolicy policy;
  policy.halt_on_quarantine = true;
  Session s = MakeSession(4, 3, 1, policy, /*tamper=*/1);
  const Status status = s.controller->RunAdmission();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("halt-on-quarantine"), std::string::npos);
}

// --- Snapshot scale-up (mid-run node cloning) ----------------------------

TEST(FleetControllerTest, ScaleUpClonesRekeyAndDiverge) {
  FleetdPolicy policy;
  Session s = MakeSession(4, 5, 1, policy);
  ASSERT_TRUE(s.controller->RunAdmission().ok());
  ASSERT_TRUE(s.controller->ScaleUp(2).ok());
  ASSERT_EQ(s.fleet->num_nodes(), 6);
  EXPECT_EQ(s.controller->Admitted().size(), 6u);

  // The clone carries its OWN derived key, not its source's.
  for (int clone = 4; clone < 6; ++clone) {
    const int src = s.controller->health(clone).cloned_from;
    ASSERT_GE(src, 0);
    EXPECT_NE(s.controller->attestor().provision(clone).key,
              s.controller->attestor().provision(src).key);
    EXPECT_EQ(s.controller->attestor().provision(clone).key,
              DeriveDeviceKey(s.fleet->config().seed, clone));
  }

  // Mid-run state diverges: after more quanta the clone's digest stream is
  // distinct from its source's (different key material and TRNG stream).
  ASSERT_TRUE(s.controller->RunReattestEpoch().ok());
  for (int clone = 4; clone < 6; ++clone) {
    const int src = s.controller->health(clone).cloned_from;
    EXPECT_NE(s.fleet->node(clone).StateDigest(),
              s.fleet->node(src).StateDigest());
  }
}

TEST(FleetControllerTest, ScaleUpRequiresAStarTopology) {
  FleetConfig config;
  config.nodes = 4;
  config.topology = Topology::kRing;
  config.seed = 5;
  Fleet fleet(config);
  FleetProvisionConfig prov;
  auto provisions = ProvisionAttestationFleet(&fleet, prov);
  ASSERT_TRUE(provisions.ok());
  FleetController controller(&fleet, std::move(*provisions), FleetdPolicy{});
  ASSERT_TRUE(controller.RunAdmission().ok());
  EXPECT_FALSE(controller.ScaleUp(1).ok());
}

// --- Thread-count invariance (hostile matrix) ----------------------------

struct SessionResult {
  std::string attestor_transcript;
  std::string controller_transcript;
  std::vector<std::string> status_epochs;
  Sha256Digest digest{};
  size_t admitted = 0;
};

SessionResult RunFullSession(int threads, HostileMode hostile) {
  FleetdPolicy policy;
  policy.epoch_idle_quanta = 8;
  policy.beacon_every_quanta = 4;
  Session s = MakeSession(8, 11, threads, policy, /*tamper=*/0, hostile);
  EXPECT_TRUE(s.controller->RunAdmission().ok());
  EXPECT_TRUE(s.controller->RunReattestEpoch().ok());
  EXPECT_TRUE(s.controller->PushConfig({{"mode", "eco"}}).ok());
  EXPECT_TRUE(s.controller->ScaleUp(2).ok());
  s.controller->Drain();
  SessionResult result;
  result.attestor_transcript = s.controller->attestor().transcript();
  result.controller_transcript = s.controller->transcript();
  result.status_epochs = s.controller->status_epochs();
  result.digest = s.fleet->FleetDigest();
  result.admitted = s.controller->Admitted().size();
  return result;
}

TEST(FleetControllerTest, SessionsAreBitIdenticalAcrossThreadsHostileMatrix) {
  for (HostileMode hostile :
       {HostileMode::kNone, HostileMode::kCorrupt, HostileMode::kReplay,
        HostileMode::kReflect}) {
    const SessionResult t1 = RunFullSession(1, hostile);
    const SessionResult t8 = RunFullSession(8, hostile);
    EXPECT_EQ(t1.attestor_transcript, t8.attestor_transcript);
    EXPECT_EQ(t1.controller_transcript, t8.controller_transcript);
    EXPECT_EQ(t1.status_epochs, t8.status_epochs);
    EXPECT_EQ(t1.digest, t8.digest);
    // Hostile links may not defeat the control plane: everyone (8 originals
    // + 2 clones) ends up admitted.
    EXPECT_EQ(t1.admitted, 10u);
  }
}

}  // namespace
}  // namespace trustlite
