// Copyright 2026 The TrustLite Reproduction Authors.
// Fleet subsystem tests (DESIGN.md §13): link-fabric semantics, the
// work-stealing quantum pool, and the headline property — a fleet run is
// bit-identical from --threads 1 to --threads N for a fixed seed, including
// the remote-attestation transcripts and the quarantine verdicts.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/fleet/attest.h"
#include "src/fleet/fleet.h"
#include "src/fleet/link.h"
#include "src/fleet/pool.h"
#include "src/fleet/provision.h"
#include "src/isa/assembler.h"
#include "src/mem/layout.h"
#include "src/services/attestation.h"

namespace trustlite {
namespace {

// --- Link fabric ---------------------------------------------------------

TEST(LinkFabricTest, DeliversAfterLatencyInOrder) {
  LinkFabric fabric(1);
  fabric.Connect(0, 1, LinkParams{.latency_cycles = 100});
  ASSERT_TRUE(fabric.Send(0, 1, 50, "a"));
  ASSERT_TRUE(fabric.Send(0, 1, 60, "b"));
  EXPECT_TRUE(fabric.Deliver(1, 100).empty());  // Not yet visible.
  std::vector<FleetMessage> due = fabric.Deliver(1, 200);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].payload, "a");
  EXPECT_EQ(due[1].payload, "b");
  EXPECT_EQ(due[0].deliver_cycle, 150u);
  EXPECT_EQ(fabric.in_flight(), 0u);
}

TEST(LinkFabricTest, UnroutableAndLostMessagesDrop) {
  LinkFabric fabric(1);
  fabric.Connect(0, 1, LinkParams{.loss_ppm = 1'000'000});
  EXPECT_FALSE(fabric.Send(0, 2, 0, "x"));  // No such link.
  EXPECT_FALSE(fabric.Send(0, 1, 0, "y"));  // Certain loss.
  EXPECT_EQ(fabric.stats().dropped, 2u);
  EXPECT_EQ(fabric.in_flight(), 0u);
}

TEST(LinkFabricTest, ImpairmentsAreSeedDeterministic) {
  const LinkParams lossy{.latency_cycles = 10,
                         .loss_ppm = 200'000,
                         .reorder_ppm = 200'000};
  auto run = [&](uint64_t seed) {
    LinkFabric fabric(seed);
    fabric.Connect(0, 1, lossy);
    std::string outcomes;
    for (int i = 0; i < 200; ++i) {
      outcomes += fabric.Send(0, 1, static_cast<uint64_t>(i), "m") ? '1' : '0';
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));          // Replayable.
  EXPECT_NE(run(7), run(8));          // Seed actually matters.
  EXPECT_NE(run(7).find('0'), std::string::npos);  // Some losses occurred.

  LinkFabric fabric(7);
  fabric.Connect(0, 1, lossy);
  for (int i = 0; i < 200; ++i) {
    fabric.Send(0, 1, static_cast<uint64_t>(i), "m");
  }
  EXPECT_GT(fabric.stats().reordered, 0u);
}

TEST(LinkFabricTest, CorruptionIsSeededAndIsolatedFromPassiveStreams) {
  const std::string payload = "attestation-report-bytes";
  auto run = [&](uint64_t seed) {
    LinkFabric fabric(seed);
    fabric.Connect(0, 1, LinkParams{.latency_cycles = 10,
                                    .corrupt_ppm = 1'000'000});
    fabric.Send(0, 1, 0, payload);
    std::vector<FleetMessage> due = fabric.Deliver(1, 100);
    EXPECT_EQ(due.size(), 1u);
    EXPECT_EQ(fabric.stats().corrupted, 1u);
    return due.empty() ? std::string() : due[0].payload;
  };
  EXPECT_NE(run(7), payload);  // Bytes actually flipped...
  EXPECT_EQ(run(7), run(7));   // ...at seed-deterministic offsets.
  EXPECT_NE(run(7), run(8));

  // The adversary rolls come from a separate stream: arming corruption must
  // not re-time the passive loss pattern of the same fleet seed.
  auto losses = [&](uint32_t corrupt_ppm) {
    LinkFabric fabric(7);
    fabric.Connect(0, 1, LinkParams{.loss_ppm = 200'000,
                                    .corrupt_ppm = corrupt_ppm});
    std::string outcomes;
    for (int i = 0; i < 200; ++i) {
      outcomes += fabric.Send(0, 1, static_cast<uint64_t>(i), "m") ? '1' : '0';
    }
    return outcomes;
  };
  EXPECT_EQ(losses(0), losses(1'000'000));
}

TEST(LinkFabricTest, ReplayRedeliversStaleCapturedFrames) {
  LinkFabric fabric(1);
  fabric.Connect(0, 1, LinkParams{.latency_cycles = 10,
                                  .replay_ppm = 1'000'000});
  fabric.Send(0, 1, 0, "f0");  // Nothing captured yet: no replay possible.
  fabric.Send(0, 1, 1, "f1");
  fabric.Send(0, 1, 2, "f2");
  std::vector<FleetMessage> due = fabric.Deliver(1, 100);
  EXPECT_EQ(fabric.stats().replayed, 2u);
  ASSERT_EQ(due.size(), 5u);  // 3 fresh + 2 stale re-deliveries.
  int stale = 0;
  for (const FleetMessage& m : due) {
    // A stale copy is always of an OLDER frame, never the one being sent.
    stale += (m.payload == "f0" || m.payload == "f1") ? 1 : 0;
  }
  EXPECT_EQ(stale, 2 + 2);  // f0/f1 originals + 2 stale copies.
}

TEST(LinkFabricTest, ReflectionEchoesFramesBackToSender) {
  LinkFabric fabric(1);
  fabric.Connect(0, 1, LinkParams{.latency_cycles = 10,
                                  .reflect_ppm = 1'000'000});
  fabric.Send(0, 1, 0, "challenge");
  std::vector<FleetMessage> forward = fabric.Deliver(1, 100);
  ASSERT_EQ(forward.size(), 1u);  // The real frame still goes through.
  std::vector<FleetMessage> echoed = fabric.Deliver(0, 100);
  ASSERT_EQ(echoed.size(), 1u);   // ...and an echo lands on the sender,
  EXPECT_EQ(echoed[0].payload, "challenge");
  EXPECT_EQ(echoed[0].src, 1);    // masquerading as the destination.
  EXPECT_EQ(echoed[0].dst, 0);
  EXPECT_EQ(fabric.stats().reflected, 1u);

  std::vector<LinkFabric::LinkStatsRow> rows = fabric.PerLinkStats();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].src, 0);
  EXPECT_EQ(rows[0].dst, 1);
  EXPECT_EQ(rows[0].sent, 1u);
  EXPECT_EQ(rows[0].reflected, 1u);
}

TEST(LinkFabricTest, EqualCycleFramesOrderedBySendSequence) {
  // Frames from different links landing at the SAME deliver cycle must pop
  // in global send order (`seq`) — the due-queue's total order. The old
  // scan-and-sort path left equal-cycle order to sort stability; this is
  // the regression guard for warm-boot clones (identical emit cycles) and
  // replay/reflect injections colliding with fresh traffic.
  LinkFabric fabric(1);
  fabric.Connect(0, 2, LinkParams{.latency_cycles = 100});
  fabric.Connect(1, 2, LinkParams{.latency_cycles = 50});
  ASSERT_TRUE(fabric.Send(0, 2, 50, "A"));    // Due at 150.
  ASSERT_TRUE(fabric.Send(1, 2, 100, "B"));   // Due at 150.
  ASSERT_TRUE(fabric.Send(1, 2, 100, "C"));   // Due at 150, same link as B.
  std::vector<FleetMessage> due = fabric.Deliver(2, 150);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].payload, "A");
  EXPECT_EQ(due[1].payload, "B");
  EXPECT_EQ(due[2].payload, "C");
  EXPECT_LT(due[0].seq, due[1].seq);
  EXPECT_LT(due[1].seq, due[2].seq);
  EXPECT_EQ(due[0].deliver_cycle, due[2].deliver_cycle);
}

TEST(LinkFabricTest, InFlightCounterMatchesRecountUnderHostileTraffic) {
  // The O(1) incremental in-flight counter must track the queues exactly
  // through hostile injections: every replay/reflect frame adds one, every
  // popped frame subtracts one, nothing is double- or under-counted.
  LinkFabric fabric(3);
  fabric.Connect(0, 1, LinkParams{.latency_cycles = 100,
                                  .replay_ppm = 1'000'000,
                                  .reflect_ppm = 1'000'000});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fabric.Send(0, 1, static_cast<uint64_t>(i) * 10, "frame"));
  }
  EXPECT_EQ(fabric.in_flight(), fabric.RecountInFlight());
  EXPECT_GT(fabric.in_flight(), 10u);  // Fresh + injected frames.

  // Partial delivery: early frames pop, late ones (and the +1-cycle replay
  // stragglers) stay queued.
  fabric.Deliver(1, 120);
  EXPECT_EQ(fabric.in_flight(), fabric.RecountInFlight());
  fabric.Deliver(0, 120);  // Reflected echoes land on the sender.
  EXPECT_EQ(fabric.in_flight(), fabric.RecountInFlight());

  fabric.Deliver(1, 10'000);
  fabric.Deliver(0, 10'000);
  EXPECT_EQ(fabric.in_flight(), 0u);
  EXPECT_EQ(fabric.RecountInFlight(), 0u);
  const LinkFabric::Stats stats = fabric.stats();
  // Everything that entered a queue came out: fresh survivors + injections.
  EXPECT_EQ(stats.delivered,
            stats.sent - stats.dropped + stats.replayed + stats.reflected);
}

TEST(LinkFabricTest, RingTopologyLinksNeighboursAndVerifier) {
  LinkFabric fabric(1);
  BuildTopologyLinks(&fabric, Topology::kRing, 4, LinkParams{});
  EXPECT_TRUE(fabric.connected(0, 1));
  EXPECT_TRUE(fabric.connected(0, 3));
  EXPECT_FALSE(fabric.connected(0, 2));  // Not a neighbour.
  EXPECT_TRUE(fabric.connected(2, kVerifierPort));
  EXPECT_TRUE(fabric.connected(kVerifierPort, 2));
}

// --- Quantum pool --------------------------------------------------------

TEST(QuantumPoolTest, EveryIndexRunsExactlyOnce) {
  QuantumPool pool(4);
  constexpr int kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) {
    h.store(0);
  }
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(kTasks, [&](int i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    });
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 5) << "index " << i;
  }
}

TEST(QuantumPoolTest, GrainedClaimsCoverEveryIndexExactlyOnce) {
  QuantumPool pool(4);
  constexpr int kTasks = 1000;
  // Grain 0 clamps to 1; 997 leaves a ragged final block; 5000 > n makes
  // one participant claim a whole shard at once.
  for (int grain : {0, 1, 3, 64, 997, 5000}) {
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& h : hits) {
      h.store(0);
    }
    pool.ParallelFor(
        kTasks, [&](int i) { hits[static_cast<size_t>(i)].fetch_add(1); },
        grain);
    for (int i = 0; i < kTasks; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "index " << i << " grain " << grain;
    }
  }
}

TEST(QuantumPoolTest, SingleThreadRunsInline) {
  QuantumPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  int sum = 0;
  pool.ParallelFor(10, [&](int i) { sum += i; });  // Unsynchronized on purpose.
  EXPECT_EQ(sum, 45);
}

// --- Fleet workload mode -------------------------------------------------

// Tiny guest: announce over the UART, publish the GPIO pattern, halt.
constexpr char kChatterGuest[] =
    "start:\n"
    "    li   r1, 0xF0003000\n"
    "    movi r2, 'p'\n"
    "    stw  r2, [r1]\n"
    "    movi r2, 'i'\n"
    "    stw  r2, [r1]\n"
    "    movi r2, 'n'\n"
    "    stw  r2, [r1]\n"
    "    li   r3, 0xF0006000\n"
    "    movi r4, 0xAB\n"
    "    stw  r4, [r3]\n"
    "    halt\n";

void InstallGuest(Fleet* fleet, const std::string& source) {
  Result<AsmOutput> out = Assemble(source, 0x0003'0000);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (int i = 0; i < fleet->num_nodes(); ++i) {
    Platform& platform = fleet->node(i).platform();
    for (const AsmChunk& chunk : out->chunks) {
      ASSERT_TRUE(platform.bus().HostWriteBytes(chunk.base, chunk.bytes));
    }
    platform.cpu().Reset(out->symbols.at("start"));
    platform.cpu().set_reg(kRegSp, 0x0004'0000);
    platform.ReleaseThreadAffinity();
  }
}

FleetConfig WorkloadConfig(int threads) {
  FleetConfig config;
  config.nodes = 5;
  config.topology = Topology::kRing;
  config.seed = 42;
  config.threads = threads;
  config.quantum = 20'000;
  config.link.latency_cycles = 1'000;
  return config;
}

TEST(FleetWorkloadTest, UartBurstsReachRingNeighbours) {
  Fleet fleet(WorkloadConfig(1));
  InstallGuest(&fleet, kChatterGuest);
  fleet.RunQuanta(4);
  EXPECT_TRUE(fleet.AllHalted());
  for (int i = 0; i < fleet.num_nodes(); ++i) {
    // Both ring neighbours sent one 3-byte burst each.
    EXPECT_EQ(fleet.node(i).rx_bytes(), 6u) << "node " << i;
    EXPECT_EQ(fleet.node(i).tx_bytes(), 3u) << "node " << i;
    // The verifier heard every node's chatter too.
    EXPECT_EQ(fleet.VerifierRx(i), "pin") << "node " << i;
  }
}

TEST(FleetWorkloadTest, GpioBridgedAroundRing) {
  Fleet fleet(WorkloadConfig(1));
  InstallGuest(&fleet, kChatterGuest);
  fleet.RunQuanta(2);
  for (int i = 0; i < fleet.num_nodes(); ++i) {
    uint32_t in = 0;
    ASSERT_TRUE(fleet.node(i).platform().bus().HostReadWord(
        kGpioBase + kGpioRegIn, &in));
    EXPECT_EQ(in, 0xABu) << "node " << i;
  }
}

TEST(FleetWorkloadTest, DigestIdenticalAcrossThreadCounts) {
  std::vector<Sha256Digest> node_digests;
  Sha256Digest fleet_digest{};
  {
    Fleet fleet(WorkloadConfig(1));
    InstallGuest(&fleet, kChatterGuest);
    fleet.RunQuanta(6);
    for (int i = 0; i < fleet.num_nodes(); ++i) {
      node_digests.push_back(fleet.node(i).StateDigest());
    }
    fleet_digest = fleet.FleetDigest();
  }
  Fleet fleet(WorkloadConfig(4));
  InstallGuest(&fleet, kChatterGuest);
  fleet.RunQuanta(6);
  for (int i = 0; i < fleet.num_nodes(); ++i) {
    EXPECT_EQ(fleet.node(i).StateDigest(),
              node_digests[static_cast<size_t>(i)])
        << "node " << i;
  }
  EXPECT_EQ(fleet.FleetDigest(), fleet_digest);
}

TEST(FleetWorkloadTest, SameCycleCollisionsIdenticalAcrossThreadCounts) {
  // Every node runs the identical guest, so all five emit at exactly the
  // same cycles: each node's due-queue holds same-cycle frames from both
  // ring neighbours, and the armed reflect/replay adversary injects more
  // frames at colliding cycles. The equal-cycle seq tiebreak must keep the
  // whole run bit-identical across host thread counts.
  auto run = [](int threads) {
    FleetConfig config = WorkloadConfig(threads);
    config.link.reflect_ppm = 500'000;
    config.link.replay_ppm = 500'000;
    Fleet fleet(config);
    InstallGuest(&fleet, kChatterGuest);
    fleet.RunQuanta(8);
    std::string verifier_streams;
    for (int i = 0; i < fleet.num_nodes(); ++i) {
      verifier_streams += fleet.VerifierRx(i);
      verifier_streams += '|';
    }
    return std::make_pair(fleet.FleetDigest(), verifier_streams);
  };
  const auto one = run(1);
  const auto many = run(4);
  EXPECT_EQ(one.first, many.first);
  EXPECT_EQ(one.second, many.second);
}

// --- TX burst batching ---------------------------------------------------

// Trickle guest: 26 UART bytes a few cycles apart, so with a small quantum
// the burst grows across several consecutive quanta — the shape that used
// to flood the fabric with tiny frames.
constexpr char kTrickleGuest[] =
    "start:\n"
    "    li   r1, 0xF0003000\n"
    "    movi r2, 'a'\n"
    "    movi r4, 0\n"
    "    movi r5, 26\n"
    "loop:\n"
    "    stw  r2, [r1]\n"
    "    addi r2, r2, 1\n"
    "    addi r5, r5, -1\n"
    "    bne  r5, r4, loop\n"
    "    halt\n";

FleetConfig TrickleConfig(int threads, uint32_t batch_quanta) {
  FleetConfig config;
  config.nodes = 2;
  config.topology = Topology::kStar;
  config.seed = 11;
  config.threads = threads;
  config.quantum = 64;  // Small quantum: the 26-byte emission spans several.
  config.harvest_batch_quanta = batch_quanta;
  config.link.latency_cycles = 100;
  return config;
}

TEST(FleetBatchingTest, HorizonCoalescesCrossQuantumTrickle) {
  auto frames_sent = [](uint32_t batch_quanta, std::string* rx) {
    Fleet fleet(TrickleConfig(1, batch_quanta));
    InstallGuest(&fleet, kTrickleGuest);
    fleet.RunQuanta(64);
    EXPECT_TRUE(fleet.AllHalted());
    EXPECT_EQ(fleet.fabric().in_flight(), 0u);
    *rx = fleet.VerifierRx(0);
    return fleet.fabric().stats().sent;
  };
  std::string rx_unbatched;
  std::string rx_batched;
  const uint64_t unbatched = frames_sent(1, &rx_unbatched);
  const uint64_t batched = frames_sent(8, &rx_batched);
  // Same bytes on the wire, strictly fewer frames carrying them.
  EXPECT_EQ(rx_unbatched, "abcdefghijklmnopqrstuvwxyz");
  EXPECT_EQ(rx_batched, rx_unbatched);
  EXPECT_LT(batched, unbatched);
  EXPECT_GT(unbatched, 4u);  // The trickle really did span several quanta.
}

TEST(FleetBatchingTest, BatchedDigestsIdenticalAcrossThreadCounts) {
  // The flush rule is a pure function of simulated state, so batching must
  // not cost any cross-thread determinism.
  auto run = [](int threads) {
    Fleet fleet(TrickleConfig(threads, 4));
    InstallGuest(&fleet, kTrickleGuest);
    fleet.RunQuanta(64);
    return std::make_pair(fleet.FleetDigest(), fleet.VerifierRx(0));
  };
  const auto one = run(1);
  const auto many = run(4);
  EXPECT_EQ(one.first, many.first);
  EXPECT_EQ(one.second, many.second);
}

TEST(FleetBatchingTest, HaltFlushesHeldBurst) {
  // A burst held back by the horizon must still drain when the guest halts
  // (no further bytes can ever arrive) — nothing may stay pending forever.
  Fleet fleet(TrickleConfig(1, 1'000));  // Horizon far beyond the run.
  InstallGuest(&fleet, kTrickleGuest);
  fleet.RunQuanta(64);
  EXPECT_TRUE(fleet.AllHalted());
  EXPECT_EQ(fleet.node(0).pending_tx_bytes(), 0u);
  EXPECT_EQ(fleet.VerifierRx(0), "abcdefghijklmnopqrstuvwxyz");
}

// --- Fleet-wide remote attestation ---------------------------------------

struct AttestRun {
  std::vector<AttestNodeState> states;
  std::vector<bool> tampered;
  std::string transcript;
  Sha256Digest digest{};
  uint64_t quanta = 0;
};

AttestRun RunAttestedFleet(int nodes, int threads, int tamper,
                           uint32_t loss_ppm = 0, uint64_t seed = 7) {
  FleetConfig config;
  config.nodes = nodes;
  config.topology = Topology::kStar;
  config.seed = seed;
  config.threads = threads;
  config.quantum = 20'000;
  config.link.latency_cycles = 1'000;
  config.link.loss_ppm = loss_ppm;
  Fleet fleet(config);

  FleetProvisionConfig prov;
  prov.tamper_count = tamper;
  Result<std::vector<NodeProvision>> provisions =
      ProvisionAttestationFleet(&fleet, prov);
  EXPECT_TRUE(provisions.ok()) << provisions.status().ToString();

  AttestRun run;
  FleetAttestor attestor(&fleet, *provisions, AttestPolicy{});
  attestor.Begin();
  for (uint64_t q = 0; q < 600 && !attestor.Done(); ++q) {
    fleet.RunQuantum();
    attestor.OnQuantumBoundary();
  }
  EXPECT_TRUE(attestor.Done()) << "attestation unresolved";
  for (int i = 0; i < nodes; ++i) {
    run.states.push_back(attestor.state(i));
    run.tampered.push_back((*provisions)[static_cast<size_t>(i)].tampered);
  }
  run.transcript = attestor.transcript();
  run.digest = fleet.FleetDigest();
  run.quanta = fleet.quanta_run();
  return run;
}

TEST(FleetAttestTest, HealthyFleetFullyVerified) {
  AttestRun run = RunAttestedFleet(/*nodes=*/4, /*threads=*/1, /*tamper=*/0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run.states[static_cast<size_t>(i)], AttestNodeState::kVerified)
        << "node " << i;
  }
  EXPECT_NE(run.transcript.find("verified"), std::string::npos);
  EXPECT_EQ(run.transcript.find("quarantined"), std::string::npos);
}

TEST(FleetAttestTest, TamperedNodesQuarantinedHealthyVerified) {
  AttestRun run = RunAttestedFleet(/*nodes=*/6, /*threads=*/1, /*tamper=*/2);
  int quarantined = 0;
  for (int i = 0; i < 6; ++i) {
    const AttestNodeState want = run.tampered[static_cast<size_t>(i)]
                                     ? AttestNodeState::kQuarantined
                                     : AttestNodeState::kVerified;
    EXPECT_EQ(run.states[static_cast<size_t>(i)], want) << "node " << i;
    quarantined += run.tampered[static_cast<size_t>(i)] ? 1 : 0;
  }
  EXPECT_EQ(quarantined, 2);
  // Tampered nodes still answered — their reports just never matched.
  EXPECT_NE(run.transcript.find("report-mismatch"), std::string::npos);
}

TEST(FleetAttestTest, TranscriptAndDigestIdenticalAcrossThreadCounts) {
  AttestRun one = RunAttestedFleet(/*nodes=*/6, /*threads=*/1, /*tamper=*/2);
  AttestRun many = RunAttestedFleet(/*nodes=*/6, /*threads=*/4, /*tamper=*/2);
  EXPECT_EQ(one.transcript, many.transcript);
  EXPECT_EQ(one.digest, many.digest);
  EXPECT_EQ(one.states, many.states);
  EXPECT_EQ(one.quanta, many.quanta);
}

TEST(FleetAttestTest, MismatchFloodIsBoundedAndLogged) {
  // An adversary shovels forged reports at the verifier. The verifier must
  // (a) count every forgery, (b) log only the first policy.max_reject_logs
  // of them plus one explicit suppression line — no silent truncation, no
  // unbounded transcript — and (c) reclaim the consumed RX bytes so the
  // stream buffer does not grow with the flood.
  FleetConfig config;
  config.nodes = 1;
  config.topology = Topology::kStar;
  config.seed = 7;
  config.quantum = 20'000;
  config.link.latency_cycles = 1'000;
  Fleet fleet(config);
  Result<std::vector<NodeProvision>> provisions =
      ProvisionAttestationFleet(&fleet, FleetProvisionConfig{});
  ASSERT_TRUE(provisions.ok()) << provisions.status().ToString();

  AttestPolicy policy;
  FleetAttestor attestor(&fleet, *provisions, policy);
  attestor.Begin();
  constexpr int kForged = 40;
  std::string forged(1, 'R');
  forged += static_cast<char>(kAttestStatusOk);
  forged += std::string(32, 'x');    // Report matching no challenge.
  for (int i = 0; i < kForged; ++i) {
    ASSERT_TRUE(fleet.fabric().Send(0, kVerifierPort, 0, forged));
  }
  for (uint64_t q = 0; q < 600 && !attestor.Done(); ++q) {
    fleet.RunQuantum();
    attestor.OnQuantumBoundary();
  }
  ASSERT_TRUE(attestor.Done());
  // The genuine report still verifies through the flood.
  EXPECT_EQ(attestor.state(0), AttestNodeState::kVerified);
  EXPECT_EQ(attestor.mismatches(0), static_cast<uint64_t>(kForged));

  const std::string& transcript = attestor.transcript();
  size_t mismatch_lines = 0;
  for (size_t at = transcript.find("report-mismatch");
       at != std::string::npos;
       at = transcript.find("report-mismatch", at + 1)) {
    ++mismatch_lines;
  }
  EXPECT_EQ(mismatch_lines, static_cast<size_t>(policy.max_reject_logs));
  EXPECT_NE(transcript.find("reject-log cap reached"), std::string::npos);
  EXPECT_NE(transcript.find("mismatches=40"), std::string::npos);
  // Consumed stream prefix was handed back: the buffer holds at most the
  // unconsumed tail, not the whole flood.
  EXPECT_LT(fleet.VerifierRx(0).size(), forged.size() * 2);
}

TEST(FleetAttestTest, RetriesRideOutLinkLoss) {
  // 15% per-message loss on every link: some challenges or responses die,
  // but timeout + backoff re-challenges until every node verifies.
  AttestRun run = RunAttestedFleet(/*nodes=*/4, /*threads=*/1, /*tamper=*/0,
                                   /*loss_ppm=*/150'000);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run.states[static_cast<size_t>(i)], AttestNodeState::kVerified)
        << "node " << i;
  }
}

}  // namespace
}  // namespace trustlite
