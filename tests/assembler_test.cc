// Copyright 2026 The TrustLite Reproduction Authors.
// Unit tests for the TL32 assembler: directives, expressions, pseudo-
// instructions, labels, error reporting.

#include "src/isa/assembler.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/isa/isa.h"

namespace trustlite {
namespace {

// Assembles and returns the flattened image; fails the test on error.
std::vector<uint8_t> MustAssemble(const std::string& source,
                                  uint32_t origin = 0,
                                  uint32_t* base = nullptr) {
  Result<AsmOutput> out = Assemble(source, origin);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (!out.ok()) {
    return {};
  }
  uint32_t image_base = 0;
  std::vector<uint8_t> image = out->Flatten(&image_base);
  if (base != nullptr) {
    *base = image_base;
  }
  return image;
}

Instruction MustDecode(const std::vector<uint8_t>& image, size_t index) {
  EXPECT_GE(image.size(), (index + 1) * 4);
  const std::optional<Instruction> insn = Decode(LoadLe32(&image[index * 4]));
  EXPECT_TRUE(insn.has_value());
  return insn.value_or(Instruction{});
}

TEST(AssemblerTest, EmptySourceYieldsNothing) {
  Result<AsmOutput> out = Assemble("");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->chunks.empty());
}

TEST(AssemblerTest, CommentsAndBlankLines) {
  const std::vector<uint8_t> image = MustAssemble(R"(
; full line comment
# hash comment
// slash comment
    nop ; trailing
    halt # trailing
)");
  ASSERT_EQ(image.size(), 8u);
  EXPECT_EQ(MustDecode(image, 0).opcode, Opcode::kNop);
  EXPECT_EQ(MustDecode(image, 1).opcode, Opcode::kHalt);
}

TEST(AssemblerTest, BasicAluEncoding) {
  const std::vector<uint8_t> image = MustAssemble(R"(
    add r1, r2, r3
    addi r4, r5, -12
    movi r6, 1000
)");
  Instruction add = MustDecode(image, 0);
  EXPECT_EQ(add.opcode, Opcode::kAdd);
  EXPECT_EQ(add.rd, 1);
  EXPECT_EQ(add.rs1, 2);
  EXPECT_EQ(add.rs2, 3);
  Instruction addi = MustDecode(image, 1);
  EXPECT_EQ(addi.imm, -12);
  Instruction movi = MustDecode(image, 2);
  EXPECT_EQ(movi.imm, 1000);
}

TEST(AssemblerTest, MemoryOperands) {
  const std::vector<uint8_t> image = MustAssemble(R"(
    ldw r1, [r2]
    ldw r3, [sp + 8]
    stw r4, [r5 - 4]
    ldb r6, [r7 + 0x10]
)");
  EXPECT_EQ(MustDecode(image, 0).imm, 0);
  EXPECT_EQ(MustDecode(image, 1).imm, 8);
  EXPECT_EQ(MustDecode(image, 1).rs1, kRegSp);
  EXPECT_EQ(MustDecode(image, 2).imm, -4);
  EXPECT_EQ(MustDecode(image, 3).imm, 16);
}

TEST(AssemblerTest, LabelsAndBranches) {
  Result<AsmOutput> out = Assemble(R"(
start:
    movi r0, 0
loop:
    addi r0, r0, 1
    bne r0, r1, loop
    jmp start
)",
                                   0x100);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->symbols.at("start"), 0x100u);
  EXPECT_EQ(out->symbols.at("loop"), 0x104u);
  uint32_t base = 0;
  const std::vector<uint8_t> image = out->Flatten(&base);
  EXPECT_EQ(base, 0x100u);
  // bne at 0x108 targeting 0x104 -> offset -4.
  EXPECT_EQ(MustDecode(image, 2).imm, -4);
  // jmp at 0x10C targeting 0x100 -> offset -12.
  EXPECT_EQ(MustDecode(image, 3).imm, -12);
}

TEST(AssemblerTest, ForwardReferences) {
  Result<AsmOutput> out = Assemble(R"(
    jmp end
    nop
end:
    halt
)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  uint32_t base = 0;
  const std::vector<uint8_t> image = out->Flatten(&base);
  EXPECT_EQ(MustDecode(image, 0).imm, 8);
}

TEST(AssemblerTest, DirectivesWordByteAscii) {
  const std::vector<uint8_t> image = MustAssemble(R"(
    .word 0x11223344, 5
    .byte 1, 2, 3
    .align 4
    .asciiz "AB\n"
    .align 4
    .space 4, 0xEE
)");
  ASSERT_EQ(image.size(), 20u);
  EXPECT_EQ(LoadLe32(&image[0]), 0x11223344u);
  EXPECT_EQ(LoadLe32(&image[4]), 5u);
  EXPECT_EQ(image[8], 1);
  EXPECT_EQ(image[10], 3);
  EXPECT_EQ(image[11], 0);  // align pad
  EXPECT_EQ(image[12], 'A');
  EXPECT_EQ(image[14], '\n');
  EXPECT_EQ(image[15], 0);  // asciiz terminator
  EXPECT_EQ(image[16], 0xEE);
  EXPECT_EQ(image[19], 0xEE);
}

TEST(AssemblerTest, EquAndExpressions) {
  Result<AsmOutput> out = Assemble(R"(
.equ BASE, 0x1000
.equ OFFSET, BASE + 0x20
    .word OFFSET - 4
    .word (BASE + 8) - (2 + 2)
    .word 'A' + 1
    .word ~0
)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  uint32_t base = 0;
  const std::vector<uint8_t> image = out->Flatten(&base);
  EXPECT_EQ(LoadLe32(&image[0]), 0x101Cu);
  EXPECT_EQ(LoadLe32(&image[4]), 0x1004u);
  EXPECT_EQ(LoadLe32(&image[8]), 66u);
  EXPECT_EQ(LoadLe32(&image[12]), 0xFFFFFFFFu);
}

TEST(AssemblerTest, OrgStartsNewChunk) {
  Result<AsmOutput> out = Assemble(R"(
    nop
.org 0x2000
    halt
)");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->chunks.size(), 2u);
  EXPECT_EQ(out->chunks[0].base, 0u);
  EXPECT_EQ(out->chunks[1].base, 0x2000u);
  EXPECT_EQ(out->chunks[1].bytes.size(), 4u);
}

TEST(AssemblerTest, PseudoLiShortAndWide) {
  const std::vector<uint8_t> image = MustAssemble(R"(
    li r1, 42
    li r2, 0x12345678
)");
  // 42 fits movi (1 word); the wide constant takes lui+ori (2 words).
  ASSERT_EQ(image.size(), 12u);
  EXPECT_EQ(MustDecode(image, 0).opcode, Opcode::kMovi);
  EXPECT_EQ(MustDecode(image, 1).opcode, Opcode::kLui);
  EXPECT_EQ(MustDecode(image, 2).opcode, Opcode::kOri);
  // Verify the reconstructed constant.
  const uint32_t hi = static_cast<uint32_t>(MustDecode(image, 1).imm) << 10;
  const uint32_t lo = static_cast<uint32_t>(MustDecode(image, 2).imm);
  EXPECT_EQ(hi | lo, 0x12345678u);
}

TEST(AssemblerTest, PseudoLaAlwaysWide) {
  const std::vector<uint8_t> image = MustAssemble(R"(
    la r1, target
target:
    halt
)");
  ASSERT_EQ(image.size(), 12u);
  const uint32_t hi = static_cast<uint32_t>(MustDecode(image, 0).imm) << 10;
  const uint32_t lo = static_cast<uint32_t>(MustDecode(image, 1).imm);
  EXPECT_EQ(hi | lo, 8u);
}

TEST(AssemblerTest, PseudoPushPopRetCallMov) {
  const std::vector<uint8_t> image = MustAssemble(R"(
    push r3
    pop r4
    mov r5, r6
    call fn
    ret
fn:
    halt
)");
  EXPECT_EQ(MustDecode(image, 0).opcode, Opcode::kAddi);  // sp -= 4
  EXPECT_EQ(MustDecode(image, 0).imm, -4);
  EXPECT_EQ(MustDecode(image, 1).opcode, Opcode::kStw);
  EXPECT_EQ(MustDecode(image, 2).opcode, Opcode::kLdw);
  EXPECT_EQ(MustDecode(image, 3).imm, 4);
  Instruction mov = MustDecode(image, 4);
  EXPECT_EQ(mov.opcode, Opcode::kAddi);
  EXPECT_EQ(mov.rd, 5);
  EXPECT_EQ(mov.rs1, 6);
  EXPECT_EQ(MustDecode(image, 5).opcode, Opcode::kJal);
  Instruction ret = MustDecode(image, 6);
  EXPECT_EQ(ret.opcode, Opcode::kJr);
  EXPECT_EQ(ret.rs1, kRegLr);
}

TEST(AssemblerTest, ReversedBranchAliases) {
  const std::vector<uint8_t> image = MustAssemble(R"(
t:
    bgt r1, r2, t
    bleu r3, r4, t
)");
  Instruction bgt = MustDecode(image, 0);
  EXPECT_EQ(bgt.opcode, Opcode::kBlt);
  EXPECT_EQ(bgt.rd, 2);   // swapped
  EXPECT_EQ(bgt.rs1, 1);
  Instruction bleu = MustDecode(image, 1);
  EXPECT_EQ(bleu.opcode, Opcode::kBgeu);
  EXPECT_EQ(bleu.rd, 4);
  EXPECT_EQ(bleu.rs1, 3);
}

TEST(AssemblerTest, CurrentLocationSymbol) {
  Result<AsmOutput> out = Assemble(R"(
.org 0x40
here: .word .
)");
  ASSERT_TRUE(out.ok());
  uint32_t base = 0;
  const std::vector<uint8_t> image = out->Flatten(&base);
  EXPECT_EQ(LoadLe32(&image[0]), 0x40u);
}

// --- Error cases ---

struct ErrorCase {
  const char* name;
  const char* source;
  const char* substring;
};

class AssemblerErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(AssemblerErrorTest, ReportsError) {
  Result<AsmOutput> out = Assemble(GetParam().source);
  ASSERT_FALSE(out.ok()) << "expected failure";
  EXPECT_NE(out.status().message().find(GetParam().substring),
            std::string::npos)
      << out.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Errors, AssemblerErrorTest,
    ::testing::Values(
        ErrorCase{"UnknownMnemonic", "  frobnicate r1", "unknown mnemonic"},
        ErrorCase{"BadRegister", "  add r1, r2, r99", "bad register"},
        ErrorCase{"DuplicateLabel", "a:\na:\n  nop", "duplicate label"},
        ErrorCase{"UndefinedSymbol", "  jmp nowhere", "undefined symbol"},
        ErrorCase{"MoviRange", "  movi r1, 0x40000", "out of range"},
        ErrorCase{"BadDirective", "  .bogus 1", "unknown directive"},
        ErrorCase{"BadAlign", "  .align 3", "power of two"},
        ErrorCase{"SwiOperands", "  swi", "vector"},
        ErrorCase{"RetOperands", "  ret r1", "no operands"},
        ErrorCase{"MemOperand", "  ldw r1, r2", "memory operand"}),
    [](const ::testing::TestParamInfo<ErrorCase>& info) {
      return info.param.name;
    });

TEST(AssemblerTest, HalfDirectiveLittleEndian) {
  const std::vector<uint8_t> image = MustAssemble(".half 0x1234, 0xABCD\n");
  ASSERT_EQ(image.size(), 4u);
  EXPECT_EQ(image[0], 0x34);
  EXPECT_EQ(image[1], 0x12);
  EXPECT_EQ(image[2], 0xCD);
  EXPECT_EQ(image[3], 0xAB);
}

TEST(AssemblerTest, ParenthesizedAndUnaryExpressions) {
  const std::vector<uint8_t> image = MustAssemble(R"(
    .word -(3 + 4)
    .word -1 + 2
    .word (1 + 2) - (3 - 4)
)");
  EXPECT_EQ(LoadLe32(&image[0]), static_cast<uint32_t>(-7));
  EXPECT_EQ(LoadLe32(&image[4]), 1u);
  EXPECT_EQ(LoadLe32(&image[8]), 4u);
}

TEST(AssemblerTest, CommentCharactersInsideStrings) {
  const std::vector<uint8_t> image =
      MustAssemble(".asciiz \"a;b#c//d\"\n");
  const std::string text(image.begin(), image.end() - 1);
  EXPECT_EQ(text, "a;b#c//d");
}

TEST(AssemblerTest, BinaryAndCharLiterals) {
  const std::vector<uint8_t> image = MustAssemble(R"(
    .word 0b1010
    .word 'Z'
    .word '\n'
)");
  EXPECT_EQ(LoadLe32(&image[0]), 10u);
  EXPECT_EQ(LoadLe32(&image[4]), 90u);
  EXPECT_EQ(LoadLe32(&image[8]), 10u);
}

TEST(AssemblerTest, BAliasEmitsJmp) {
  const std::vector<uint8_t> image = MustAssemble("t:\n    b t\n");
  EXPECT_EQ(MustDecode(image, 0).opcode, Opcode::kJmp);
}

TEST(AssemblerTest, LiWidthBoundary) {
  // 0x1FFFF fits imm18 signed (131071); 0x20000 does not.
  const std::vector<uint8_t> narrow = MustAssemble("    li r1, 0x1FFFF\n");
  EXPECT_EQ(narrow.size(), 4u);
  const std::vector<uint8_t> wide = MustAssemble("    li r1, 0x20000\n");
  EXPECT_EQ(wide.size(), 8u);
  // Negative boundary: -131072 fits, -131073 does not.
  EXPECT_EQ(MustAssemble("    li r1, -131072\n").size(), 4u);
  EXPECT_EQ(MustAssemble("    li r1, -131073\n").size(), 8u);
}

TEST(AssemblerTest, DuplicateEquRejected) {
  Result<AsmOutput> out = Assemble(".equ X, 1\n.equ X, 2\n");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("duplicate"), std::string::npos);
}

TEST(AssemblerTest, MultipleLabelsSameLine) {
  Result<AsmOutput> out = Assemble("a: b: c:\n    nop\n");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->symbols.at("a"), out->symbols.at("b"));
  EXPECT_EQ(out->symbols.at("b"), out->symbols.at("c"));
}

TEST(AssemblerTest, SancusMnemonicsAssemble) {
  const std::vector<uint8_t> image = MustAssemble(R"(
    protect r1
    unprotect
    attest r2, r3
)");
  EXPECT_EQ(MustDecode(image, 0).opcode, Opcode::kProtect);
  EXPECT_EQ(MustDecode(image, 1).opcode, Opcode::kUnprotect);
  Instruction attest = MustDecode(image, 2);
  EXPECT_EQ(attest.opcode, Opcode::kAttest);
  EXPECT_EQ(attest.rd, 2);
  EXPECT_EQ(attest.rs1, 3);
}

TEST(AssemblerTest, ErrorsIncludeLineNumbers) {
  Result<AsmOutput> out = Assemble("  nop\n  nop\n  bad_op r1\n");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("line 3"), std::string::npos)
      << out.status().ToString();
}


// Robustness: arbitrary garbage input must produce a graceful error (or
// accidentally valid output), never a crash or hang.
class AssemblerFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AssemblerFuzzTest, GarbageInputHandledGracefully) {
  Xoshiro256 rng(static_cast<uint64_t>(GetParam()) * 7349 + 29);
  static const char kChars[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 \t,.:;+-()[]'\"#xrn_@!";
  std::string source;
  const int lines = 5 + static_cast<int>(rng.NextBelow(40));
  for (int i = 0; i < lines; ++i) {
    const int len = static_cast<int>(rng.NextBelow(60));
    for (int j = 0; j < len; ++j) {
      source.push_back(kChars[rng.NextBelow(sizeof(kChars) - 1)]);
    }
    source.push_back('\n');
  }
  // Must terminate and either succeed or fail with a line-located error.
  Result<AsmOutput> out = Assemble(source);
  if (!out.ok()) {
    EXPECT_NE(out.status().message().find("line"), std::string::npos)
        << out.status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, AssemblerFuzzTest,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace trustlite
