// Copyright 2026 The TrustLite Reproduction Authors.
// Hostile-link attestation campaigns (DESIGN.md §13): MVAM-style
// multi-variant tamper campaigns run across links under active attack —
// corruption, stale replay, challenge reflection — plus the replay-window
// regression: the pre-PR7 verifier demonstrably honors a stale report the
// link replays for a since-tampered node, the fixed verifier quarantines.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fleet/attest.h"
#include "src/harness/fleet_campaign.h"

namespace trustlite {
namespace {

// Per-mode rates that keep healthy nodes live within the attempt budget:
// corruption hits every byte of every frame, so its rate stays moderate;
// replay/reflection never damage the fresh frame and can run flat out.
uint32_t RateFor(HostileMode mode) {
  switch (mode) {
    case HostileMode::kCorrupt:
    case HostileMode::kAll:
      return 100'000;
    case HostileMode::kReplay:
    case HostileMode::kReflect:
      return 1'000'000;
    case HostileMode::kNone:
      break;
  }
  return 0;
}

HostileCampaignConfig CampaignConfig(HostileMode mode, int threads) {
  HostileCampaignConfig config;
  config.nodes = 6;
  config.seed = 7;
  config.threads = threads;
  config.mode = mode;
  config.hostile_ppm = RateFor(mode);
  config.victims = 2;
  return config;
}

// The tentpole property: every hostile mode resolves to the correct
// verdicts, and the whole campaign — transcript included — is bit-identical
// from --threads 1 to --threads 8.
TEST(HostileCampaignTest, MatrixBitIdenticalAcrossThreadCounts) {
  const HostileMode kModes[] = {HostileMode::kCorrupt, HostileMode::kReplay,
                                HostileMode::kReflect, HostileMode::kAll};
  for (HostileMode mode : kModes) {
    SCOPED_TRACE(HostileModeName(mode));
    HostileCampaignResult base =
        RunHostileAttestCampaign(CampaignConfig(mode, /*threads=*/1));
    ASSERT_TRUE(base.provision_ok);
    EXPECT_TRUE(base.verdict_ok) << base.transcript;
    for (int threads : {4, 8}) {
      SCOPED_TRACE(threads);
      HostileCampaignResult run =
          RunHostileAttestCampaign(CampaignConfig(mode, threads));
      EXPECT_EQ(run.transcript, base.transcript);
      EXPECT_EQ(run.states, base.states);
      EXPECT_EQ(run.quanta, base.quanta);
      EXPECT_EQ(run.link_stats.corrupted, base.link_stats.corrupted);
      EXPECT_EQ(run.link_stats.replayed, base.link_stats.replayed);
      EXPECT_EQ(run.link_stats.reflected, base.link_stats.reflected);
    }
  }
}

// Each hostile mode must actually fire on the wire — a campaign that
// "survives" an attack that never happened proves nothing.
TEST(HostileCampaignTest, AttacksActuallyFire) {
  HostileCampaignResult corrupt =
      RunHostileAttestCampaign(CampaignConfig(HostileMode::kCorrupt, 1));
  EXPECT_GT(corrupt.link_stats.corrupted, 0u);
  HostileCampaignResult replay =
      RunHostileAttestCampaign(CampaignConfig(HostileMode::kReplay, 1));
  EXPECT_GT(replay.link_stats.replayed, 0u);
  HostileCampaignResult reflect =
      RunHostileAttestCampaign(CampaignConfig(HostileMode::kReflect, 1));
  EXPECT_GT(reflect.link_stats.reflected, 0u);
}

// Batched harvest + tight latency: the config that maximises equal-cycle
// frame collisions (short latency packs deliveries into the same quantum;
// the horizon turns trickles into multi-byte frames landing together).
// The campaign must stay bit-identical across thread counts anyway.
TEST(HostileCampaignTest, BatchedLowLatencyCampaignBitIdentical) {
  HostileCampaignConfig config = CampaignConfig(HostileMode::kAll, 1);
  config.latency_cycles = 100;
  config.harvest_batch_quanta = 4;
  HostileCampaignResult base = RunHostileAttestCampaign(config);
  ASSERT_TRUE(base.provision_ok);
  EXPECT_TRUE(base.verdict_ok) << base.transcript;
  config.threads = 8;
  HostileCampaignResult run = RunHostileAttestCampaign(config);
  EXPECT_EQ(run.transcript, base.transcript);
  EXPECT_EQ(run.states, base.states);
  EXPECT_EQ(run.quanta, base.quanta);
}

// Anti-reflection: with every verifier TX echoed straight back into the
// verifier's own RX stream, no echo may ever verify a node — echoes carry
// no report matching any expected digest, so they are counted as noise or
// rejects, and every node still resolves on its genuine report.
TEST(HostileCampaignTest, ReflectedChallengesNeverVerify) {
  HostileCampaignConfig config = CampaignConfig(HostileMode::kReflect, 1);
  config.victims = 0;  // Healthy fleet: everything must verify.
  HostileCampaignResult run = RunHostileAttestCampaign(config);
  ASSERT_TRUE(run.provision_ok);
  EXPECT_TRUE(run.verdict_ok) << run.transcript;
  EXPECT_GT(run.link_stats.reflected, 0u);
  // No verdict was reached on anything but a fresh genuine report.
  EXPECT_EQ(run.transcript.find("STALE REPORT honored"), std::string::npos);
}

// Multi-variant coverage: across the campaign's victims every applied
// variant is recorded, and distinct variants appear (MVAM-style).
TEST(HostileCampaignTest, TamperVariantsCycleAcrossVictims) {
  HostileCampaignConfig config = CampaignConfig(HostileMode::kAll, 1);
  config.victims = 4;
  HostileCampaignResult run = RunHostileAttestCampaign(config);
  ASSERT_TRUE(run.provision_ok);
  EXPECT_TRUE(run.verdict_ok) << run.transcript;
  std::vector<TamperVariant> used;
  for (int i = 0; i < config.nodes; ++i) {
    if (run.tampered[static_cast<size_t>(i)]) {
      used.push_back(run.variants[static_cast<size_t>(i)]);
    }
  }
  ASSERT_EQ(used.size(), 4u);
  for (size_t a = 0; a < used.size(); ++a) {
    for (size_t b = a + 1; b < used.size(); ++b) {
      EXPECT_NE(used[a], used[b]);  // 4 victims -> all 4 variants.
    }
  }
}

// The replay-window regression (the PR's bugfix). Round 1 verifies a
// healthy fleet; the link captures those reports. Victims are tampered
// mid-run; in round 2 the link replays the captured round-1 reports.
//  * Pre-fix verifier (accept_stale_reports): a report matching ANY
//    previously issued challenge verified — the replayed round-1 report
//    wrongly re-verifies a node whose code has since been tampered.
//  * Fixed verifier: only the latest outstanding challenge verifies; the
//    replay is rejected as stale and the victim quarantines.
TEST(ReplayWindowRegressionTest, StaleReportRejectedByFixedVerifierOnly) {
  HostileCampaignConfig config = CampaignConfig(HostileMode::kReplay, 1);

  HostileCampaignResult fixed = RunHostileAttestCampaign(config);
  ASSERT_TRUE(fixed.provision_ok);
  EXPECT_TRUE(fixed.verdict_ok) << fixed.transcript;
  // The attack was live and the fix visibly exercised.
  EXPECT_NE(fixed.transcript.find("stale-report rejected (replay suspected)"),
            std::string::npos);
  EXPECT_EQ(fixed.transcript.find("STALE REPORT honored"), std::string::npos);

  config.policy.accept_stale_reports = true;  // Pre-PR7 vulnerable window.
  HostileCampaignResult vulnerable = RunHostileAttestCampaign(config);
  ASSERT_TRUE(vulnerable.provision_ok);
  EXPECT_FALSE(vulnerable.verdict_ok);
  bool tampered_node_wrongly_verified = false;
  for (int i = 0; i < config.nodes; ++i) {
    if (vulnerable.tampered[static_cast<size_t>(i)] &&
        vulnerable.states[static_cast<size_t>(i)] ==
            AttestNodeState::kVerified) {
      tampered_node_wrongly_verified = true;
    }
  }
  EXPECT_TRUE(tampered_node_wrongly_verified) << vulnerable.transcript;
  EXPECT_NE(vulnerable.transcript.find("STALE REPORT honored"),
            std::string::npos);
}

// Challenge nonces must never repeat across retries OR re-attestation
// rounds — a repeated nonce would make a replayed old report "fresh".
TEST(ReplayWindowRegressionTest, NoncesUniqueAcrossRounds) {
  HostileCampaignConfig config = CampaignConfig(HostileMode::kNone, 1);
  config.victims = 1;
  HostileCampaignResult run = RunHostileAttestCampaign(config);
  ASSERT_TRUE(run.provision_ok);
  std::vector<std::string> nonces;
  const std::string& t = run.transcript;
  for (size_t at = t.find("nonce="); at != std::string::npos;
       at = t.find("nonce=", at + 1)) {
    nonces.push_back(t.substr(at + 6, 8));
  }
  ASSERT_GT(nonces.size(), 6u);  // Two rounds over six nodes.
  for (size_t a = 0; a < nonces.size(); ++a) {
    for (size_t b = a + 1; b < nonces.size(); ++b) {
      EXPECT_NE(nonces[a], nonces[b]) << "repeated challenge nonce";
    }
  }
}

}  // namespace
}  // namespace trustlite
