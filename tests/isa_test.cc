// Copyright 2026 The TrustLite Reproduction Authors.
// Unit tests for the TL32 ISA definition: encode/decode round trips,
// immediate field limits, register naming, opcode classification.

#include "src/isa/isa.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/isa/assembler.h"
#include "src/isa/disassembler.h"

namespace trustlite {
namespace {

TEST(IsaTest, RegisterNames) {
  EXPECT_EQ(RegisterName(0), "r0");
  EXPECT_EQ(RegisterName(12), "r12");
  EXPECT_EQ(RegisterName(kRegSp), "sp");
  EXPECT_EQ(RegisterName(kRegLr), "lr");
}

TEST(IsaTest, RegisterFromName) {
  EXPECT_EQ(RegisterFromName("r0"), 0);
  EXPECT_EQ(RegisterFromName("r15"), 15);
  EXPECT_EQ(RegisterFromName("sp"), kRegSp);
  EXPECT_EQ(RegisterFromName("lr"), kRegLr);
  EXPECT_FALSE(RegisterFromName("r16").has_value());
  EXPECT_FALSE(RegisterFromName("x3").has_value());
  EXPECT_FALSE(RegisterFromName("r").has_value());
  EXPECT_FALSE(RegisterFromName("r1a").has_value());
}

TEST(IsaTest, OpcodeNamesRoundTrip) {
  for (uint8_t bits = 0; bits < 64; ++bits) {
    const std::optional<InstructionFormat> format = FormatOf(bits);
    if (!format.has_value()) {
      continue;
    }
    const Opcode op = static_cast<Opcode>(bits);
    EXPECT_EQ(OpcodeFromName(OpcodeName(op)), op)
        << "opcode bits " << static_cast<int>(bits);
  }
}

TEST(IsaTest, UndefinedOpcodesDecodeToNothing) {
  // Opcodes 40..47 and 51..63 are unassigned.
  EXPECT_FALSE(Decode(40u << 26).has_value());
  EXPECT_FALSE(Decode(47u << 26).has_value());
  EXPECT_FALSE(Decode(51u << 26).has_value());
  EXPECT_FALSE(Decode(63u << 26).has_value());
}

TEST(IsaTest, EncodeDecodeRType) {
  Instruction insn{Opcode::kAdd, 3, 7, 12, 0};
  const std::optional<Instruction> decoded = Decode(Encode(insn));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, insn);
}

TEST(IsaTest, EncodeDecodeITypeNegativeImmediate) {
  Instruction insn{Opcode::kAddi, 13, 13, 0, -4};
  const std::optional<Instruction> decoded = Decode(Encode(insn));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->imm, -4);
  EXPECT_EQ(decoded->rd, 13);
}

TEST(IsaTest, EncodeDecodeImmediateLimits) {
  // imm18 signed: [-131072, 131071].
  for (const int32_t imm : {-131072, -1, 0, 1, 131071}) {
    Instruction insn{Opcode::kMovi, 1, 0, 0, imm};
    const std::optional<Instruction> decoded = Decode(Encode(insn));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->imm, imm) << imm;
  }
}

TEST(IsaTest, EncodeDecodeBranchOffsets) {
  for (const int32_t offset : {-524288, -4, 0, 4, 524284}) {
    Instruction insn{Opcode::kBeq, 1, 2, 0, offset};
    const std::optional<Instruction> decoded = Decode(Encode(insn));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->imm, offset) << offset;
  }
}

TEST(IsaTest, EncodeDecodeJumpOffsets) {
  for (const int32_t offset : {-67108864, -8, 0, 4, 67108860}) {
    Instruction insn{Opcode::kJal, 0, 0, 0, offset};
    const std::optional<Instruction> decoded = Decode(Encode(insn));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->imm, offset) << offset;
  }
}

TEST(IsaTest, EncodeDecodeLuiImm22) {
  Instruction insn{Opcode::kLui, 5, 0, 0, 0x3FFFFF};
  const std::optional<Instruction> decoded = Decode(Encode(insn));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->imm, 0x3FFFFF);
}

TEST(IsaTest, Classification) {
  EXPECT_TRUE(IsMemoryOp(Opcode::kLdw));
  EXPECT_TRUE(IsMemoryOp(Opcode::kStb));
  EXPECT_FALSE(IsMemoryOp(Opcode::kAdd));
  EXPECT_TRUE(IsJump(Opcode::kJalr));
  EXPECT_FALSE(IsJump(Opcode::kBeq));
  EXPECT_TRUE(IsBranch(Opcode::kBgeu));
  EXPECT_FALSE(IsBranch(Opcode::kJmp));
}

// Sign-extends an 18-bit pattern the same way the decoder does.
int32_t SignExtendImm(int32_t raw18) {
  const uint32_t v = static_cast<uint32_t>(raw18) & 0x3FFFF;
  return (v & 0x20000) != 0 ? static_cast<int32_t>(v | 0xFFFC0000u)
                            : static_cast<int32_t>(v);
}

// Property: every defined opcode round-trips through encode/decode for many
// random operand combinations.
class IsaRoundTripTest : public ::testing::TestWithParam<uint8_t> {};

TEST_P(IsaRoundTripTest, RandomOperandsRoundTrip) {
  const uint8_t bits = GetParam();
  const std::optional<InstructionFormat> format = FormatOf(bits);
  if (!format.has_value()) {
    GTEST_SKIP() << "unassigned opcode";
  }
  Xoshiro256 rng(bits * 1234567ull + 1);
  for (int i = 0; i < 200; ++i) {
    Instruction insn;
    insn.opcode = static_cast<Opcode>(bits);
    switch (*format) {
      case InstructionFormat::kR:
        insn.rd = static_cast<uint8_t>(rng.NextBelow(16));
        insn.rs1 = static_cast<uint8_t>(rng.NextBelow(16));
        insn.rs2 = static_cast<uint8_t>(rng.NextBelow(16));
        break;
      case InstructionFormat::kI:
        insn.rd = static_cast<uint8_t>(rng.NextBelow(16));
        insn.rs1 = static_cast<uint8_t>(rng.NextBelow(16));
        insn.imm = static_cast<int32_t>(rng.NextInRange(0, 0x3FFFF));
        insn.imm = SignExtendImm(insn.imm);
        break;
      case InstructionFormat::kU:
        insn.rd = static_cast<uint8_t>(rng.NextBelow(16));
        insn.imm = static_cast<int32_t>(rng.NextBelow(1u << 22));
        break;
      case InstructionFormat::kB:
        insn.rd = static_cast<uint8_t>(rng.NextBelow(16));
        insn.rs1 = static_cast<uint8_t>(rng.NextBelow(16));
        insn.imm = (static_cast<int32_t>(rng.NextInRange(0, 0x3FFFF)) -
                    0x20000) *
                   4;
        break;
      case InstructionFormat::kJ:
        insn.imm = (static_cast<int32_t>(rng.NextInRange(0, 0x3FFFFFF)) -
                    0x2000000) *
                   4;
        break;
      case InstructionFormat::kNone:
        break;
    }
    const std::optional<Instruction> decoded = Decode(Encode(insn));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, insn) << "opcode " << OpcodeName(insn.opcode);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, IsaRoundTripTest,
                         ::testing::Range<uint8_t>(0, 64));

// Property: disassembler output is valid assembler input that re-encodes to
// the identical word (for every defined, assembler-expressible opcode).
class DisasRoundTripTest : public ::testing::TestWithParam<uint8_t> {};

TEST_P(DisasRoundTripTest, DisassemblyReassembles) {
  const uint8_t bits = GetParam();
  const std::optional<InstructionFormat> format = FormatOf(bits);
  if (!format.has_value()) {
    GTEST_SKIP() << "unassigned opcode";
  }
  const Opcode op = static_cast<Opcode>(bits);
  Xoshiro256 rng(bits * 31u + 5);
  for (int i = 0; i < 64; ++i) {
    Instruction insn;
    insn.opcode = op;
    insn.rd = static_cast<uint8_t>(rng.NextBelow(16));
    insn.rs1 = static_cast<uint8_t>(rng.NextBelow(16));
    insn.rs2 = static_cast<uint8_t>(rng.NextBelow(16));
    // Zero the fields the assembly syntax of this opcode cannot express
    // (they are don't-care bits in hardware, but the round trip must be
    // exact).
    switch (op) {
      case Opcode::kMovi:
      case Opcode::kLui:
      case Opcode::kSwi:
        insn.rs1 = 0;
        insn.rs2 = 0;
        if (op == Opcode::kSwi) {
          insn.rd = 0;
        }
        break;
      case Opcode::kJr:
      case Opcode::kJalr:
      case Opcode::kProtect:
        insn.rd = 0;
        insn.rs2 = 0;
        break;
      case Opcode::kAttest:
        insn.rs2 = 0;
        break;
      case Opcode::kUnprotect:  // R-format encoding but no operands.
        insn.rd = 0;
        insn.rs1 = 0;
        insn.rs2 = 0;
        break;
      default:
        if (*format == InstructionFormat::kNone) {
          insn.rd = 0;
          insn.rs1 = 0;
          insn.rs2 = 0;
        } else if (*format == InstructionFormat::kJ) {
          insn.rd = 0;
          insn.rs1 = 0;
          insn.rs2 = 0;
        } else if (*format == InstructionFormat::kI ||
                   *format == InstructionFormat::kU) {
          insn.rs2 = 0;
          if (*format == InstructionFormat::kU) {
            insn.rs1 = 0;
          }
        }
        break;
    }
    switch (*format) {
      case InstructionFormat::kI:
        insn.imm = SignExtendImm(static_cast<int32_t>(rng.Next32()));
        break;
      case InstructionFormat::kU:
        insn.imm = static_cast<int32_t>(rng.NextBelow(1u << 22));
        break;
      case InstructionFormat::kB:
        insn.imm =
            (static_cast<int32_t>(rng.NextBelow(0x1000)) - 0x800) * 4;
        break;
      case InstructionFormat::kJ:
        insn.imm =
            (static_cast<int32_t>(rng.NextBelow(0x1000)) - 0x800) * 4;
        break;
      default:
        break;
    }
    const uint32_t addr = 0x4000;
    const uint32_t word = Encode(insn);
    const std::string text = Disassemble(insn, addr);
    Result<AsmOutput> out = Assemble(text + "\n", addr);
    ASSERT_TRUE(out.ok()) << text << ": " << out.status().ToString();
    uint32_t base = 0;
    const std::vector<uint8_t> image = out->Flatten(&base);
    ASSERT_EQ(image.size(), 4u) << text;
    EXPECT_EQ(LoadLe32(image.data()), word) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, DisasRoundTripTest,
                         ::testing::Range<uint8_t>(0, 64));

TEST(DisassemblerTest, RendersCommonForms) {
  EXPECT_EQ(DisassembleWord(Encode({Opcode::kNop, 0, 0, 0, 0}), 0), "nop");
  EXPECT_EQ(DisassembleWord(Encode({Opcode::kAdd, 1, 2, 3, 0}), 0),
            "add r1, r2, r3");
  EXPECT_EQ(DisassembleWord(Encode({Opcode::kMovi, 4, 0, 0, -7}), 0),
            "movi r4, -7");
  EXPECT_EQ(DisassembleWord(Encode({Opcode::kLdw, 5, 13, 0, 8}), 0),
            "ldw r5, [sp+8]");
  EXPECT_EQ(DisassembleWord(Encode({Opcode::kJmp, 0, 0, 0, 16}), 0x100),
            "jmp 0x00000110");
  EXPECT_EQ(DisassembleWord(Encode({Opcode::kBeq, 1, 2, 0, -8}), 0x100),
            "beq r1, r2, 0x000000f8");
  EXPECT_EQ(DisassembleWord(0xFFFFFFFF, 0), ".word 0xffffffff");
}

}  // namespace
}  // namespace trustlite
