// Copyright 2026 The TrustLite Reproduction Authors.
// Unit-level tests for the service trustlet builders and their host-side
// protocol models (the end-to-end behaviour is covered in integration_test).

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/services/attestation.h"
#include "src/services/trusted_ipc.h"

namespace trustlite {
namespace {

TEST(AttestationServiceTest, BuildsWithKeyEmbedded) {
  AttestationSpec spec;
  spec.code_addr = 0x15000;
  spec.data_addr = 0x16000;
  spec.mailbox_addr = 0x30000;
  for (size_t i = 0; i < spec.key.size(); ++i) {
    spec.key[i] = static_cast<uint8_t>(i);
  }
  Result<TrustletMeta> meta = BuildAttestationTrustlet(spec);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_TRUE(meta->code_private);  // The key must not be world-readable.
  EXPECT_EQ(meta->grants.size(), 1u);
  EXPECT_EQ(meta->grants[0].base, kShaBase);
  // The key bytes appear verbatim in the code image.
  const std::vector<uint8_t>& code = meta->code;
  bool found = false;
  for (size_t i = 0; i + spec.key.size() <= code.size(); ++i) {
    if (std::equal(spec.key.begin(), spec.key.end(), code.begin() + i)) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AttestationServiceTest, ExpectedReportModel) {
  std::array<uint8_t, 32> key;
  key.fill(7);
  const std::vector<uint8_t> code = {1, 2, 3, 4, 5, 6, 7, 8};
  const Sha256Digest r1 = ExpectedAttestationReport(key, 1, code);
  const Sha256Digest r2 = ExpectedAttestationReport(key, 2, code);
  EXPECT_NE(r1, r2);  // Challenge-sensitive.
  std::vector<uint8_t> code2 = code;
  code2[3] ^= 1;
  EXPECT_NE(r1, ExpectedAttestationReport(key, 1, code2));
  std::array<uint8_t, 32> key2 = key;
  key2[0] ^= 1;
  EXPECT_NE(r1, ExpectedAttestationReport(key2, 1, code));
  // Deterministic.
  EXPECT_EQ(r1, ExpectedAttestationReport(key, 1, code));
}

TEST(TrustedIpcServiceTest, BuildersProduceGrants) {
  TrustedIpcSpec spec;
  spec.initiator_code = 0x11000;
  spec.initiator_data = 0x12000;
  spec.responder_code = 0x13000;
  spec.responder_data = 0x14000;
  Result<TrustletMeta> a = BuildIpcInitiator(spec);
  Result<TrustletMeta> b = BuildIpcResponder(spec);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->grants.size(), 2u);  // SHA + TRNG
  ASSERT_EQ(b->grants.size(), 2u);
  EXPECT_EQ(a->id, MakeTrustletId("TLA"));
  EXPECT_EQ(b->id, MakeTrustletId("TLB"));
}

TEST(TrustedIpcServiceTest, SkipMeasurementShrinksInitiator) {
  TrustedIpcSpec spec;
  spec.initiator_code = 0x11000;
  spec.initiator_data = 0x12000;
  spec.responder_code = 0x13000;
  spec.responder_data = 0x14000;
  Result<TrustletMeta> full = BuildIpcInitiator(spec);
  spec.skip_measurement_check = true;
  Result<TrustletMeta> slim = BuildIpcInitiator(spec);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(slim.ok());
  EXPECT_LT(slim->code.size(), full->code.size());
}

TEST(TrustedIpcServiceTest, SessionTokenModel) {
  const uint32_t a = MakeTrustletId("TLA");
  const uint32_t b = MakeTrustletId("TLB");
  const Sha256Digest t1 = ComputeSessionToken(a, b, 1, 2);
  // Order and nonce sensitivity.
  EXPECT_NE(t1, ComputeSessionToken(b, a, 1, 2));
  EXPECT_NE(t1, ComputeSessionToken(a, b, 2, 1));
  EXPECT_NE(t1, ComputeSessionToken(a, b, 1, 3));
  EXPECT_EQ(t1, ComputeSessionToken(a, b, 1, 2));
  // Token equals a direct SHA-256 over the concatenated LE words.
  std::vector<uint8_t> input;
  AppendLe32(input, a);
  AppendLe32(input, b);
  AppendLe32(input, 1);
  AppendLe32(input, 2);
  EXPECT_EQ(t1, Sha256Hash(input));
}

TEST(TrustedIpcServiceTest, MessageTagModel) {
  const Sha256Digest token = ComputeSessionToken(1, 2, 3, 4);
  const uint32_t tag = ComputeMessageTag(token, 0xC0FFEE);
  EXPECT_NE(tag, ComputeMessageTag(token, 0xC0FFEF));
  Sha256Digest other = token;
  other[0] ^= 1;
  EXPECT_NE(tag, ComputeMessageTag(other, 0xC0FFEE));
  EXPECT_EQ(tag, ComputeMessageTag(token, 0xC0FFEE));
}

}  // namespace
}  // namespace trustlite
