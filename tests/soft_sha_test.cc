// Copyright 2026 The TrustLite Reproduction Authors.
// Guest software SHA-256: digests computed by TL32 code on the simulator
// must match the host implementation (itself FIPS-vector-tested) for every
// padding boundary, plus NIST's "abc" as an absolute anchor.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/crypto/sha256.h"
#include "src/isa/assembler.h"
#include "src/platform/platform.h"
#include "src/services/soft_sha.h"

namespace trustlite {
namespace {

constexpr uint32_t kCodeBase = 0x0003'0000;
constexpr uint32_t kScratch = 0x0003'4000;
constexpr uint32_t kSrc = 0x0003'5000;
constexpr uint32_t kOut = 0x0003'6000;
constexpr uint32_t kStack = 0x0003'8000;

// Runs the guest routine over `message`; returns the digest bytes and the
// simulated cycles consumed by the call.
Sha256Digest GuestSha256(const std::vector<uint8_t>& message,
                         uint64_t* cycles = nullptr) {
  PlatformConfig config;
  config.with_mpu = false;
  Platform platform(config);

  std::string source = ".org 0x30000\nstart:\n";
  source += "    li r0, " + std::to_string(kSrc) + "\n";
  source += "    li r1, " + std::to_string(message.size()) + "\n";
  source += "    li r2, " + std::to_string(kOut) + "\n";
  source += "    call sha256_compute\n    halt\n";
  source += SoftSha256Source(kScratch);

  Result<AsmOutput> out = Assemble(source, kCodeBase);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  uint32_t base = 0;
  const std::vector<uint8_t> image = out->Flatten(&base);
  EXPECT_TRUE(platform.bus().HostWriteBytes(base, image));
  if (!message.empty()) {
    EXPECT_TRUE(platform.bus().HostWriteBytes(kSrc, message));
  }
  platform.cpu().Reset(kCodeBase);
  platform.cpu().set_reg(kRegSp, kStack);
  platform.Run(3'000'000);
  EXPECT_TRUE(platform.cpu().halted());
  EXPECT_FALSE(platform.cpu().trap().valid) << platform.cpu().trap().reason;
  if (cycles != nullptr) {
    *cycles = platform.cpu().cycles();
  }
  std::vector<uint8_t> digest_bytes;
  EXPECT_TRUE(platform.bus().HostReadBytes(kOut, 32, &digest_bytes));
  Sha256Digest digest{};
  std::copy(digest_bytes.begin(), digest_bytes.end(), digest.begin());
  return digest;
}

TEST(SoftShaTest, NistAbcVector) {
  const std::vector<uint8_t> abc = {'a', 'b', 'c'};
  EXPECT_EQ(HexEncode(GuestSha256(abc).data(), 32),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(SoftShaTest, EmptyMessage) {
  EXPECT_EQ(HexEncode(GuestSha256({}).data(), 32),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

class SoftShaLengthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SoftShaLengthTest, MatchesHostImplementation) {
  const size_t length = GetParam();
  Xoshiro256 rng(length * 31337 + 7);
  std::vector<uint8_t> message(length);
  for (auto& b : message) {
    b = static_cast<uint8_t>(rng.Next32());
  }
  EXPECT_EQ(GuestSha256(message), Sha256Hash(message)) << "len=" << length;
}

// Every padding boundary: short, exactly-fits-length, spill-block, multiple
// blocks, and unaligned tails.
INSTANTIATE_TEST_SUITE_P(PaddingBoundaries, SoftShaLengthTest,
                         ::testing::Values(1, 3, 31, 54, 55, 56, 57, 62, 63,
                                           64, 65, 100, 119, 120, 121, 128,
                                           200, 256, 300));

TEST(SoftShaTest, SoftwareCostPerBlock) {
  // Cost model input for bench_crypto_accel: cycles for 1024 bytes
  // (16 data blocks + 1 padding block).
  uint64_t cycles = 0;
  std::vector<uint8_t> message(1024, 0x42);
  GuestSha256(message, &cycles);
  const uint64_t per_block = cycles / 17;
  // The 64-round compression in TL32 costs thousands of cycles per block —
  // an order of magnitude above even a slow MMIO engine.
  EXPECT_GT(per_block, 2000u);
  EXPECT_LT(per_block, 20000u);
}

}  // namespace
}  // namespace trustlite
