// Copyright 2026 The TrustLite Reproduction Authors.
// Trustlet metadata serialization and Trustlet Table view tests.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/dev/sha_accel.h"
#include "src/dev/timer.h"
#include "src/isa/assembler.h"
#include "src/loader/system_image.h"
#include "src/mem/layout.h"
#include "src/mpu/ea_mpu.h"
#include "src/trustlet/guest_defs.h"
#include "src/mem/bus.h"
#include "src/mem/memory.h"
#include "src/trustlet/builder.h"
#include "src/trustlet/metadata.h"
#include "src/trustlet/trustlet_table.h"

namespace trustlite {
namespace {

TrustletMeta SampleMeta() {
  TrustletMeta meta;
  meta.id = MakeTrustletId("DEMO");
  meta.measure = true;
  meta.callable_any = false;
  meta.callers = {MakeTrustletId("OS"), MakeTrustletId("PEER")};
  meta.code_addr = 0x11000;
  meta.data_addr = 0x12000;
  meta.data_size = 0x400;
  meta.stack_size = 0x100;
  meta.sp_slot_patch_offset = 4;
  meta.start_offset = 0x20;
  meta.profile = 3;
  meta.grants = {{0xF0003000, 0xF0004000, kGrantRead | kGrantWrite},
                 {0x14000, 0x14040, kGrantRead}};
  meta.code = {1, 2, 3, 4, 5, 6, 7, 8, 9};  // Odd length: padding exercised.
  return meta;
}

TEST(MetadataTest, SerializeParseRoundTrip) {
  const TrustletMeta meta = SampleMeta();
  const std::vector<uint8_t> record = meta.Serialize();
  EXPECT_EQ(record.size(), meta.SerializedSize());
  EXPECT_EQ(record.size() % 4, 0u);

  Result<TrustletMeta> parsed = TrustletMeta::Parse(record.data(), record.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, meta.id);
  EXPECT_EQ(parsed->is_os, meta.is_os);
  EXPECT_EQ(parsed->measure, meta.measure);
  EXPECT_EQ(parsed->callable_any, meta.callable_any);
  EXPECT_EQ(parsed->callers, meta.callers);
  EXPECT_EQ(parsed->code_addr, meta.code_addr);
  EXPECT_EQ(parsed->data_addr, meta.data_addr);
  EXPECT_EQ(parsed->data_size, meta.data_size);
  EXPECT_EQ(parsed->stack_size, meta.stack_size);
  EXPECT_EQ(parsed->sp_slot_patch_offset, meta.sp_slot_patch_offset);
  EXPECT_EQ(parsed->start_offset, meta.start_offset);
  EXPECT_EQ(parsed->profile, meta.profile);
  EXPECT_EQ(parsed->code, meta.code);
  ASSERT_EQ(parsed->grants.size(), 2u);
  EXPECT_EQ(parsed->grants[0].base, 0xF0003000u);
  EXPECT_EQ(parsed->grants[1].perms, kGrantRead);
}

TEST(MetadataTest, FlagBitsRoundTrip) {
  TrustletMeta meta = SampleMeta();
  meta.is_os = true;
  meta.is_signed = true;
  meta.code_private = true;
  meta.unprotected = true;
  meta.callable_any = true;
  const std::vector<uint8_t> record = meta.Serialize();
  Result<TrustletMeta> parsed = TrustletMeta::Parse(record.data(), record.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_os);
  EXPECT_TRUE(parsed->is_signed);
  EXPECT_TRUE(parsed->code_private);
  EXPECT_TRUE(parsed->unprotected);
  EXPECT_TRUE(parsed->callable_any);
}

TEST(MetadataTest, ParseRejectsBadMagic) {
  std::vector<uint8_t> record = SampleMeta().Serialize();
  record[0] ^= 0xFF;
  EXPECT_FALSE(TrustletMeta::Parse(record.data(), record.size()).ok());
}

TEST(MetadataTest, ParseRejectsTruncation) {
  const std::vector<uint8_t> record = SampleMeta().Serialize();
  EXPECT_FALSE(TrustletMeta::Parse(record.data(), 10).ok());
  EXPECT_FALSE(TrustletMeta::Parse(record.data(), record.size() - 4).ok());
}

TEST(MetadataTest, ParseRejectsBadPatchOffset) {
  TrustletMeta meta = SampleMeta();
  meta.sp_slot_patch_offset = 1000;  // Past the 9-byte code.
  const std::vector<uint8_t> record = meta.Serialize();
  EXPECT_FALSE(TrustletMeta::Parse(record.data(), record.size()).ok());
}

TEST(MetadataTest, TrustletIdHelpers) {
  EXPECT_EQ(TrustletIdName(MakeTrustletId("ATTN")), "ATTN");
  EXPECT_EQ(TrustletIdName(MakeTrustletId("OS")), "OS");
  EXPECT_EQ(MakeTrustletId("AB"), MakeTrustletId("AB"));
  EXPECT_NE(MakeTrustletId("AB"), MakeTrustletId("BA"));
}

TEST(TrustletTableTest, WriteReadRows) {
  Ram ram("ram", 0x10000, 0x10000);
  Bus bus;
  bus.Attach(&ram);
  TrustletTableView table(&bus, 0x18000);
  ASSERT_TRUE(table.WriteHeader(2));
  TrustletTableRow row;
  row.id = MakeTrustletId("A");
  row.code_base = 0x11000;
  row.code_end = 0x11100;
  row.data_base = 0x12000;
  row.data_end = 0x12100;
  row.entry = 0x11000;
  row.saved_sp = 0x120C0;
  row.flags = 0;
  row.measurement.fill(0x5A);
  ASSERT_TRUE(table.WriteRow(0, row));
  TrustletTableRow os_row;
  os_row.id = MakeTrustletId("OS");
  os_row.code_base = 0x13000;
  os_row.code_end = 0x13400;
  os_row.flags = kTtFlagOs;
  ASSERT_TRUE(table.WriteRow(1, os_row));

  EXPECT_EQ(table.ReadRowCount(), 2u);
  const std::optional<TrustletTableRow> got = table.ReadRow(0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, row.id);
  EXPECT_EQ(got->saved_sp, 0x120C0u);
  EXPECT_EQ(got->measurement, row.measurement);

  EXPECT_EQ(table.FindById(MakeTrustletId("OS")), 1);
  EXPECT_FALSE(table.FindById(MakeTrustletId("ZZ")).has_value());
  EXPECT_EQ(table.FindByIp(0x11080), 0);
  EXPECT_EQ(table.FindByIp(0x13000), 1);
  EXPECT_FALSE(table.FindByIp(0x20000).has_value());

  EXPECT_EQ(table.SavedSpAddress(0),
            0x18000u + kTrustletTableHeaderSize + kTtRowSavedSp);
  EXPECT_EQ(TrustletTableView::SizeFor(2),
            kTrustletTableHeaderSize + 2 * kTrustletTableRowSize);
}

TEST(TrustletTableTest, BadMagicYieldsNoCount) {
  Ram ram("ram", 0x10000, 0x1000);
  Bus bus;
  bus.Attach(&ram);
  TrustletTableView table(&bus, 0x10000);
  EXPECT_FALSE(table.ReadRowCount().has_value());
}

TEST(BuilderTest, ScaffoldAssemblesAndExposesSymbols) {
  TrustletBuildSpec spec;
  spec.name = "TST";
  spec.code_addr = 0x11000;
  spec.data_addr = 0x12000;
  spec.data_size = 0x400;
  spec.stack_size = 0x100;
  spec.body = R"(
tl_main:
    movi r1, 7
spin:
    jmp spin
)";
  Result<TrustletMeta> meta = BuildTrustlet(spec);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta->id, MakeTrustletId("TST"));
  EXPECT_EQ(meta->code_addr, 0x11000u);
  EXPECT_GT(meta->code.size(), 0u);
  // Entry vector is the first word; the TT-slot placeholder is the second.
  EXPECT_EQ(meta->sp_slot_patch_offset, 4u);
  EXPECT_GT(meta->start_offset, 8u);
  EXPECT_LT(meta->start_offset, meta->code.size());
}

TEST(BuilderTest, DefaultCallHandlerAppended) {
  TrustletBuildSpec spec;
  spec.name = "T2";
  spec.code_addr = 0x11000;
  spec.data_addr = 0x12000;
  spec.data_size = 0x400;
  spec.body = "tl_main:\n    jmp tl_main\n";
  const std::string source = TrustletScaffoldSource(spec);
  EXPECT_NE(source.find("tl_handle_call:"), std::string::npos);
  ASSERT_TRUE(BuildTrustlet(spec).ok());
}

TEST(BuilderTest, MissingMainRejected) {
  TrustletBuildSpec spec;
  spec.name = "T3";
  spec.code_addr = 0x11000;
  spec.data_addr = 0x12000;
  spec.data_size = 0x400;
  spec.body = "not_main:\n    halt\n";
  Result<TrustletMeta> meta = BuildTrustlet(spec);
  ASSERT_FALSE(meta.ok());
  EXPECT_NE(meta.status().message().find("tl_main"), std::string::npos);
}

TEST(BuilderTest, ValidationErrors) {
  TrustletBuildSpec spec;
  spec.name = "";
  EXPECT_FALSE(BuildTrustlet(spec).ok());
  spec.name = "TOOLONG";
  EXPECT_FALSE(BuildTrustlet(spec).ok());
  spec.name = "OK";
  spec.data_size = 16;
  spec.stack_size = 64;  // Stack larger than data region.
  EXPECT_FALSE(BuildTrustlet(spec).ok());
}


TEST(SystemImageTest, RejectsTwoOsRecords) {
  SystemImage image;
  TrustletMeta os1;
  os1.is_os = true;
  os1.code_addr = 0x20000;
  TrustletMeta os2;
  os2.is_os = true;
  os2.code_addr = 0x24000;
  image.Add(os1);
  image.Add(os2);
  Result<std::vector<uint8_t>> built = image.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.status().message().find("more than one OS"),
            std::string::npos);
}


TEST(GuestDefsTest, PreludeMatchesCppConstants) {
  // The generated .equ prelude must stay in lockstep with the C++ headers:
  // assemble .word references for a sample of symbols and compare.
  const std::string source = GuestDefs() + R"(
    .word MMIO_TIMER, MMIO_UART, MMIO_SHA, MMIO_MPU
    .word TIMER_PERIOD, TIMER_HANDLER, SHA_DIGEST_LE
    .word TT_ROW_SAVED_SP, TT_ROW_MEASUREMENT, TT_ROW_SIZE
    .word MPU_REGION_BANK, MPU_RULE_BANK
)";
  Result<AsmOutput> out = Assemble(source);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  uint32_t base = 0;
  const std::vector<uint8_t> image = out->Flatten(&base);
  ASSERT_EQ(image.size(), 12u * 4);
  const uint32_t expected[] = {
      kTimerBase,        kUartBase,         kShaBase,
      kMpuMmioBase,      kTimerRegPeriod,   kTimerRegHandler,
      kShaRegDigestLe,   kTtRowSavedSp,     kTtRowMeasurement,
      kTrustletTableRowSize, kMpuRegionBank, kMpuRuleBank};
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(LoadLe32(&image[i * 4]), expected[i]) << i;
  }
}

}  // namespace
}  // namespace trustlite
