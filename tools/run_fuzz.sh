#!/usr/bin/env bash
# Fixed-seed tlfuzz campaign runner (DESIGN.md Sec. 11).
#
# Runs the full-size differential campaign (10k seeded random TL32 programs,
# fast-path caches vs uncached reference) and the fault-injection campaign
# (seeded spurious-IRQ / bit-flip / hostile-DMA / MPU-reprogram / mid-run
# reset streams with Sec. 7 invariant checks) — first in a plain build, then
# under ASan/UBSan so cache-invalidation bugs fail loudly.
#
# Every tlfuzz failure line carries the responsible seed; reproduce with
#   tlfuzz diff   --seed <S> --programs 1
#   tlfuzz inject --seed <S> --campaigns 1
#
# usage: tools/run_fuzz.sh [build-dir] [asan-build-dir]
set -euo pipefail

REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_DIR/build}"
ASAN_BUILD_DIR="${2:-$REPO_DIR/build-asan-fuzz}"

DIFF_ARGS=(diff --programs 10000 --seed 1 --steps 400)
INJECT_ARGS=(inject --campaigns 20 --events 200 --seed 1 --steps 400)

if [[ ! -x "$BUILD_DIR/tools/tlfuzz" ]]; then
  cmake -B "$BUILD_DIR" -S "$REPO_DIR"
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target tlfuzz
fi

echo "== plain build: differential campaign =="
"$BUILD_DIR/tools/tlfuzz" "${DIFF_ARGS[@]}"
echo "== plain build: injection campaign =="
"$BUILD_DIR/tools/tlfuzz" "${INJECT_ARGS[@]}"

echo "== ASan/UBSan build =="
cmake -B "$ASAN_BUILD_DIR" -S "$REPO_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake --build "$ASAN_BUILD_DIR" -j "$(nproc)" --target tlfuzz

# Smaller corpus under sanitizers (~10x slower per step); same seed base so
# any plain-build finding stays reproducible here.
"$ASAN_BUILD_DIR/tools/tlfuzz" diff --programs 1500 --seed 1 --steps 400
"$ASAN_BUILD_DIR/tools/tlfuzz" inject --campaigns 4 --events 150 --seed 1

echo "run_fuzz: all campaigns clean"
