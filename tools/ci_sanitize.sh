#!/usr/bin/env bash
# ASan + UBSan build-and-test configuration: cache/invalidation bugs in the
# simulator fast path (decode cache, EA-MPU decision caches, bus routing
# memoization) surface as sanitizer failures instead of heisenbugs.
#
# usage: tools/ci_sanitize.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build-asan}"

# RelWithDebInfo (not Debug): the tier-1 suite runs with NDEBUG — some
# error-path tests drive Encode() past its debug-only asserts on purpose.
cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
