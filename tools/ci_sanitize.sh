#!/usr/bin/env bash
# Sanitizer build-and-test configurations:
#  * ASan + UBSan over the full suite: cache/invalidation bugs in the
#    simulator fast path (decode cache, EA-MPU decision caches, bus routing
#    memoization, superinstruction fusion's host backing pointers, the
#    data-access windows, and the SHA-256 engine ladder incl. the 4-way
#    batch hasher's tail padding) surface as sanitizer failures instead of
#    heisenbugs. The fusion/windowed-differential and sha256_engine suites
#    run here like everything else.
#  * TSan over the fleet/pool tests: the multi-threaded fleet executor
#    (QuantumPool work stealing, per-quantum Platform ownership handoff,
#    DESIGN.md §13) must be race-free at any thread count; FleetDigest's
#    batched state hashing runs in these tests too.
#
# usage: tools/ci_sanitize.sh [asan-build-dir] [tsan-build-dir]
set -euo pipefail

BUILD_DIR="${1:-build-asan}"
TSAN_DIR="${2:-build-tsan}"
SRC_DIR="$(dirname "$0")/.."

# RelWithDebInfo (not Debug): the tier-1 suite runs with NDEBUG — some
# error-path tests drive Encode() past its debug-only asserts on purpose.
cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# TSan stage: fleet executor + RNG tests, the tlfleet smoke runs, the
# hostile-link campaigns, the update-campaign suites, and the tlfleetd
# control-plane suite — multi-threaded quanta with mid-run host-port
# tampering, an active link adversary, host-side apply/commit/rollback, and
# controller agents writing node DRAM between quanta are exactly where a
# data race would hide (ctest regex covers the gtest-discovered Fleet*/
# QuantumPool*/HostileCampaign*/ReplayWindow*/FleetUpdate*/FleetController*
# cases plus the ci_hostile, ci_update and ci_fleetd gates).
cmake -B "$TSAN_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
cmake --build "$TSAN_DIR" -j "$(nproc)" \
  --target fleet_test hostile_attest_test fleet_update_test fleetd_test \
  rng_test tlfleet tlfleetd tlfw
ctest --test-dir "$TSAN_DIR" --output-on-failure \
  -R 'Fleet|QuantumPool|LinkFabric|DeriveDeviceSeed|SplitMix|tlfleet|Hostile|ReplayWindow|ControlWire|ci_hostile|ci_update|ci_fleetd'
