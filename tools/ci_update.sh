#!/usr/bin/env bash
# Secure OTA update-campaign gate (DESIGN.md §16): exercises the full
# .tlfw → fleet rollout pipeline and enforces:
#  * tlfw pack/info/sign/verify round-trips, and a wrong key fails closed,
#  * a 256-node warm-boot staged rollout (10% canary) commits every node,
#    with transcripts and fleet digests bit-identical at --threads 1 and 8,
#  * a mid-campaign canary tamper halts the rollout, rolls back the
#    uncommitted canaries and quarantines the tampered node,
#  * replaying the previous (still correctly signed) image is rejected
#    fleet-wide by the monotonic anti-rollback counter.
#
# usage: tools/ci_update.sh <tlfleet-binary> <tlfw-binary> <guest.s> [work-dir]
set -euo pipefail

TLFLEET="${1:?usage: ci_update.sh <tlfleet> <tlfw> <guest.s> [work-dir]}"
TLFW="${2:?usage: ci_update.sh <tlfleet> <tlfw> <guest.s> [work-dir]}"
GUEST="${3:?usage: ci_update.sh <tlfleet> <tlfw> <guest.s> [work-dir]}"
WORK="${4:-$(mktemp -d)}"
mkdir -p "$WORK"

fail() { echo "ci_update: FAIL: $*" >&2; exit 1; }

# --- Stage 1: container tool round-trip. -----------------------------------
"$TLFW" pack "$WORK/v2.tlfw" --version 2 --name ci-v2 \
    --payload-seed 11 --payload-bytes 1200 > /dev/null \
    || fail "tlfw pack v2"
"$TLFW" pack "$WORK/v3.tlfw" --version 3 --name ci-v3 \
    --payload-seed 12 --payload-bytes 900 > /dev/null \
    || fail "tlfw pack v3"
"$TLFW" info "$WORK/v2.tlfw" | grep -q "version: 2" || fail "tlfw info"
"$TLFW" sign "$WORK/v2.tlfw" "$WORK/v2s.tlfw" --fleet-seed 9 --node 0 \
    > /dev/null || fail "tlfw sign"
"$TLFW" verify "$WORK/v2s.tlfw" --fleet-seed 9 --node 0 > /dev/null \
    || fail "tlfw verify (right key)"
if "$TLFW" verify "$WORK/v2s.tlfw" --fleet-seed 9 --node 1 > /dev/null 2>&1
then
  fail "tlfw verify accepted a wrong-device key"
fi
echo "ci_update: tlfw round-trip ok"

# --- Stage 2: clean 256-node staged rollout, deterministic across threads. -
for threads in 1 8; do
  "$TLFLEET" run "$GUEST" --attest --warm-boot --nodes 256 --seed 9 \
      --threads "$threads" --update-image "$WORK/v2.tlfw" --canary-pct 10 \
      --transcript "$WORK/clean_t${threads}.txt" \
      > "$WORK/clean_out_t${threads}.txt" \
      || fail "clean rollout --threads $threads exited nonzero"
done
grep -q "update\[0\]: version=2 phase=done committed=256 rolledback=0 \
quarantined=0 rejected=0 canaries=26" "$WORK/clean_out_t1.txt" \
    || fail "clean rollout summary mismatch"
cmp -s "$WORK/clean_t1.txt" "$WORK/clean_t8.txt" \
    || fail "clean rollout transcripts differ between --threads 1 and 8"
[ "$(grep '^fleet-digest:' "$WORK/clean_out_t1.txt")" = \
  "$(grep '^fleet-digest:' "$WORK/clean_out_t8.txt")" ] \
    || fail "clean rollout fleet digests differ between --threads 1 and 8"
echo "ci_update: clean 256-node rollout ok"

# --- Stage 3: mid-campaign tamper => halt, rollback, quarantine. -----------
"$TLFLEET" run "$GUEST" --attest --nodes 64 --seed 9 \
    --update-image "$WORK/v2.tlfw" --canary-pct 10 --halt-on-quarantine \
    --update-tamper-canary --transcript "$WORK/tamper.txt" \
    > "$WORK/tamper_out.txt" \
    || fail "tamper rollout exited nonzero"
grep -q "update\[0\]: version=2 phase=aborted committed=0 rolledback=6 \
quarantined=1 rejected=0 canaries=7" "$WORK/tamper_out.txt" \
    || fail "tamper rollout summary mismatch"
grep -q "aborted: 1 node(s) quarantined" "$WORK/tamper.txt" \
    || fail "tamper transcript missing the abort"
echo "ci_update: halt-on-quarantine rollback ok"

# --- Stage 4: anti-rollback replay rejected fleet-wide. --------------------
if "$TLFLEET" run "$GUEST" --attest --nodes 64 --seed 9 \
    --update-image "$WORK/v3.tlfw" --update-image "$WORK/v2.tlfw" \
    --canary-pct 100 --transcript "$WORK/replay.txt" \
    > "$WORK/replay_out.txt"
then
  fail "replaying an older image exited zero"
fi
grep -q "update\[0\]: version=3 phase=done committed=64" \
    "$WORK/replay_out.txt" || fail "replay stage: v3 rollout failed"
grep -q "update\[1\]: version=2 phase=aborted committed=0 rolledback=0 \
quarantined=0 rejected=64" "$WORK/replay_out.txt" \
    || fail "replay stage: v2 not rejected on all 64 nodes"
grep -q "anti-rollback" "$WORK/replay.txt" \
    || fail "replay transcript missing the anti-rollback rejection"
echo "ci_update: fleet-wide anti-rollback rejection ok"

echo "ci_update: all checks passed"
