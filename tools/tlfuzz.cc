// Copyright 2026 The TrustLite Reproduction Authors.
//
// tlfuzz: fault-injection and differential-execution campaigns against the
// TrustLite platform model (DESIGN.md Sec. 11).
//
//   tlfuzz diff   [--programs N] [--seed S] [--steps M]
//       Runs N seeded random TL32 programs (seeds S, S+1, ...) through the
//       differential executor: fast-path caches enabled vs force-disabled,
//       architectural state compared in lockstep. Exit 1 on divergence.
//
//   tlfuzz inject [--campaigns N] [--events E] [--seed S] [--steps M]
//       Runs N seeded fault-injection campaigns (spurious IRQs, bit-flips,
//       hostile DMA, MPU reprogramming, mid-run resets) on a booted
//       victim-trustlet + nanOS platform, re-checking the DESIGN.md Sec. 7
//       invariants after every event. Exit 1 on violation.
//
// Every failure report prints the responsible seed; re-running with
// --seed <that seed> --programs 1 (or --campaigns 1) reproduces it exactly.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/harness/differential.h"
#include "src/harness/injector.h"

namespace {

using trustlite::Divergence;
using trustlite::InjectionCampaignConfig;
using trustlite::InjectionCampaignResult;
using trustlite::InjectionEvent;

uint64_t ParseU64(const char* text) {
  return static_cast<uint64_t>(std::strtoull(text, nullptr, 0));
}

int Usage() {
  std::fprintf(stderr,
               "usage: tlfuzz diff   [--programs N] [--seed S] [--steps M]\n"
               "       tlfuzz inject [--campaigns N] [--events E] "
               "[--seed S] [--steps M]\n");
  return 2;
}

int RunDiff(uint64_t programs, uint64_t seed0, uint64_t steps) {
  uint64_t divergences = 0;
  for (uint64_t i = 0; i < programs; ++i) {
    const uint64_t seed = seed0 + i;
    if (std::optional<Divergence> d =
            trustlite::RunRandomProgramDiff(seed, steps)) {
      ++divergences;
      std::printf("DIVERGENCE seed=%llu step=%llu: %s\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(d->step), d->what.c_str());
    }
    if ((i + 1) % 1000 == 0) {
      std::printf("diff: %llu/%llu programs, %llu divergences\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(programs),
                  static_cast<unsigned long long>(divergences));
      std::fflush(stdout);
    }
  }
  std::printf("diff campaign: %llu programs x %llu steps, seeds [%llu, %llu]"
              ", %llu divergences\n",
              static_cast<unsigned long long>(programs),
              static_cast<unsigned long long>(steps),
              static_cast<unsigned long long>(seed0),
              static_cast<unsigned long long>(seed0 + programs - 1),
              static_cast<unsigned long long>(divergences));
  return divergences == 0 ? 0 : 1;
}

int RunInject(uint64_t campaigns, int events, uint64_t seed0,
              uint64_t steps_between) {
  static const char* kEventNames[] = {"spurious-irq", "ram-bit-flip",
                                      "reg-bit-flip", "hostile-dma",
                                      "mpu-reprogram", "mid-run-reset"};
  uint64_t violations = 0;
  InjectionCampaignResult totals;
  for (uint64_t i = 0; i < campaigns; ++i) {
    InjectionCampaignConfig config;
    config.seed = seed0 + i;
    config.events = events;
    config.steps_between = steps_between;
    const InjectionCampaignResult result = RunInjectionCampaign(config);
    totals.steps_executed += result.steps_executed;
    totals.events_injected += result.events_injected;
    totals.halts_recovered += result.halts_recovered;
    totals.dma_faults += result.dma_faults;
    totals.mpu_denials += result.mpu_denials;
    totals.secure_entries += result.secure_entries;
    totals.invariant_checks += result.invariant_checks;
    for (int e = 0; e < static_cast<int>(InjectionEvent::kNumEvents); ++e) {
      totals.event_counts[e] += result.event_counts[e];
    }
    if (!result.ok()) {
      ++violations;
      std::printf("VIOLATION seed=%llu:\n",
                  static_cast<unsigned long long>(config.seed));
      for (const std::string& v : result.violations) {
        std::printf("  %s\n", v.c_str());
      }
    }
  }
  std::printf("injection campaign: %llu campaigns, seeds [%llu, %llu]\n",
              static_cast<unsigned long long>(campaigns),
              static_cast<unsigned long long>(seed0),
              static_cast<unsigned long long>(seed0 + campaigns - 1));
  std::printf("  steps=%llu events=%llu checks=%llu secure_entries=%llu\n",
              static_cast<unsigned long long>(totals.steps_executed),
              static_cast<unsigned long long>(totals.events_injected),
              static_cast<unsigned long long>(totals.invariant_checks),
              static_cast<unsigned long long>(totals.secure_entries));
  std::printf(
      "  halts_recovered=%llu dma_faults=%llu mpu_denials=%llu\n",
      static_cast<unsigned long long>(totals.halts_recovered),
      static_cast<unsigned long long>(totals.dma_faults),
      static_cast<unsigned long long>(totals.mpu_denials));
  for (int e = 0; e < static_cast<int>(InjectionEvent::kNumEvents); ++e) {
    std::printf("  %-14s %llu\n", kEventNames[e],
                static_cast<unsigned long long>(totals.event_counts[e]));
  }
  std::printf("  violations=%llu\n",
              static_cast<unsigned long long>(violations));
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string mode = argv[1];
  uint64_t programs = 10000;
  uint64_t campaigns = 20;
  int events = 200;
  uint64_t seed = 1;
  uint64_t steps = 0;  // 0 = per-mode default.
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--programs" && has_value) {
      programs = ParseU64(argv[++i]);
    } else if (arg == "--campaigns" && has_value) {
      campaigns = ParseU64(argv[++i]);
    } else if (arg == "--events" && has_value) {
      events = static_cast<int>(ParseU64(argv[++i]));
    } else if (arg == "--seed" && has_value) {
      seed = ParseU64(argv[++i]);
    } else if (arg == "--steps" && has_value) {
      steps = ParseU64(argv[++i]);
    } else {
      return Usage();
    }
  }
  if (mode == "diff") {
    return RunDiff(programs, seed, steps == 0 ? 400 : steps);
  }
  if (mode == "inject") {
    return RunInject(campaigns, events, seed, steps == 0 ? 400 : steps);
  }
  return Usage();
}
