#!/usr/bin/env bash
# Dispatch-ladder CI gate (DESIGN.md §15): the interpreter must behave
# bit-identically under both dispatch strategies.
#
#  1. Portable-switch stage: configure a build with
#     -DTRUSTLITE_PORTABLE_DISPATCH=ON (the token-threaded computed-goto
#     loop compiled out, plain switch dispatch in its place) and run the
#     dispatch-sensitive suites there — CPU semantics, fast-path
#     invalidation, superinstruction fusion, and the differential corpus
#     including the windowed fused-run-loop corpus.
#
#  2. Threaded stage: against the default (computed-goto) build, re-run the
#     fusion suite and the windowed differential corpus, which drives the
#     fast platform through Cpu::Run so threaded dispatch, fusion and the
#     data-access windows are all live, plus a tlfuzz differential smoke.
#
# usage: tools/ci_dispatch.sh [portable-build-dir] [threaded-build-dir]
set -euo pipefail

PORTABLE_DIR="${1:-build-portable-dispatch}"
THREADED_DIR="${2:-build}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"

echo "== stage 1: portable switch dispatch (TRUSTLITE_PORTABLE_DISPATCH=ON) =="
cmake -B "$PORTABLE_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=Release \
  -DTRUSTLITE_PORTABLE_DISPATCH=ON >/dev/null
cmake --build "$PORTABLE_DIR" -j "$JOBS" \
  --target cpu_test fastpath_test fusion_test differential_test
"$PORTABLE_DIR"/tests/cpu_test --gtest_brief=1
"$PORTABLE_DIR"/tests/fastpath_test --gtest_brief=1
"$PORTABLE_DIR"/tests/fusion_test --gtest_brief=1
"$PORTABLE_DIR"/tests/differential_test --gtest_brief=1 \
  --gtest_filter='*Windowed*:DifferentialRegression*:*/DifferentialCorpusTest.*/0'

echo "== stage 2: threaded dispatch (default build) =="
cmake --build "$THREADED_DIR" -j "$JOBS" \
  --target fusion_test differential_test tlfuzz
"$THREADED_DIR"/tests/fusion_test --gtest_brief=1
"$THREADED_DIR"/tests/differential_test --gtest_brief=1 \
  --gtest_filter='*Windowed*'
"$THREADED_DIR"/tools/tlfuzz diff --programs 200 --seed 7

echo "ci_dispatch: all checks passed"
