// Copyright 2026 The TrustLite Reproduction Authors.
//
// tlsim — command-line driver for the TL32 toolchain and simulator.
//
//   tlsim asm   <file.s> [-o out.bin] [--origin ADDR] [--symbols]
//   tlsim disas <file.bin> [--base ADDR]
//   tlsim run   <file.s> [--entry ADDR|symbol] [--sp ADDR] [--max N]
//               [--trace] [--uart-in TEXT] [--no-mpu] [--stats]
//               [--profile] [--trace-json FILE]
//               [--snapshot-every N] [--snapshot-out PREFIX]
//   tlsim run   --resume-from FILE [file.s] [--max N] ...
//   tlsim debug <file.s> [--entry ADDR|symbol] [--sp ADDR]
//
// `run` assembles the program, loads every chunk into the reference
// platform, executes it, and reports UART output, halt state, registers and
// simulated cycles. --snapshot-every N writes a platform snapshot
// (docs/SNAPSHOT_FORMAT.md) every N retired instructions to
// PREFIX-NNNN.tlsnap; --resume-from restores one and continues executing,
// bit-identically to the uninterrupted run (no file.s needed — the program
// travels inside the snapshot). With --trace every retired instruction is disassembled
// to stderr. --profile prints a per-lane cycle-accounting table (one lane
// per assembled chunk) and --trace-json exports a Chrome trace-event file
// viewable at https://ui.perfetto.dev (DESIGN.md §12).
//
// `debug` drops into a small REPL:
//   s [n]        step n instructions (default 1), printing each
//   c [n]        continue until halt/breakpoint (or n instructions)
//   b ADDR|sym   set a breakpoint        del ADDR|sym   remove it
//   r            registers               m ADDR [n]     dump n words
//   d [ADDR] [n] disassemble             sym            list symbols
//   u            uart output so far      q              quit

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/isa/assembler.h"
#include "src/isa/disassembler.h"
#include "src/platform/observe/chrome_trace.h"
#include "src/platform/observe/json.h"
#include "src/platform/observe/profiler.h"
#include "src/platform/platform.h"
#include "src/snapshot/snapshot.h"

namespace trustlite {
namespace {

int Usage(bool help = false) {
  std::fprintf(
      help ? stdout : stderr,
      "usage:\n"
      "  tlsim asm   <file.s> [-o out.bin] [--origin ADDR] [--symbols]\n"
      "  tlsim disas <file.bin> [--base ADDR]\n"
      "  tlsim run   <file.s> [--entry ADDR|symbol] [--sp ADDR] [--max N]\n"
      "              [--trace] [--uart-in TEXT] [--no-mpu] [--stats]\n"
      "              [--profile] [--trace-json FILE]\n"
      "              [--snapshot-every N] [--snapshot-out PREFIX]\n"
      "  tlsim run   --resume-from FILE [file.s] [--max N] ...\n"
      "  tlsim debug <file.s> [--entry ADDR|symbol] [--sp ADDR]\n"
      "\n"
      "  --snapshot-every N   write a snapshot every N retired instructions\n"
      "  --snapshot-out P     snapshot filename prefix (default tlsim-snap)\n"
      "  --resume-from FILE   restore FILE and continue the run\n");
  return help ? 0 : 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

uint32_t ParseAddr(const std::string& text) {
  return static_cast<uint32_t>(std::strtoul(text.c_str(), nullptr, 0));
}

int CmdAsm(const std::vector<std::string>& args) {
  std::string input;
  std::string output;
  uint32_t origin = 0;
  bool symbols = false;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) {
      output = args[++i];
    } else if (args[i] == "--origin" && i + 1 < args.size()) {
      origin = ParseAddr(args[++i]);
    } else if (args[i] == "--symbols") {
      symbols = true;
    } else if (input.empty()) {
      input = args[i];
    } else {
      return Usage();
    }
  }
  if (input.empty()) {
    return Usage();
  }
  std::string source;
  if (!ReadFile(input, &source)) {
    std::fprintf(stderr, "tlsim: cannot read %s\n", input.c_str());
    return 1;
  }
  Result<AsmOutput> out = Assemble(source, origin);
  if (!out.ok()) {
    std::fprintf(stderr, "tlsim: %s\n", out.status().ToString().c_str());
    return 1;
  }
  uint32_t base = 0;
  const std::vector<uint8_t> image = out->Flatten(&base);
  std::printf("assembled %zu bytes at %s (%zu chunks)\n", image.size(),
              Hex32(base).c_str(), out->chunks.size());
  if (symbols) {
    for (const auto& [name, value] : out->symbols) {
      std::printf("  %-24s %s\n", name.c_str(), Hex32(value).c_str());
    }
  }
  if (!output.empty()) {
    std::ofstream file(output, std::ios::binary);
    file.write(reinterpret_cast<const char*>(image.data()),
               static_cast<std::streamsize>(image.size()));
    if (!file) {
      std::fprintf(stderr, "tlsim: cannot write %s\n", output.c_str());
      return 1;
    }
    std::printf("wrote %s\n", output.c_str());
  }
  return 0;
}

int CmdDisas(const std::vector<std::string>& args) {
  std::string input;
  uint32_t base = 0;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--base" && i + 1 < args.size()) {
      base = ParseAddr(args[++i]);
    } else if (input.empty()) {
      input = args[i];
    } else {
      return Usage();
    }
  }
  if (input.empty()) {
    return Usage();
  }
  std::string blob;
  if (!ReadFile(input, &blob)) {
    std::fprintf(stderr, "tlsim: cannot read %s\n", input.c_str());
    return 1;
  }
  for (size_t offset = 0; offset + 4 <= blob.size(); offset += 4) {
    const uint32_t word =
        LoadLe32(reinterpret_cast<const uint8_t*>(blob.data()) + offset);
    const uint32_t addr = base + static_cast<uint32_t>(offset);
    std::printf("%08x:  %08x  %s\n", addr, word,
                DisassembleWord(word, addr).c_str());
  }
  return 0;
}

int CmdRun(const std::vector<std::string>& args) {
  std::string input;
  std::string entry_text;
  uint32_t sp = 0x0004'0000;
  uint64_t max_instructions = 1'000'000;
  bool trace = false;
  bool no_mpu = false;
  bool stats = false;
  bool profile = false;
  std::string trace_json;
  std::string uart_in;
  uint64_t snapshot_every = 0;
  std::string snapshot_out = "tlsim-snap";
  std::string resume_from;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--entry" && i + 1 < args.size()) {
      entry_text = args[++i];
    } else if (args[i] == "--sp" && i + 1 < args.size()) {
      sp = ParseAddr(args[++i]);
    } else if (args[i] == "--max" && i + 1 < args.size()) {
      max_instructions = std::strtoull(args[++i].c_str(), nullptr, 0);
    } else if (args[i] == "--trace") {
      trace = true;
    } else if (args[i] == "--no-mpu") {
      no_mpu = true;
    } else if (args[i] == "--stats") {
      stats = true;
    } else if (args[i] == "--profile") {
      profile = true;
    } else if (args[i] == "--trace-json" && i + 1 < args.size()) {
      trace_json = args[++i];
    } else if (args[i] == "--uart-in" && i + 1 < args.size()) {
      uart_in = args[++i];
    } else if (args[i] == "--snapshot-every" && i + 1 < args.size()) {
      snapshot_every = std::strtoull(args[++i].c_str(), nullptr, 0);
    } else if (args[i] == "--snapshot-out" && i + 1 < args.size()) {
      snapshot_out = args[++i];
    } else if (args[i] == "--resume-from" && i + 1 < args.size()) {
      resume_from = args[++i];
    } else if (input.empty()) {
      input = args[i];
    } else {
      return Usage();
    }
  }
  if (input.empty() && resume_from.empty()) {
    return Usage();
  }

  // The program either comes from file.s (cold run) or travels inside the
  // snapshot (--resume-from; a file.s argument is then ignored).
  Result<AsmOutput> out(Status::Ok());
  if (resume_from.empty()) {
    std::string source;
    if (!ReadFile(input, &source)) {
      std::fprintf(stderr, "tlsim: cannot read %s\n", input.c_str());
      return 1;
    }
    out = Assemble(source, 0x0003'0000);
    if (!out.ok()) {
      std::fprintf(stderr, "tlsim: %s\n", out.status().ToString().c_str());
      return 1;
    }
  }

  PlatformConfig config;
  config.with_mpu = !no_mpu;
  std::vector<uint8_t> resume_bytes;
  if (!resume_from.empty()) {
    Result<std::vector<uint8_t>> bytes = ReadSnapshotFile(resume_from);
    if (!bytes.ok()) {
      std::fprintf(stderr, "tlsim: %s\n", bytes.status().ToString().c_str());
      return 1;
    }
    resume_bytes = std::move(*bytes);
    // The snapshot records the platform shape it was taken on; the platform
    // must be rebuilt to match or the restore fails closed.
    Result<PlatformConfig> snap_config = SnapshotPlatformConfig(resume_bytes);
    if (!snap_config.ok()) {
      std::fprintf(stderr, "tlsim: %s\n",
                   snap_config.status().ToString().c_str());
      return 1;
    }
    config = *snap_config;
  }
  Platform platform(config);
  if (resume_from.empty()) {
    for (const AsmChunk& chunk : out->chunks) {
      if (!platform.bus().HostWriteBytes(chunk.base, chunk.bytes)) {
        std::fprintf(stderr, "tlsim: chunk at %s does not map to any device\n",
                     Hex32(chunk.base).c_str());
        return 1;
      }
    }
  } else {
    Status restored = RestorePlatform(&platform, resume_bytes);
    if (!restored.ok()) {
      std::fprintf(stderr, "tlsim: %s\n", restored.ToString().c_str());
      return 1;
    }
    std::printf("resumed from %s at %llu instructions\n", resume_from.c_str(),
                static_cast<unsigned long long>(
                    platform.cpu().stats().instructions));
  }

  uint32_t entry = 0;
  if (resume_from.empty()) {
    entry = out->chunks.empty() ? 0 : out->chunks.front().base;
    if (!entry_text.empty()) {
      auto it = out->symbols.find(entry_text);
      entry = it != out->symbols.end() ? it->second : ParseAddr(entry_text);
    } else {
      auto it = out->symbols.find("start");
      if (it != out->symbols.end()) {
        entry = it->second;
      }
    }
  }
  if (!uart_in.empty()) {
    platform.uart().PushInput(uart_in);
  }

  if (trace) {
    platform.cpu().SetTraceHook([](uint32_t ip, const Instruction& insn) {
      std::fprintf(stderr, "%08x:  %s\n", ip, Disassemble(insn, ip).c_str());
    });
  }

  // Observability sinks (DESIGN.md §12): one lane per assembled chunk so a
  // program with a separate .org'd ISR or data island profiles per region.
  TrustletProfiler profiler;
  ChromeTraceWriter trace_writer;
  if ((profile || !trace_json.empty()) && resume_from.empty()) {
    for (const AsmChunk& chunk : out->chunks) {
      char lane_name[32];
      std::snprintf(lane_name, sizeof(lane_name), "code@%08x", chunk.base);
      const uint32_t end =
          chunk.base + static_cast<uint32_t>(chunk.bytes.size());
      profiler.AddLane(lane_name, chunk.base, end);
      trace_writer.AddLane(lane_name, chunk.base, end);
    }
    if (profile) {
      platform.AddEventSink(&profiler);
    }
    if (!trace_json.empty()) {
      platform.AddEventSink(&trace_writer);
    }
  }

  if (resume_from.empty()) {
    platform.cpu().Reset(entry);
    platform.cpu().set_reg(kRegSp, sp);
  }
  if (snapshot_every > 0) {
    // Periodic checkpointing: run in slices, snapshotting at each boundary.
    uint64_t executed = 0;
    int sequence = 0;
    while (!platform.cpu().halted() && executed < max_instructions) {
      const uint64_t before = platform.cpu().stats().instructions;
      platform.Run(std::min(snapshot_every, max_instructions - executed));
      const uint64_t retired = platform.cpu().stats().instructions - before;
      if (retired == 0) {
        break;  // No forward progress (immediate halt): stop checkpointing.
      }
      executed += retired;
      char path[512];
      std::snprintf(path, sizeof(path), "%s-%04d.tlsnap",
                    snapshot_out.c_str(), ++sequence);
      Result<std::vector<uint8_t>> snapshot = SavePlatform(platform);
      Status written =
          snapshot.ok() ? WriteSnapshotFile(path, *snapshot)
                        : snapshot.status();
      if (!written.ok()) {
        std::fprintf(stderr, "tlsim: %s\n", written.ToString().c_str());
        return 1;
      }
      std::printf("snapshot: wrote %s at %llu instructions\n", path,
                  static_cast<unsigned long long>(
                      platform.cpu().stats().instructions));
    }
  } else {
    platform.Run(max_instructions);
  }

  const Cpu& cpu = platform.cpu();
  if (!platform.uart().output().empty()) {
    std::printf("--- uart ---\n%s\n------------\n",
                platform.uart().output().c_str());
  }
  std::printf("state: %s", cpu.halted() ? "halted" : "running (budget spent)");
  if (cpu.trap().valid) {
    std::printf("  [trap: %s, class %u, ip %s, addr %s]", cpu.trap().reason,
                cpu.trap().exception_class, Hex32(cpu.trap().ip).c_str(),
                Hex32(cpu.trap().addr).c_str());
  }
  std::printf("\ninstructions: %llu   cycles: %llu   exceptions: %llu\n",
              static_cast<unsigned long long>(cpu.stats().instructions),
              static_cast<unsigned long long>(cpu.cycles()),
              static_cast<unsigned long long>(cpu.stats().exceptions));
  for (int i = 0; i < kNumRegisters; ++i) {
    std::printf("%4s=%08x%s", RegisterName(i).c_str(), cpu.reg(i),
                (i % 4 == 3) ? "\n" : "  ");
  }
  std::printf("  ip=%08x flags=%08x\n", cpu.ip(), cpu.flags());
  if (stats) {
    const FastPathStats fp = platform.fast_path_stats();
    auto print_cache = [](const char* name, uint64_t hits, uint64_t misses) {
      const uint64_t total = hits + misses;
      std::printf("  %-12s hits %-12llu misses %-12llu hit-rate %5.1f%%\n",
                  name, static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(misses),
                  total == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                         static_cast<double>(total));
    };
    std::printf("--- fast-path stats ---\n");
    print_cache("bus-route", fp.bus.route_hits, fp.bus.route_misses);
    print_cache("decode", fp.decode_hits, fp.decode_misses);
    print_cache("data-window", fp.data_window_hits, fp.data_window_misses);
    // Fusion "hit rate" = share of all retired instructions that retired
    // from inside a fused group (DESIGN.md §15).
    const uint64_t retired_total = cpu.stats().instructions;
    std::printf(
        "  %-12s groups %-11llu retired %-11llu fused-rate %5.1f%%\n",
        "fusion", static_cast<unsigned long long>(fp.fusion_groups),
        static_cast<unsigned long long>(fp.fusion_retired),
        retired_total == 0 ? 0.0
                           : 100.0 * static_cast<double>(fp.fusion_retired) /
                                 static_cast<double>(retired_total));
    std::printf("  %-12s builds %-11llu invalidations %llu\n", "fusion-cache",
                static_cast<unsigned long long>(fp.fusion_builds),
                static_cast<unsigned long long>(fp.fusion_invalidations));
    if (!no_mpu) {
      print_cache("mpu-subject", fp.mpu.subject_hits, fp.mpu.subject_misses);
      print_cache("mpu-decision", fp.mpu.decision_hits, fp.mpu.decision_misses);
      print_cache("mpu-fetch", fp.mpu.fetch_hits, fp.mpu.fetch_misses);
      std::printf("  mpu checks %llu   faults %llu   mmio writes %llu\n",
                  static_cast<unsigned long long>(fp.mpu.checks),
                  static_cast<unsigned long long>(fp.mpu.faults),
                  static_cast<unsigned long long>(fp.mpu.mmio_writes));
    }
  }
  if (profile) {
    const FastPathStats fp = platform.fast_path_stats();
    profiler.SetFastPathCounters(fp.decode_hits, fp.decode_misses,
                                 fp.fusion_groups, fp.fusion_retired,
                                 cpu.stats().instructions);
    std::printf("--- profile ---\n%s", profiler.ToString().c_str());
    platform.RemoveEventSink(&profiler);
  }
  if (!trace_json.empty()) {
    if (!trace_writer.WriteFile(trace_json)) {
      std::fprintf(stderr, "tlsim: cannot write %s\n", trace_json.c_str());
      return 1;
    }
    std::string json_error;
    const bool valid = JsonParses(trace_writer.Json(), &json_error);
    std::printf("trace-json: wrote %s (%zu events%s, %s)\n", trace_json.c_str(),
                trace_writer.event_count(),
                trace_writer.dropped() == 0
                    ? ""
                    : ", overflow: oldest spans kept, tail dropped",
                valid ? "valid JSON" : json_error.c_str());
    platform.RemoveEventSink(&trace_writer);
  }
  return cpu.trap().valid ? 1 : 0;
}

struct LoadedProgram {
  Platform* platform;
  std::map<std::string, uint32_t> symbols;
  uint32_t entry = 0;
};

uint32_t ResolveAddr(const LoadedProgram& prog, const std::string& text) {
  auto it = prog.symbols.find(text);
  if (it != prog.symbols.end()) {
    return it->second;
  }
  return ParseAddr(text);
}

void PrintRegs(const Cpu& cpu) {
  for (int i = 0; i < kNumRegisters; ++i) {
    std::printf("%4s=%08x%s", RegisterName(i).c_str(), cpu.reg(i),
                (i % 4 == 3) ? "\n" : "  ");
  }
  std::printf("  ip=%08x flags=%08x cycles=%llu\n", cpu.ip(), cpu.flags(),
              static_cast<unsigned long long>(cpu.cycles()));
}

void PrintDisas(Platform& platform, uint32_t addr, int count) {
  for (int i = 0; i < count; ++i) {
    const uint32_t a = addr + static_cast<uint32_t>(i) * 4;
    uint32_t word = 0;
    if (!platform.bus().HostReadWord(a, &word)) {
      std::printf("%08x:  <unmapped>\n", a);
      return;
    }
    std::printf("%08x:%s %08x  %s\n", a,
                a == platform.cpu().ip() ? ">" : " ", word,
                DisassembleWord(word, a).c_str());
  }
}

int CmdDebug(const std::vector<std::string>& args) {
  std::string input;
  std::string entry_text;
  uint32_t sp = 0x0004'0000;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--entry" && i + 1 < args.size()) {
      entry_text = args[++i];
    } else if (args[i] == "--sp" && i + 1 < args.size()) {
      sp = ParseAddr(args[++i]);
    } else if (input.empty()) {
      input = args[i];
    } else {
      return Usage();
    }
  }
  if (input.empty()) {
    return Usage();
  }
  std::string source;
  if (!ReadFile(input, &source)) {
    std::fprintf(stderr, "tlsim: cannot read %s\n", input.c_str());
    return 1;
  }
  Result<AsmOutput> out = Assemble(source, 0x0003'0000);
  if (!out.ok()) {
    std::fprintf(stderr, "tlsim: %s\n", out.status().ToString().c_str());
    return 1;
  }
  PlatformConfig config;
  Platform platform(config);
  for (const AsmChunk& chunk : out->chunks) {
    platform.bus().HostWriteBytes(chunk.base, chunk.bytes);
  }
  LoadedProgram prog{&platform, out->symbols, 0};
  prog.entry = out->chunks.empty() ? 0 : out->chunks.front().base;
  if (!entry_text.empty()) {
    prog.entry = ResolveAddr(prog, entry_text);
  } else if (out->symbols.count("start") != 0) {
    prog.entry = out->symbols.at("start");
  }
  platform.cpu().Reset(prog.entry);
  platform.cpu().set_reg(kRegSp, sp);

  std::printf("tlsim debugger — entry %s, 'q' to quit\n",
              Hex32(prog.entry).c_str());
  std::set<uint32_t> breakpoints;
  std::string line;
  size_t uart_seen = 0;
  auto step_one = [&](bool print) {
    uint32_t word = 0;
    const uint32_t ip = platform.cpu().ip();
    if (print && platform.bus().HostReadWord(ip, &word)) {
      std::printf("%08x:  %s\n", ip, DisassembleWord(word, ip).c_str());
    }
    return platform.cpu().Step();
  };
  for (;;) {
    // Surface freshly produced UART output.
    const std::string& uart = platform.uart().output();
    if (uart.size() > uart_seen) {
      std::printf("[uart] %s\n", uart.substr(uart_seen).c_str());
      uart_seen = uart.size();
    }
    std::printf("(tlsim) ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    std::istringstream iss(line);
    std::string cmd;
    iss >> cmd;
    if (cmd.empty()) {
      continue;
    }
    if (cmd == "q" || cmd == "quit") {
      break;
    }
    if (cmd == "s" || cmd == "step") {
      uint64_t n = 1;
      iss >> n;
      for (uint64_t i = 0; i < std::max<uint64_t>(n, 1); ++i) {
        if (step_one(true) == StepEvent::kHalted) {
          std::printf("halted%s\n",
                      platform.cpu().trap().valid ? " (trap)" : "");
          break;
        }
      }
    } else if (cmd == "c" || cmd == "continue") {
      uint64_t budget = 10'000'000;
      iss >> budget;
      uint64_t executed = 0;
      while (executed++ < budget) {
        if (step_one(false) == StepEvent::kHalted) {
          std::printf("halted at %s%s\n", Hex32(platform.cpu().ip()).c_str(),
                      platform.cpu().trap().valid ? " (trap)" : "");
          break;
        }
        if (breakpoints.count(platform.cpu().ip()) != 0) {
          std::printf("breakpoint at %s\n",
                      Hex32(platform.cpu().ip()).c_str());
          break;
        }
      }
    } else if (cmd == "b" || cmd == "break") {
      std::string where;
      iss >> where;
      const uint32_t addr = ResolveAddr(prog, where);
      breakpoints.insert(addr);
      std::printf("breakpoint set at %s\n", Hex32(addr).c_str());
    } else if (cmd == "del") {
      std::string where;
      iss >> where;
      breakpoints.erase(ResolveAddr(prog, where));
    } else if (cmd == "r" || cmd == "regs") {
      PrintRegs(platform.cpu());
    } else if (cmd == "m" || cmd == "mem") {
      std::string where;
      int count = 8;
      iss >> where >> count;
      uint32_t addr = ResolveAddr(prog, where) & ~3u;
      for (int i = 0; i < count; ++i) {
        uint32_t word = 0;
        if (!platform.bus().HostReadWord(addr, &word)) {
          std::printf("%08x: <unmapped>\n", addr);
          break;
        }
        std::printf("%08x: %08x\n", addr, word);
        addr += 4;
      }
    } else if (cmd == "d" || cmd == "disas") {
      std::string where;
      int count = 8;
      iss >> where >> count;
      const uint32_t addr =
          where.empty() ? platform.cpu().ip() : ResolveAddr(prog, where);
      PrintDisas(platform, addr, count);
    } else if (cmd == "sym") {
      for (const auto& [name, value] : prog.symbols) {
        std::printf("  %-24s %s\n", name.c_str(), Hex32(value).c_str());
      }
    } else if (cmd == "u" || cmd == "uart") {
      std::printf("%s\n", platform.uart().output().c_str());
    } else {
      std::printf("commands: s [n], c [n], b A, del A, r, m A [n], d [A] [n], "
                  "sym, u, q\n");
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    return Usage(/*help=*/true);
  }
  if (argc < 3 && !(command == "run")) {
    return Usage();
  }
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "asm") {
    return CmdAsm(args);
  }
  if (command == "disas") {
    return CmdDisas(args);
  }
  if (command == "run") {
    return CmdRun(args);
  }
  if (command == "debug") {
    return CmdDebug(args);
  }
  return Usage();
}

}  // namespace
}  // namespace trustlite

int main(int argc, char** argv) { return trustlite::Main(argc, argv); }
