// Copyright 2026 The TrustLite Reproduction Authors.
//
// tlsnap — snapshot file utility (docs/SNAPSHOT_FORMAT.md).
//
//   tlsnap info    <file.tlsnap>              inventory + self-digest
//   tlsnap verify  <file.tlsnap>              parse + CRC + digest check
//   tlsnap diff    <a.tlsnap> <b.tlsnap>      structured state diff
//   tlsnap resave  <in.tlsnap> <out.tlsnap>   restore + re-save (round-trip)
//
// `verify` restores the snapshot into a scratch platform built from the
// snapshot's own PCFG chunk and recomputes the state digest, so it checks
// the full restore path, not just the container framing. `resave` is the
// byte-stability check: the output must be bit-identical to the input for
// a digest-carrying snapshot.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/snapshot/snapshot.h"

namespace trustlite {
namespace {

int Usage(bool help = false) {
  std::fprintf(
      help ? stdout : stderr,
      "usage:\n"
      "  tlsnap info    <file.tlsnap>\n"
      "  tlsnap verify  <file.tlsnap>\n"
      "  tlsnap diff    <a.tlsnap> <b.tlsnap>\n"
      "  tlsnap resave  <in.tlsnap> <out.tlsnap>\n");
  return help ? 0 : 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "tlsnap: %s\n", status.ToString().c_str());
  return 1;
}

int CmdInfo(const std::string& path) {
  Result<std::vector<uint8_t>> bytes = ReadSnapshotFile(path);
  if (!bytes.ok()) {
    return Fail(bytes.status());
  }
  Result<SnapshotInfo> info = InspectSnapshot(*bytes);
  if (!info.ok()) {
    return Fail(info.status());
  }
  std::printf("%s: version %u, %zu chunks, %zu bytes\n", path.c_str(),
              info->version, info->chunks.size(), bytes->size());
  for (const SnapshotChunkInfo& chunk : info->chunks) {
    std::printf("  %-8u %s\n", chunk.payload_size, chunk.label.c_str());
  }
  std::printf("memory: %.1f KiB present of %.0f KiB mapped\n",
              static_cast<double>(info->memory_bytes_present) / 1024.0,
              static_cast<double>(info->memory_bytes_total) / 1024.0);
  return 0;
}

int CmdVerify(const std::string& path) {
  Result<std::vector<uint8_t>> bytes = ReadSnapshotFile(path);
  if (!bytes.ok()) {
    return Fail(bytes.status());
  }
  Result<PlatformConfig> config = SnapshotPlatformConfig(*bytes);
  if (!config.ok()) {
    return Fail(config.status());
  }
  Platform platform(*config);
  Status restored = RestorePlatform(&platform, *bytes);
  if (!restored.ok()) {
    return Fail(restored);
  }
  Result<SnapshotInfo> info = InspectSnapshot(*bytes);
  if (!info.ok()) {
    return Fail(info.status());
  }
  std::printf("%s: ok (restore verified%s)\n", path.c_str(),
              info->digest_present ? ", digest matched" : ", no digest");
  return 0;
}

int CmdDiff(const std::string& path_a, const std::string& path_b) {
  Result<std::vector<uint8_t>> a = ReadSnapshotFile(path_a);
  if (!a.ok()) {
    return Fail(a.status());
  }
  Result<std::vector<uint8_t>> b = ReadSnapshotFile(path_b);
  if (!b.ok()) {
    return Fail(b.status());
  }
  Result<std::vector<std::string>> diffs = DiffSnapshots(*a, *b);
  if (!diffs.ok()) {
    return Fail(diffs.status());
  }
  if (diffs->empty()) {
    std::printf("identical state\n");
    return 0;
  }
  for (const std::string& line : *diffs) {
    std::printf("%s\n", line.c_str());
  }
  return 1;
}

int CmdResave(const std::string& in_path, const std::string& out_path) {
  Result<std::vector<uint8_t>> bytes = ReadSnapshotFile(in_path);
  if (!bytes.ok()) {
    return Fail(bytes.status());
  }
  Result<PlatformConfig> config = SnapshotPlatformConfig(*bytes);
  if (!config.ok()) {
    return Fail(config.status());
  }
  Platform platform(*config);
  Status restored = RestorePlatform(&platform, *bytes);
  if (!restored.ok()) {
    return Fail(restored);
  }
  Result<std::vector<uint8_t>> saved = SavePlatform(platform);
  if (!saved.ok()) {
    return Fail(saved.status());
  }
  Status written = WriteSnapshotFile(out_path, *saved);
  if (!written.ok()) {
    return Fail(written);
  }
  const bool identical = *saved == *bytes;
  std::printf("wrote %s (%zu bytes, %s)\n", out_path.c_str(), saved->size(),
              identical ? "bit-identical round-trip"
                        : "differs from input (input saved without digest?)");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    return Usage(/*help=*/true);
  }
  if (command == "info" && argc == 3) {
    return CmdInfo(argv[2]);
  }
  if (command == "verify" && argc == 3) {
    return CmdVerify(argv[2]);
  }
  if (command == "diff" && argc == 4) {
    return CmdDiff(argv[2], argv[3]);
  }
  if (command == "resave" && argc == 4) {
    return CmdResave(argv[2], argv[3]);
  }
  return Usage();
}

}  // namespace
}  // namespace trustlite

int main(int argc, char** argv) { return trustlite::Main(argc, argv); }
