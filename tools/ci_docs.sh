#!/usr/bin/env bash
# Docs CI gate (tier-2 ctest `ci_docs`): keeps the prose honest.
#
#   1. Markdown link integrity: every relative link in the root *.md files
#      and docs/ must resolve to an existing file.
#   2. CLI doc drift, both directions: every `--flag` named in README.md
#      must exist in some tool's --help, and every --help flag must be
#      named in README.md unless allowlisted below.
#   3. ROADMAP.md freshness: the "Open items" section must be non-empty
#      (the re-anchor contract; a placeholder list fails).
#   4. docs/README.md index completeness: every docs/*.md spec must be
#      linked from the docs index (a new spec that nobody can find fails).
#
# usage: tools/ci_docs.sh [src-dir] [tools-bin-dir]
set -uo pipefail

SRC="${1:-.}"
BIN="${2:-$SRC/build/tools}"
fail=0

note() { echo "ci_docs: $*" >&2; fail=1; }

# --- 1. relative markdown links -------------------------------------------
for md in "$SRC"/*.md "$SRC"/docs/*.md; do
  [[ -f "$md" ]] || continue
  dir="$(dirname "$md")"
  # [text](target) minus absolute URLs, mailto and pure anchors.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [[ -z "$path" ]] && continue
    if [[ ! -e "$dir/$path" ]]; then
      note "broken link in ${md#"$SRC"/}: ($target)"
    fi
  done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$md" | sed -E 's/^\[[^]]*\]\(([^)]+)\)$/\1/')
done

# --- 2. README flags vs tool --help ---------------------------------------
flags_of() { grep -oE '(^|[^-[:alnum:]])--[a-z][a-z0-9-]*' | grep -oE -- '--[a-z][a-z0-9-]*' | sort -u; }

HELP_FLAGS=""
for tool in tlsim tlfleet tlfleetd tlsnap tlfw; do
  if [[ ! -x "$BIN/$tool" ]]; then
    note "$BIN/$tool not built (needed for the --help drift check)"
    continue
  fi
  HELP_FLAGS+=$'\n'"$("$BIN/$tool" --help | flags_of)"
done
HELP_FLAGS="$(echo "$HELP_FLAGS" | sort -u | grep . || true)"

README_FLAGS="$(flags_of < "$SRC/README.md" || true)"

# Flags README uses that are not ours (cmake/ctest invocations).
README_ALLOW="--build --test-dir"
# Niche knobs documented in --help only.
HELP_ALLOW="--origin --entry --sp --max --uart-in --no-mpu
            --quantum --quanta --latency --quiet
            --corrupt-ppm --replay-ppm --reflect-ppm
            --chunk-bytes --payload-file --update-tamper-canary
            --idle-quanta --beacon-quanta --phase-quanta"

for f in $README_FLAGS; do
  if ! grep -qxF -- "$f" <<<"$HELP_FLAGS" && ! grep -qwF -- "$f" <<<"$README_ALLOW"; then
    note "README.md names $f but no tool --help mentions it (stale docs?)"
  fi
done
for f in $HELP_FLAGS; do
  if ! grep -qxF -- "$f" <<<"$README_FLAGS" && ! grep -qwF -- "$f" <<<"$HELP_ALLOW"; then
    note "tool --help has $f but README.md never names it (undocumented flag?)"
  fi
done

# --- 3. docs/README.md index completeness ---------------------------------
if [[ -f "$SRC/docs/README.md" ]]; then
  for spec in "$SRC"/docs/*.md; do
    name="$(basename "$spec")"
    [[ "$name" == "README.md" ]] && continue
    if ! grep -q "($name" "$SRC/docs/README.md"; then
      note "docs/README.md does not link $name — add it to the index"
    fi
  done
else
  note "docs/README.md index is missing"
fi

# --- 4. ROADMAP Open items non-empty --------------------------------------
open_items="$(awk '/^## Open items/{grab=1; next} /^## /{grab=0} grab' "$SRC/ROADMAP.md" \
              | grep -cE '^- ' || true)"
if [[ "${open_items:-0}" -lt 1 ]]; then
  note "ROADMAP.md 'Open items' is empty — re-anchor it"
fi

if [[ "$fail" -ne 0 ]]; then
  echo "ci_docs: FAILED"
  exit 1
fi
echo "ci_docs: all checks passed (links, --help drift, ROADMAP open items: $open_items)"
