#!/usr/bin/env bash
# Runs the simulator bench suite and emits BENCH_sim.json for trend
# tracking (google-benchmark JSON format, one file per run), plus
# BENCH_fleet.json from the fleet-executor scaling bench (DESIGN.md §13).
#
# usage: tools/run_benches.sh [build-dir] [out.json] [fleet-out.json]
#   BENCH_MIN_TIME   per-benchmark min time in seconds (default 0.2)
#   BENCH_FILTER     --benchmark_filter regex (default: all)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_sim.json}"
FLEET_OUT="${3:-BENCH_fleet.json}"
MIN_TIME="${BENCH_MIN_TIME:-0.2}"
FILTER="${BENCH_FILTER:-.}"

BIN="$BUILD_DIR/bench/bench_sim_throughput"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

echo "wrote $OUT"

# Observability overhead summary: tracing-off vs tracing-on interpreter
# throughput (BM_InterpreterWithMpu vs BM_InterpreterWithMpuProfiled).
# Budget: tracing off must be free (<1%); tracing on is allowed to cost.
awk '
  /"name": "BM_InterpreterWithMpu"/          { want = 1 }
  /"name": "BM_InterpreterWithMpuProfiled"/  { want = 2 }
  /"items_per_second"/ && want {
    gsub(/[^0-9.e+]/, "", $2)
    ips[want] = $2 + 0
    want = 0
  }
  END {
    if (ips[1] > 0 && ips[2] > 0) {
      printf "tracing off: %.3g insn/s   tracing on: %.3g insn/s   on/off: %.1f%%\n",
             ips[1], ips[2], 100.0 * ips[2] / ips[1]
    }
  }
' "$OUT"

# Fleet executor scaling (BM_FleetExecutor: nodes x host threads). Scaling
# tops out at the host's physical core count; the JSON records the curve
# either way for trend tracking.
FLEET_BIN="$BUILD_DIR/bench/bench_fleet"
if [[ -x "$FLEET_BIN" ]]; then
  "$FLEET_BIN" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$FLEET_OUT" \
    --benchmark_out_format=json
  echo "wrote $FLEET_OUT (host cores: $(nproc))"

  # Warm-boot provisioning summary (BM_FleetProvisionCold/Warm at 64
  # nodes): snapshot cloning must beat N cold Secure Loader boots by >=5x
  # (DESIGN.md §14; EXPERIMENTS.md warm-boot row).
  awk '
    /"name": "BM_FleetProvisionCold\/64"/ { want = 1 }
    /"name": "BM_FleetProvisionWarm\/64"/ { want = 2 }
    /"real_time"/ && want {
      gsub(/[^0-9.e+]/, "", $2)
      ms[want] = $2 + 0
      want = 0
    }
    END {
      if (ms[1] > 0 && ms[2] > 0) {
        printf "provision 64 nodes: cold %.1f ms   warm %.1f ms   speedup: %.1fx\n",
               ms[1], ms[2], ms[1] / ms[2]
      }
    }
  ' "$FLEET_OUT"

  # Update-campaign summary (BM_UpdateCampaign at 256 nodes): staged
  # canary-first rollout vs single-stage, wall-clock per full campaign
  # (DESIGN.md §16).
  awk '
    /"name": "BM_UpdateCampaign\/256\/10"/  { want = 1 }
    /"name": "BM_UpdateCampaign\/256\/100"/ { want = 2 }
    /"real_time"/ && want {
      gsub(/[^0-9.e+]/, "", $2)
      ms[want] = $2 + 0
      want = 0
    }
    END {
      if (ms[1] > 0 && ms[2] > 0) {
        printf "update 256 nodes: canary-10%% %.1f ms   single-stage %.1f ms\n",
               ms[1], ms[2]
      }
    }
  ' "$FLEET_OUT"
else
  echo "note: $FLEET_BIN not built; skipping BENCH_fleet.json" >&2
fi
