#!/usr/bin/env bash
# Runs the simulator bench suite and emits BENCH_sim.json for trend
# tracking (google-benchmark JSON format, one file per run).
#
# usage: tools/run_benches.sh [build-dir] [out.json]
#   BENCH_MIN_TIME   per-benchmark min time in seconds (default 0.2)
#   BENCH_FILTER     --benchmark_filter regex (default: all)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_sim.json}"
MIN_TIME="${BENCH_MIN_TIME:-0.2}"
FILTER="${BENCH_FILTER:-.}"

BIN="$BUILD_DIR/bench/bench_sim_throughput"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

echo "wrote $OUT"
