// Copyright 2026 The TrustLite Reproduction Authors.
//
// tlfw — firmware update container utility (docs/UPDATE_FORMAT.md).
//
//   tlfw pack   <out.tlfw> --version N [opts]     build a container
//   tlfw info   <file.tlfw>                       inventory + measurement
//   tlfw verify <file.tlfw> [key opts]            parse/CRC/measurement
//                                                 (+ signature with a key)
//   tlfw sign   <in.tlfw> <out.tlfw> <key opts>   attach an HMAC signature
//
// Payload sources for pack: --payload-file <f> embeds a file verbatim;
// --payload-seed <s> --payload-bytes <n> generates a deterministic
// xoshiro256** byte stream (self-contained test/CI images).
//
// Key options: --key-hex <64 hex chars> names a raw 32-byte device key;
// --fleet-seed <s> --node <i> derives the same per-device key the fleet
// provisioner uses, so a container signed here verifies on that fleet
// node. Signing always uses the derived *update* key family, never the
// device key directly.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/fleet/provision.h"
#include "src/update/fw_container.h"

namespace trustlite {
namespace {

int Usage(bool help = false) {
  std::fprintf(
      help ? stdout : stderr,
      "usage:\n"
      "  tlfw pack   <out.tlfw> --version <n> [--name <s>]\n"
      "              [--chunk-bytes <n>]\n"
      "              (--payload-file <f> | --payload-seed <s> "
      "--payload-bytes <n>)\n"
      "  tlfw info   <file.tlfw>\n"
      "  tlfw verify <file.tlfw> [--key-hex <hex64> | --fleet-seed <s> "
      "--node <i>]\n"
      "  tlfw sign   <in.tlfw> <out.tlfw> (--key-hex <hex64> | "
      "--fleet-seed <s> --node <i>)\n");
  return help ? 0 : 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "tlfw: %s\n", status.ToString().c_str());
  return 1;
}

struct KeyOptions {
  bool present = false;
  std::array<uint8_t, 32> device_key{};
};

// Shared option state across subcommands; unknown flags are usage errors.
struct Options {
  uint32_t version = 0;
  std::string name;
  uint32_t chunk_bytes = 512;
  std::string payload_file;
  uint64_t payload_seed = 0;
  bool payload_seed_set = false;
  uint32_t payload_bytes = 0;
  KeyOptions key;
  std::vector<std::string> positional;
};

bool ParseHexKey(const std::string& hex, std::array<uint8_t, 32>* key) {
  if (hex.size() != 64) {
    return false;
  }
  for (size_t i = 0; i < 32; ++i) {
    unsigned value = 0;
    if (std::sscanf(hex.c_str() + 2 * i, "%2x", &value) != 1) {
      return false;
    }
    (*key)[i] = static_cast<uint8_t>(value);
  }
  return true;
}

bool ParseOptions(int argc, char** argv, int from, Options* opts) {
  uint64_t fleet_seed = 0;
  bool fleet_seed_set = false;
  int node = -1;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tlfw: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--version") {
      const char* v = next("--version");
      if (v == nullptr) return false;
      opts->version = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--name") {
      const char* v = next("--name");
      if (v == nullptr) return false;
      opts->name = v;
    } else if (arg == "--chunk-bytes") {
      const char* v = next("--chunk-bytes");
      if (v == nullptr) return false;
      opts->chunk_bytes = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--payload-file") {
      const char* v = next("--payload-file");
      if (v == nullptr) return false;
      opts->payload_file = v;
    } else if (arg == "--payload-seed") {
      const char* v = next("--payload-seed");
      if (v == nullptr) return false;
      opts->payload_seed = std::strtoull(v, nullptr, 0);
      opts->payload_seed_set = true;
    } else if (arg == "--payload-bytes") {
      const char* v = next("--payload-bytes");
      if (v == nullptr) return false;
      opts->payload_bytes = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--key-hex") {
      const char* v = next("--key-hex");
      if (v == nullptr) return false;
      if (!ParseHexKey(v, &opts->key.device_key)) {
        std::fprintf(stderr, "tlfw: --key-hex wants 64 hex characters\n");
        return false;
      }
      opts->key.present = true;
    } else if (arg == "--fleet-seed") {
      const char* v = next("--fleet-seed");
      if (v == nullptr) return false;
      fleet_seed = std::strtoull(v, nullptr, 0);
      fleet_seed_set = true;
    } else if (arg == "--node") {
      const char* v = next("--node");
      if (v == nullptr) return false;
      node = static_cast<int>(std::strtol(v, nullptr, 0));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "tlfw: unknown flag %s\n", arg.c_str());
      return false;
    } else {
      opts->positional.push_back(arg);
    }
  }
  if (fleet_seed_set || node >= 0) {
    if (!fleet_seed_set || node < 0) {
      std::fprintf(stderr,
                   "tlfw: --fleet-seed and --node go together\n");
      return false;
    }
    if (opts->key.present) {
      std::fprintf(stderr, "tlfw: --key-hex conflicts with --fleet-seed\n");
      return false;
    }
    opts->key.device_key = DeriveDeviceKey(fleet_seed, node);
    opts->key.present = true;
  }
  return true;
}

std::vector<uint8_t> GeneratePayload(uint64_t seed, uint32_t bytes) {
  Xoshiro256 rng(seed);
  std::vector<uint8_t> payload;
  payload.reserve(bytes);
  while (payload.size() < bytes) {
    uint64_t word = rng.Next64();
    for (int b = 0; b < 8 && payload.size() < bytes; ++b) {
      payload.push_back(static_cast<uint8_t>(word >> (8 * b)));
    }
  }
  return payload;
}

void PrintImage(const FirmwareImage& image) {
  std::printf("  version: %u\n", image.fw_version);
  if (!image.name.empty()) {
    std::printf("  name: %s\n", image.name.c_str());
  }
  std::printf("  payload: %zu bytes\n", image.payload.size());
  std::printf("  measurement: %s\n",
              HexEncode(image.measurement.data(), image.measurement.size())
                  .c_str());
  std::printf("  signature: %s\n",
              image.has_signature
                  ? HexEncode(image.signature.data(), image.signature.size())
                        .c_str()
                  : "(unsigned)");
}

int CmdPack(const Options& opts) {
  if (opts.positional.size() != 1 || opts.version == 0) {
    return Usage();
  }
  FirmwareContainerSpec spec;
  spec.fw_version = opts.version;
  spec.name = opts.name;
  spec.chunk_bytes = opts.chunk_bytes;
  if (!opts.payload_file.empty()) {
    Result<std::vector<uint8_t>> payload = ReadFirmwareFile(opts.payload_file);
    if (!payload.ok()) {
      return Fail(payload.status());
    }
    spec.payload = std::move(*payload);
  } else if (opts.payload_seed_set && opts.payload_bytes > 0) {
    spec.payload = GeneratePayload(opts.payload_seed, opts.payload_bytes);
  } else {
    std::fprintf(stderr, "tlfw: pack needs --payload-file or "
                         "--payload-seed + --payload-bytes\n");
    return 2;
  }
  Result<std::vector<uint8_t>> container = PackFirmware(spec);
  if (!container.ok()) {
    return Fail(container.status());
  }
  Status written = WriteFirmwareFile(opts.positional[0], *container);
  if (!written.ok()) {
    return Fail(written);
  }
  std::printf("wrote %s (%zu bytes, version %u, payload %zu bytes)\n",
              opts.positional[0].c_str(), container->size(), spec.fw_version,
              spec.payload.size());
  return 0;
}

int CmdInfo(const Options& opts) {
  if (opts.positional.size() != 1) {
    return Usage();
  }
  Result<std::vector<uint8_t>> bytes = ReadFirmwareFile(opts.positional[0]);
  if (!bytes.ok()) {
    return Fail(bytes.status());
  }
  Result<FirmwareContainerInfo> info = InspectFirmware(*bytes);
  if (!info.ok()) {
    return Fail(info.status());
  }
  std::printf("%s: format %u, %zu chunks, %zu bytes\n",
              opts.positional[0].c_str(), info->format_version,
              info->chunks.size(), info->container_bytes);
  for (const FirmwareChunkInfo& chunk : info->chunks) {
    std::printf("  %s\n", chunk.label.c_str());
  }
  PrintImage(info->image);
  return 0;
}

int CmdVerify(const Options& opts) {
  if (opts.positional.size() != 1) {
    return Usage();
  }
  Result<std::vector<uint8_t>> bytes = ReadFirmwareFile(opts.positional[0]);
  if (!bytes.ok()) {
    return Fail(bytes.status());
  }
  Result<FirmwareImage> image = ParseFirmware(*bytes);
  if (!image.ok()) {
    return Fail(image.status());
  }
  if (opts.key.present) {
    const Status verified =
        VerifyFirmwareSignature(*image, DeriveUpdateKey(opts.key.device_key));
    if (!verified.ok()) {
      return Fail(verified);
    }
    std::printf("%s: ok (framing, measurement and signature verified)\n",
                opts.positional[0].c_str());
  } else {
    std::printf("%s: ok (framing and measurement verified; no key given%s)\n",
                opts.positional[0].c_str(),
                image->has_signature ? ", signature unchecked" : ", unsigned");
  }
  return 0;
}

int CmdSign(const Options& opts) {
  if (opts.positional.size() != 2 || !opts.key.present) {
    return Usage();
  }
  Result<std::vector<uint8_t>> bytes = ReadFirmwareFile(opts.positional[0]);
  if (!bytes.ok()) {
    return Fail(bytes.status());
  }
  Result<std::vector<uint8_t>> signed_container =
      SignFirmware(*bytes, DeriveUpdateKey(opts.key.device_key));
  if (!signed_container.ok()) {
    return Fail(signed_container.status());
  }
  Status written = WriteFirmwareFile(opts.positional[1], *signed_container);
  if (!written.ok()) {
    return Fail(written);
  }
  std::printf("wrote %s (%zu bytes, signed)\n", opts.positional[1].c_str(),
              signed_container->size());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    return Usage(/*help=*/true);
  }
  Options opts;
  if (!ParseOptions(argc, argv, 2, &opts)) {
    return 2;
  }
  if (command == "pack") {
    return CmdPack(opts);
  }
  if (command == "info") {
    return CmdInfo(opts);
  }
  if (command == "verify") {
    return CmdVerify(opts);
  }
  if (command == "sign") {
    return CmdSign(opts);
  }
  return Usage();
}

}  // namespace
}  // namespace trustlite

int main(int argc, char** argv) { return trustlite::Main(argc, argv); }
