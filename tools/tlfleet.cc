// Copyright 2026 The TrustLite Reproduction Authors.
//
// tlfleet — networked multi-device fleet simulator (DESIGN.md §13).
//
//   tlfleet run [guest.s] --nodes N [--topology star|ring] [--seed S]
//               [--threads T] [--attest] [--warm-boot] [--tamper K]
//               [--quantum Q] [--quanta K] [--batch-quanta K] [--latency C]
//               [--loss-ppm P] [--reorder-ppm P]
//               [--hostile corrupt|replay|reflect|all] [--hostile-ppm P]
//               [--corrupt-ppm P] [--replay-ppm P] [--reflect-ppm P]
//               [--update-image FILE]... [--canary-pct P]
//               [--halt-on-quarantine] [--update-tamper-canary]
//               [--transcript FILE] [--trace-json FILE] [--stats] [--quiet]
//
// Two modes:
//  * --attest: every node boots the remote-attestation stack (FW trustlet +
//    per-node-keyed UART attestation trustlet + nanOS without the UART);
//    the host verifier challenges all nodes concurrently, retries with
//    backoff, and quarantines nodes whose measurements never match. With a
//    guest.s argument the assembled image is embedded in FW as measured
//    payload; with --tamper K, K deterministically-chosen nodes get one FW
//    code bit flipped post-boot — they keep running but fail attestation.
//  * workload (no --attest, guest.s required): the guest image runs bare on
//    every node; UART bytes travel the fabric to topology neighbours (and
//    ring fleets bridge GPIO at quantum boundaries).
//
// Update campaigns (attest mode): each --update-image FILE names a .tlfw
// container (tools/tlfw) rolled out after the initial attestation round —
// canary subset first, chunked transfer over the links, post-update
// re-attestation against the new golden measurement, commit of the
// anti-rollback counter only after the canaries verify. Multiple
// --update-image flags run campaigns in order, sharing the monotonic
// counter — replaying an older signed image is rejected fleet-wide.
//
// Results are bit-identical for a fixed --seed regardless of --threads; the
// fleet digest printed at the end pins the architectural state of every
// node, so two runs can be compared with string equality.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/fleet/attest.h"
#include "src/fleet/fleet.h"
#include "src/fleet/link.h"
#include "src/fleet/provision.h"
#include "src/fleet/update.h"
#include "src/harness/fleet_campaign.h"
#include "src/isa/assembler.h"
#include "src/platform/observe/fleet_trace.h"
#include "src/platform/observe/json.h"

namespace trustlite {
namespace {

constexpr uint32_t kGuestOrigin = 0x0003'0000;
constexpr uint32_t kGuestSp = 0x0004'0000;

int Usage(bool help = false) {
  std::fprintf(
      help ? stdout : stderr,
      "usage:\n"
      "  tlfleet run [guest.s] --nodes N [--topology star|ring] [--seed S]\n"
      "              [--threads T] [--attest] [--warm-boot] [--tamper K]\n"
      "              [--quantum Q] [--quanta K] [--batch-quanta K]\n"
      "              [--latency C] [--loss-ppm P] [--reorder-ppm P]\n"
      "              [--hostile MODE] [--hostile-ppm P] [--corrupt-ppm P]\n"
      "              [--replay-ppm P] [--reflect-ppm P]\n"
      "              [--update-image FILE]... [--canary-pct P]\n"
      "              [--halt-on-quarantine] [--update-tamper-canary]\n"
      "              [--transcript FILE] [--trace-json FILE] [--stats]\n"
      "              [--quiet]\n"
      "\n"
      "  --warm-boot  attest mode: Secure-Loader-boot node 0 once, then\n"
      "               provision the other nodes by snapshot restore +\n"
      "               per-device key/seed patching (DESIGN.md Sec. 14)\n"
      "  --batch-quanta K  hold a growing TX burst up to K quanta before it\n"
      "               enters the fabric (1 = flush every quantum); results\n"
      "               stay bit-identical across --threads at any K\n"
      "  --hostile MODE  arm every link with an active attack\n"
      "               (corrupt|replay|reflect|all) at --hostile-ppm per\n"
      "               message; --corrupt-ppm/--replay-ppm/--reflect-ppm set\n"
      "               individual rates (DESIGN.md Sec. 13)\n"
      "  --update-image FILE  attest mode: roll out this .tlfw firmware\n"
      "               container after the initial attestation round;\n"
      "               repeatable — campaigns run in order and share the\n"
      "               monotonic anti-rollback counter\n"
      "  --canary-pct P  percent of verified nodes updated first (default\n"
      "               10; 100 = single-stage rollout)\n"
      "  --halt-on-quarantine  abort a campaign when a re-attestation\n"
      "               quarantines, rolling back uncommitted nodes\n"
      "  --update-tamper-canary  test hook: flip one FW code bit on the\n"
      "               first canary as its re-attestation starts (MVAM-style\n"
      "               mid-campaign tamper)\n"
      "  --transcript FILE  attest mode: write the verifier transcript and\n"
      "               any campaign transcripts (bit-identical across\n"
      "               --threads for a fixed seed)\n");
  return help ? 0 : 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::string DigestHex(const Sha256Digest& digest) {
  std::string hex;
  char byte[4];
  for (uint8_t b : digest) {
    std::snprintf(byte, sizeof(byte), "%02x", b);
    hex += byte;
  }
  return hex;
}

struct Options {
  std::string guest;
  int nodes = 4;
  Topology topology = Topology::kStar;
  uint64_t seed = 1;
  int threads = 1;
  bool attest = false;
  bool warm_boot = false;
  int tamper = 0;
  uint64_t quantum = 20'000;
  uint64_t quanta = 5'000;  // Budget; attest mode stops when resolved.
  uint32_t batch_quanta = 1;
  uint32_t latency = 1'000;
  uint32_t loss_ppm = 0;
  uint32_t reorder_ppm = 0;
  HostileMode hostile = HostileMode::kNone;
  uint32_t hostile_ppm = 150'000;
  uint32_t corrupt_ppm = 0;
  uint32_t replay_ppm = 0;
  uint32_t reflect_ppm = 0;
  std::vector<std::string> update_images;
  int canary_pct = 10;
  bool halt_on_quarantine = false;
  bool update_tamper_canary = false;
  std::string transcript;
  std::string trace_json;
  bool stats = false;
  bool quiet = false;
};

bool ParseOptions(const std::vector<std::string>& args, Options* opt) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next_u64 = [&](uint64_t* out) {
      if (i + 1 >= args.size()) {
        return false;
      }
      *out = std::strtoull(args[++i].c_str(), nullptr, 0);
      return true;
    };
    uint64_t value = 0;
    if (arg == "--nodes" && next_u64(&value)) {
      opt->nodes = static_cast<int>(value);
    } else if (arg == "--topology" && i + 1 < args.size()) {
      const std::string& name = args[++i];
      if (name == "star") {
        opt->topology = Topology::kStar;
      } else if (name == "ring") {
        opt->topology = Topology::kRing;
      } else {
        std::fprintf(stderr, "tlfleet: unknown topology '%s'\n", name.c_str());
        return false;
      }
    } else if (arg == "--seed" && next_u64(&value)) {
      opt->seed = value;
    } else if (arg == "--threads" && next_u64(&value)) {
      opt->threads = static_cast<int>(value);
    } else if (arg == "--attest") {
      opt->attest = true;
    } else if (arg == "--warm-boot") {
      opt->warm_boot = true;
    } else if (arg == "--tamper" && next_u64(&value)) {
      opt->tamper = static_cast<int>(value);
    } else if (arg == "--quantum" && next_u64(&value)) {
      opt->quantum = value;
    } else if (arg == "--quanta" && next_u64(&value)) {
      opt->quanta = value;
    } else if (arg == "--batch-quanta" && next_u64(&value)) {
      opt->batch_quanta = static_cast<uint32_t>(value);
    } else if (arg == "--latency" && next_u64(&value)) {
      opt->latency = static_cast<uint32_t>(value);
    } else if (arg == "--loss-ppm" && next_u64(&value)) {
      opt->loss_ppm = static_cast<uint32_t>(value);
    } else if (arg == "--reorder-ppm" && next_u64(&value)) {
      opt->reorder_ppm = static_cast<uint32_t>(value);
    } else if (arg == "--hostile" && i + 1 < args.size()) {
      const std::string& name = args[++i];
      if (name == "corrupt") {
        opt->hostile = HostileMode::kCorrupt;
      } else if (name == "replay") {
        opt->hostile = HostileMode::kReplay;
      } else if (name == "reflect") {
        opt->hostile = HostileMode::kReflect;
      } else if (name == "all") {
        opt->hostile = HostileMode::kAll;
      } else {
        std::fprintf(stderr, "tlfleet: unknown hostile mode '%s'\n",
                     name.c_str());
        return false;
      }
    } else if (arg == "--hostile-ppm" && next_u64(&value)) {
      opt->hostile_ppm = static_cast<uint32_t>(value);
    } else if (arg == "--corrupt-ppm" && next_u64(&value)) {
      opt->corrupt_ppm = static_cast<uint32_t>(value);
    } else if (arg == "--replay-ppm" && next_u64(&value)) {
      opt->replay_ppm = static_cast<uint32_t>(value);
    } else if (arg == "--reflect-ppm" && next_u64(&value)) {
      opt->reflect_ppm = static_cast<uint32_t>(value);
    } else if (arg == "--update-image" && i + 1 < args.size()) {
      opt->update_images.push_back(args[++i]);
    } else if (arg == "--canary-pct" && next_u64(&value)) {
      opt->canary_pct = static_cast<int>(value);
    } else if (arg == "--halt-on-quarantine") {
      opt->halt_on_quarantine = true;
    } else if (arg == "--update-tamper-canary") {
      opt->update_tamper_canary = true;
    } else if (arg == "--transcript" && i + 1 < args.size()) {
      opt->transcript = args[++i];
    } else if (arg == "--trace-json" && i + 1 < args.size()) {
      opt->trace_json = args[++i];
    } else if (arg == "--stats") {
      opt->stats = true;
    } else if (arg == "--quiet") {
      opt->quiet = true;
    } else if (arg.rfind("--", 0) != 0 && opt->guest.empty()) {
      opt->guest = arg;
    } else {
      std::fprintf(stderr, "tlfleet: bad argument '%s'\n", arg.c_str());
      return false;
    }
  }
  if (opt->nodes < 1 || opt->quantum == 0) {
    std::fprintf(stderr, "tlfleet: need --nodes >= 1 and --quantum > 0\n");
    return false;
  }
  if (opt->warm_boot && !opt->attest) {
    std::fprintf(stderr, "tlfleet: --warm-boot requires --attest\n");
    return false;
  }
  if (!opt->update_images.empty() && !opt->attest) {
    std::fprintf(stderr, "tlfleet: --update-image requires --attest\n");
    return false;
  }
  if (opt->update_tamper_canary && opt->update_images.empty()) {
    std::fprintf(stderr,
                 "tlfleet: --update-tamper-canary requires --update-image\n");
    return false;
  }
  if (opt->canary_pct < 1 || opt->canary_pct > 100) {
    std::fprintf(stderr, "tlfleet: --canary-pct must be in [1, 100]\n");
    return false;
  }
  if (!opt->attest && opt->guest.empty()) {
    std::fprintf(stderr, "tlfleet: workload mode needs a guest.s program "
                         "(or pass --attest)\n");
    return false;
  }
  return true;
}

int CmdRun(const std::vector<std::string>& args) {
  Options opt;
  if (!ParseOptions(args, &opt)) {
    return 2;
  }

  // Assemble the guest program (workload image / attestation payload).
  Result<AsmOutput> guest(Status::Ok());
  std::vector<uint8_t> guest_image;
  if (!opt.guest.empty()) {
    std::string source;
    if (!ReadFile(opt.guest, &source)) {
      std::fprintf(stderr, "tlfleet: cannot read %s\n", opt.guest.c_str());
      return 1;
    }
    guest = Assemble(source, kGuestOrigin);
    if (!guest.ok()) {
      std::fprintf(stderr, "tlfleet: %s\n",
                   guest.status().ToString().c_str());
      return 1;
    }
    uint32_t base = 0;
    guest_image = guest->Flatten(&base);
  }

  // Load and validate every update container up front: a malformed file
  // fails before the fleet spins up, and the provisioner sizes each node's
  // payload window to hold the largest image.
  std::vector<std::vector<uint8_t>> update_containers;
  uint32_t update_capacity = 0;
  for (const std::string& path : opt.update_images) {
    Result<std::vector<uint8_t>> bytes = ReadFirmwareFile(path);
    if (!bytes.ok()) {
      std::fprintf(stderr, "tlfleet: %s\n",
                   bytes.status().ToString().c_str());
      return 1;
    }
    Result<FirmwareImage> image = ParseFirmware(*bytes);
    if (!image.ok()) {
      std::fprintf(stderr, "tlfleet: %s: %s\n", path.c_str(),
                   image.status().ToString().c_str());
      return 1;
    }
    if (image->payload.size() > update_capacity) {
      update_capacity = static_cast<uint32_t>(image->payload.size());
    }
    update_containers.push_back(std::move(*bytes));
  }

  FleetConfig config;
  config.nodes = opt.nodes;
  config.topology = opt.topology;
  config.seed = opt.seed;
  config.threads = opt.threads;
  config.quantum = opt.quantum;
  config.harvest_batch_quanta = opt.batch_quanta;
  config.link.latency_cycles = opt.latency;
  config.link.loss_ppm = opt.loss_ppm;
  config.link.reorder_ppm = opt.reorder_ppm;
  config.link = ApplyHostileMode(config.link, opt.hostile, opt.hostile_ppm);
  if (opt.corrupt_ppm != 0) {
    config.link.corrupt_ppm = opt.corrupt_ppm;
  }
  if (opt.replay_ppm != 0) {
    config.link.replay_ppm = opt.replay_ppm;
  }
  if (opt.reflect_ppm != 0) {
    config.link.reflect_ppm = opt.reflect_ppm;
  }
  Fleet fleet(config);

  std::vector<NodeProvision> provisions;
  if (opt.attest) {
    FleetProvisionConfig prov;
    prov.payload = guest_image;
    prov.payload_capacity = update_capacity;
    prov.tamper_count = opt.tamper;
    prov.warm_boot = opt.warm_boot;
    Result<std::vector<NodeProvision>> provisioned =
        ProvisionAttestationFleet(&fleet, prov);
    if (!provisioned.ok()) {
      std::fprintf(stderr, "tlfleet: provisioning failed: %s\n",
                   provisioned.status().ToString().c_str());
      return 1;
    }
    provisions = std::move(*provisioned);
  } else {
    for (int i = 0; i < fleet.num_nodes(); ++i) {
      Platform& platform = fleet.node(i).platform();
      for (const AsmChunk& chunk : guest->chunks) {
        if (!platform.bus().HostWriteBytes(chunk.base, chunk.bytes)) {
          std::fprintf(stderr, "tlfleet: chunk at 0x%08x unmapped\n",
                       chunk.base);
          return 1;
        }
      }
      uint32_t entry = guest->chunks.empty() ? 0 : guest->chunks.front().base;
      auto it = guest->symbols.find("start");
      if (it != guest->symbols.end()) {
        entry = it->second;
      }
      platform.cpu().Reset(entry);
      platform.cpu().set_reg(kRegSp, kGuestSp);
      platform.ReleaseThreadAffinity();
    }
  }

  // Fleet trace aggregation: one trace process per node.
  FleetTraceAggregator aggregator;
  std::vector<ChromeTraceWriter*> node_writers;
  if (!opt.trace_json.empty()) {
    for (int i = 0; i < fleet.num_nodes(); ++i) {
      ChromeTraceWriter* writer = aggregator.AddNode(i);
      node_writers.push_back(writer);
      if (opt.attest) {
        writer->AddLane("FW", 0x11000, 0x12000);
        writer->AddLane("ATTN", 0x15000, 0x16000);
        writer->AddLane("OS", 0x20000, 0x22000, /*is_os=*/true);
      } else {
        for (const AsmChunk& chunk : guest->chunks) {
          char lane[32];
          std::snprintf(lane, sizeof(lane), "code@%08x", chunk.base);
          writer->AddLane(lane, chunk.base,
                          chunk.base + static_cast<uint32_t>(
                                           chunk.bytes.size()));
        }
      }
      fleet.node(i).platform().AddEventSink(writer);
    }
  }

  FleetAttestor attestor(&fleet, provisions, AttestPolicy{});
  const auto wall_start = std::chrono::steady_clock::now();
  if (opt.attest) {
    attestor.Begin();
  }
  uint64_t quanta = 0;
  for (; quanta < opt.quanta; ++quanta) {
    fleet.RunQuantum();
    if (opt.attest) {
      attestor.OnQuantumBoundary();
      if (attestor.Done()) {
        ++quanta;
        break;
      }
    } else if (fleet.AllHalted() && fleet.fabric().in_flight() == 0) {
      ++quanta;
      break;
    }
  }

  // Update campaigns run in flag order after the initial attestation round
  // resolves, sharing the global quanta budget and the fleet's monotonic
  // anti-rollback counters (so an older image in a later campaign is
  // rejected by every node).
  std::vector<std::unique_ptr<UpdateCampaign>> campaigns;
  bool campaigns_started_ok = true;
  if (opt.attest && attestor.Done()) {
    UpdateCampaignConfig ucfg;
    ucfg.canary_pct = opt.canary_pct;
    ucfg.halt_on_quarantine = opt.halt_on_quarantine;
    for (size_t k = 0; k < update_containers.size(); ++k) {
      auto campaign = std::make_unique<UpdateCampaign>(
          &fleet, &attestor, update_containers[k], ucfg);
      const Status started = campaign->Start();
      if (!started.ok()) {
        std::fprintf(stderr, "tlfleet: update[%zu]: %s\n", k,
                     started.ToString().c_str());
        campaigns_started_ok = false;
        campaigns.push_back(std::move(campaign));
        continue;
      }
      bool tampered_canary = false;
      for (; quanta < opt.quanta && !campaign->Done(); ++quanta) {
        fleet.RunQuantum();
        campaign->OnQuantumBoundary();
        if (opt.update_tamper_canary && k == 0 && !tampered_canary &&
            campaign->phase() == UpdatePhase::kCanaryVerify) {
          // MVAM-style mid-campaign tamper: flip one code bit on the first
          // canary just as its re-attestation starts. The challenge beats
          // the tamper to the wire but not to the node, so the report is
          // computed over the flipped code and never verifies.
          const int victim = campaign->canaries().front();
          (void)TamperNode(fleet.node(victim),
                           &provisions[static_cast<size_t>(victim)]);
          tampered_canary = true;
        }
      }
      campaigns.push_back(std::move(campaign));
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Summary.
  std::vector<FleetNodeStatsRow> rows = fleet.SummaryRows();
  int quarantined = 0;
  int verified = 0;
  bool plan_ok = true;
  if (opt.attest) {
    for (int i = 0; i < fleet.num_nodes(); ++i) {
      const AttestNodeState state = attestor.state(i);
      rows[static_cast<size_t>(i)].state = AttestNodeStateName(state);
      if (provisions[static_cast<size_t>(i)].tampered) {
        rows[static_cast<size_t>(i)].state += " (tampered)";
      }
      verified += state == AttestNodeState::kVerified ? 1 : 0;
      quarantined += state == AttestNodeState::kQuarantined ? 1 : 0;
      const bool want_quarantine =
          provisions[static_cast<size_t>(i)].tampered;
      const AttestNodeState want = want_quarantine
                                       ? AttestNodeState::kQuarantined
                                       : AttestNodeState::kVerified;
      plan_ok = plan_ok && state == want;
    }
  }
  if (!opt.quiet) {
    std::printf("fleet: %d node(s), %s topology, seed %llu, %d thread(s), "
                "quantum %llu\n",
                fleet.num_nodes(), TopologyName(config.topology),
                static_cast<unsigned long long>(opt.seed), opt.threads,
                static_cast<unsigned long long>(opt.quantum));
    std::printf("%s", FormatFleetStats(rows, elapsed).c_str());
    if (opt.attest) {
      std::printf("attestation: %d verified, %d quarantined (%llu quanta, "
                  "%llu cycles)\n",
                  verified, quarantined,
                  static_cast<unsigned long long>(quanta),
                  static_cast<unsigned long long>(fleet.now()));
    }
    if (opt.stats) {
      const LinkFabric::Stats ls = fleet.fabric().stats();
      std::printf("links: sent %llu delivered %llu dropped %llu reordered "
                  "%llu bytes %llu in-flight %zu\n",
                  static_cast<unsigned long long>(ls.sent),
                  static_cast<unsigned long long>(ls.delivered),
                  static_cast<unsigned long long>(ls.dropped),
                  static_cast<unsigned long long>(ls.reordered),
                  static_cast<unsigned long long>(ls.payload_bytes),
                  fleet.fabric().in_flight());
      std::printf("hostile: corrupted %llu replayed %llu reflected %llu\n",
                  static_cast<unsigned long long>(ls.corrupted),
                  static_cast<unsigned long long>(ls.replayed),
                  static_cast<unsigned long long>(ls.reflected));
      // Per-link rows only for links the adversary actually touched.
      for (const LinkFabric::LinkStatsRow& row :
           fleet.fabric().PerLinkStats()) {
        if (row.corrupted == 0 && row.replayed == 0 && row.reflected == 0) {
          continue;
        }
        std::printf("link %d->%d: sent %llu corrupted %llu replayed %llu "
                    "reflected %llu\n",
                    row.src, row.dst,
                    static_cast<unsigned long long>(row.sent),
                    static_cast<unsigned long long>(row.corrupted),
                    static_cast<unsigned long long>(row.replayed),
                    static_cast<unsigned long long>(row.reflected));
      }
    }
  }
  for (size_t k = 0; k < campaigns.size(); ++k) {
    const UpdateCampaign& campaign = *campaigns[k];
    std::printf("update[%zu]: version=%u phase=%s committed=%d "
                "rolledback=%d quarantined=%d rejected=%d canaries=%zu\n",
                k, campaign.fw_version(), UpdatePhaseName(campaign.phase()),
                campaign.CountInState(UpdateNodeState::kCommitted),
                campaign.CountInState(UpdateNodeState::kRolledBack),
                campaign.CountInState(UpdateNodeState::kQuarantined),
                campaign.CountInState(UpdateNodeState::kRejected),
                campaign.canaries().size());
  }
  std::printf("fleet-digest: %s\n", DigestHex(fleet.FleetDigest()).c_str());

  if (!opt.transcript.empty()) {
    std::ofstream out(opt.transcript, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "tlfleet: cannot write %s\n",
                   opt.transcript.c_str());
      return 1;
    }
    std::string full = attestor.transcript();
    for (size_t k = 0; k < campaigns.size(); ++k) {
      char header[48];
      std::snprintf(header, sizeof(header), "--- update campaign %zu ---\n",
                    k);
      full += header;
      full += campaigns[k]->transcript();
    }
    out << full;
    if (!opt.quiet) {
      std::printf("transcript: wrote %s (%zu bytes)\n",
                  opt.transcript.c_str(), full.size());
    }
  }

  if (!opt.trace_json.empty()) {
    for (int i = 0; i < fleet.num_nodes(); ++i) {
      // Writers are owned by the aggregator; detach before it serializes.
      fleet.node(i).platform().RemoveEventSink(
          node_writers[static_cast<size_t>(i)]);
    }
    if (!aggregator.WriteFile(opt.trace_json)) {
      std::fprintf(stderr, "tlfleet: cannot write %s\n",
                   opt.trace_json.c_str());
      return 1;
    }
    std::string json_error;
    const bool valid = JsonParses(aggregator.Json(), &json_error);
    if (!opt.quiet) {
      std::printf("trace-json: wrote %s (%zu nodes, %zu events, %s)\n",
                  opt.trace_json.c_str(), aggregator.node_count(),
                  aggregator.event_count(),
                  valid ? "valid JSON" : json_error.c_str());
    }
  }

  if (opt.attest) {
    if (!attestor.Done()) {
      std::fprintf(stderr, "tlfleet: attestation unresolved after %llu "
                           "quanta\n",
                   static_cast<unsigned long long>(opt.quanta));
      return 1;
    }
    // Every campaign must resolve inside the budget; an aborted campaign is
    // a failure unless the run deliberately tampered a canary to watch the
    // halt-and-rollback path fire.
    bool updates_ok = campaigns_started_ok &&
                      campaigns.size() == update_containers.size();
    for (const std::unique_ptr<UpdateCampaign>& campaign : campaigns) {
      updates_ok =
          updates_ok && campaign->Done() &&
          (campaign->Succeeded() || opt.update_tamper_canary);
    }
    return (plan_ok && updates_ok) ? 0 : 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    return Usage(/*help=*/true);
  }
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "run") {
    return CmdRun(args);
  }
  return Usage();
}

}  // namespace
}  // namespace trustlite

int main(int argc, char** argv) { return trustlite::Main(argc, argv); }
