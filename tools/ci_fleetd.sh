#!/usr/bin/env bash
# Fleet control-plane gate (DESIGN.md §17, docs/FLEET.md): drives full
# tlfleetd operator sessions and enforces:
#  * a 256-node warm-boot session — admission, 3 re-attestation epochs, a
#    digest-checked config push, scale-up by 8 snapshot clones, drain —
#    completes with every node admitted, and its transcript, status epochs
#    and fleet digest are bit-identical at --threads 1 and 8,
#  * the status stream has exactly one JSON epoch per phase, in order,
#  * quarantine reasons are stable: a tampered node reports
#    "reason":"mismatch" and --halt-on-quarantine turns it into a failure,
#  * a hostile-all link matrix cannot defeat the control plane and stays
#    deterministic across thread counts.
#
# usage: tools/ci_fleetd.sh <tlfleetd-binary> [work-dir]
set -euo pipefail

TLFLEETD="${1:?usage: ci_fleetd.sh <tlfleetd> [work-dir]}"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"

fail() { echo "ci_fleetd: FAIL: $*" >&2; exit 1; }

# --- Stage 1: 256-node session, deterministic across threads. --------------
for threads in 1 8; do
  "$TLFLEETD" run --nodes 256 --seed 9 --warm-boot --epochs 3 \
      --config mode=eco --config rate=9600 --scale-up 8 \
      --threads "$threads" \
      --status-json "$WORK/status_t${threads}.json" \
      --transcript "$WORK/transcript_t${threads}.txt" \
      > "$WORK/out_t${threads}.txt" \
      || fail "256-node session --threads $threads exited nonzero"
done
grep -q "session: complete — epochs=3 nodes=264 admitted=264 quarantined=0 \
gen=1" "$WORK/out_t1.txt" || fail "256-node session summary mismatch"
cmp -s "$WORK/transcript_t1.txt" "$WORK/transcript_t8.txt" \
    || fail "transcripts differ between --threads 1 and 8"
cmp -s "$WORK/status_t1.json" "$WORK/status_t8.json" \
    || fail "status epochs differ between --threads 1 and 8"
[ "$(grep '^fleet-digest:' "$WORK/out_t1.txt")" = \
  "$(grep '^fleet-digest:' "$WORK/out_t8.txt")" ] \
    || fail "fleet digests differ between --threads 1 and 8"
echo "ci_fleetd: 256-node session deterministic at t1/t8"

# --- Stage 2: one JSON epoch per phase, in lifecycle order. ----------------
phases=$(sed -n 's/^{"phase":"\([a-z-]*\)".*/\1/p' "$WORK/status_t1.json" \
    | tr '\n' ' ')
want="admission reattest reattest reattest config-push scale-up drain "
[ "$phases" = "$want" ] \
    || fail "status phases '$phases' != expected '$want'"
grep -q '"node":263' "$WORK/status_t1.json" \
    || fail "status epochs lack the scaled-up nodes"
grep -q '"cloned_from":' "$WORK/status_t1.json" \
    || fail "status epochs lack clone lineage"
echo "ci_fleetd: status epoch stream ok"

# --- Stage 3: stable quarantine reasons + halt-on-quarantine. --------------
"$TLFLEETD" run --nodes 16 --seed 9 --tamper 2 --epochs 1 \
    --status-json "$WORK/tamper_status.json" \
    > "$WORK/tamper_out.txt" \
    || fail "tamper session exited nonzero without --halt-on-quarantine"
grep -q '"reason":"mismatch"' "$WORK/tamper_status.json" \
    || fail "tampered nodes lack reason=mismatch in status output"
grep -q "quarantined=2" "$WORK/tamper_out.txt" \
    || fail "tamper session did not quarantine exactly the tampered nodes"
if "$TLFLEETD" run --nodes 16 --seed 9 --tamper 2 --halt-on-quarantine \
    > "$WORK/halt_out.txt" 2> "$WORK/halt_err.txt"; then
  fail "--halt-on-quarantine did not fail the session"
fi
grep -q "halt-on-quarantine" "$WORK/halt_err.txt" \
    || fail "halt failure lacks the halt-on-quarantine diagnostic"
echo "ci_fleetd: quarantine reasons + halt-on-quarantine ok"

# --- Stage 4: hostile-all matrix stays correct and deterministic. ----------
for threads in 1 8; do
  "$TLFLEETD" run --nodes 32 --seed 11 --epochs 2 --hostile all \
      --config mode=eco --scale-up 2 --threads "$threads" \
      --transcript "$WORK/hostile_t${threads}.txt" \
      > "$WORK/hostile_out_t${threads}.txt" \
      || fail "hostile session --threads $threads exited nonzero"
done
grep -q "session: complete — epochs=2 nodes=34 admitted=34 quarantined=0" \
    "$WORK/hostile_out_t1.txt" \
    || fail "hostile links defeated the control plane"
cmp -s "$WORK/hostile_t1.txt" "$WORK/hostile_t8.txt" \
    || fail "hostile transcripts differ between --threads 1 and 8"
[ "$(grep '^fleet-digest:' "$WORK/hostile_out_t1.txt")" = \
  "$(grep '^fleet-digest:' "$WORK/hostile_out_t8.txt")" ] \
    || fail "hostile fleet digests differ between --threads 1 and 8"
echo "ci_fleetd: hostile-all matrix ok"

echo "ci_fleetd: all checks passed"
