#!/usr/bin/env bash
# Fleet-scale determinism gate (DESIGN.md §13): drives tlfleet at the fleet
# sizes the due-queue fabric is built for and enforces the headline
# property — bit-identical fleet digests and attestation transcripts at
# --threads 1 and --threads 8 — across three profiles:
#  * attest: warm-boot provisioned fleet, every node must verify;
#  * workload: bare guest on a ring (UART bursts, GPIO bridging, and the
#    TX batching horizon armed via --batch-quanta);
#  * hostile: challenge reflection at full rate — the always-fires attack
#    with no retry tail, so the gate stays fast at 256 nodes. The full
#    hostile matrix runs at 4 nodes in ci_hostile.sh and at 1k nodes in
#    stress mode below.
#
# usage: ci_fleet_scale.sh <tlfleet-binary> <guest.s> <work-dir> <nodes> [stress]
#
# With a 5th argument "stress" the gate instead runs the 1k-node hostile
# matrix — every mode (corrupt / replay / reflect / all) at --threads 1
# and 8, verdicts matching the tamper plan, transcripts and digests
# bit-identical. Minutes of simulated retry traffic; nightly tier only
# (cmake -DTRUSTLITE_STRESS_TESTS=ON).
set -euo pipefail

TLFLEET="${1:?usage: ci_fleet_scale.sh <tlfleet> <guest.s> <work-dir> <nodes> [stress]}"
GUEST="${2:?missing guest.s}"
WORK="${3:-$(mktemp -d)}"
NODES="${4:-256}"
MODE="${5:-smoke}"
mkdir -p "$WORK"

fail() { echo "ci_fleet_scale: FAIL: $*" >&2; exit 1; }

# run <tag> <threads> <extra tlfleet args...>
run() {
  local tag="$1" threads="$2"
  shift 2
  "$TLFLEET" run "$GUEST" --nodes "$NODES" --seed 5 --threads "$threads" \
      --stats "$@" > "$WORK/out_${tag}_t${threads}.txt" \
      || fail "$tag --threads $threads exited nonzero"
}

# run_attacked <tag> <threads> <args...>: like run, but tolerates tlfleet's
# verdict-mismatch exit (status 1) — under a full-rate compound adversary a
# healthy node can deterministically exhaust its retry budget (availability
# loss, not false trust); the caller pins the exact verdict instead. Any
# other exit status (crash, signal) still fails.
run_attacked() {
  local tag="$1" threads="$2" status=0
  shift 2
  "$TLFLEET" run "$GUEST" --nodes "$NODES" --seed 5 --threads "$threads" \
      --stats "$@" > "$WORK/out_${tag}_t${threads}.txt" || status=$?
  [ "$status" -le 1 ] || fail "$tag --threads $threads crashed (status $status)"
}

# integrity <tag>: no tampered node may ever verify — every row flagged
# (tampered) must be quarantined. grep -v (not -qv): -q exits on first
# match, and under pipefail the upstream grep's SIGPIPE status would mask
# the very violation being reported.
integrity() {
  if grep "(tampered)" "$WORK/out_${1}_t1.txt" | grep -v quarantined \
      > /dev/null; then
    fail "$1: a tampered node verified"
  fi
}

# digests_match <tag>
digests_match() {
  local tag="$1"
  [ "$(grep '^fleet-digest:' "$WORK/out_${tag}_t1.txt")" = \
    "$(grep '^fleet-digest:' "$WORK/out_${tag}_t8.txt")" ] \
      || fail "$tag: fleet digests differ between --threads 1 and 8"
}

# transcripts_match <tag>
transcripts_match() {
  cmp -s "$WORK/tx_${1}_t1.txt" "$WORK/tx_${1}_t8.txt" \
      || fail "$1: transcripts differ between --threads 1 and 8"
}

# verdict <tag> <regex>
verdict() {
  grep -q "$2" "$WORK/out_${1}_t1.txt" \
      || fail "$1: verdict mismatch (want: $2)"
}

# fired <tag> <counter name> — reads the aggregate "hostile:" line, which
# precedes the per-link rows. grep -m1 (not "| head -1"): at 1k nodes the
# per-link rows overflow the pipe buffer and head's early exit would kill
# grep with SIGPIPE, which pipefail+errexit turns into a spurious gate
# failure (exit 141).
fired() {
  local count
  count="$(grep -m1 -o "$2 [0-9]*" "$WORK/out_${1}_t1.txt" | cut -d' ' -f2)"
  [ "${count:-0}" -gt 0 ] || fail "$1: attack never fired ($2 0)"
}

if [ "$MODE" = "stress" ]; then
  # 1k-node hostile matrix. Replay needs capture history, so replay/all
  # tamper one node — its retry traffic populates the adversary's buffer
  # (and exercises the quarantine path at scale). Corruption runs at a
  # rate that keeps every healthy node inside the 4-attempt budget at
  # this node count: with per-frame corruption odds p, a node fails all
  # 4 attempts with probability ~(2p)^4, and at 1k nodes 100000 ppm
  # already quarantines a couple of healthy nodes (deterministically in
  # the seed); 50000 ppm fires ~100 corruptions and all nodes verify.
  for threads in 1 8; do
    run corrupt "$threads" --attest --warm-boot \
        --transcript "$WORK/tx_corrupt_t${threads}.txt" \
        --hostile corrupt --hostile-ppm 50000
    run replay "$threads" --attest --warm-boot \
        --transcript "$WORK/tx_replay_t${threads}.txt" \
        --hostile replay --hostile-ppm 1000000 --tamper 1
    run reflect "$threads" --attest --warm-boot \
        --transcript "$WORK/tx_reflect_t${threads}.txt" \
        --hostile reflect --hostile-ppm 1000000
    # The compound stage deterministically costs one healthy node its
    # retry budget: its first challenge is corrupted mid-frame, the
    # byte-skip resync in the attestation trustlet's UART parser then has
    # to re-find an 'A' at a true frame boundary, and at 100% replay rate
    # the stale-frame companions keep the RX stream misaligned for the
    # remaining attempts. That is availability loss under an active MITM
    # — never false trust (the integrity check below) — and it is
    # bit-identical in the seed, so the gate pins the exact verdict.
    run_attacked all "$threads" --attest --warm-boot \
        --transcript "$WORK/tx_all_t${threads}.txt" \
        --corrupt-ppm 50000 --replay-ppm 1000000 --reflect-ppm 1000000 \
        --tamper 1
  done
  verdict corrupt "attestation: $NODES verified, 0 quarantined"
  verdict replay  "attestation: $((NODES - 1)) verified, 1 quarantined"
  verdict reflect "attestation: $NODES verified, 0 quarantined"
  verdict all     "attestation: $((NODES - 2)) verified, 2 quarantined"
  integrity replay
  integrity all
  fired corrupt corrupted
  fired replay replayed
  fired reflect reflected
  fired all corrupted
  for tag in corrupt replay reflect all; do
    transcripts_match "$tag"
    digests_match "$tag"
    echo "ci_fleet_scale: stress $tag ok"
  done
  echo "ci_fleet_scale: all checks passed"
  exit 0
fi

# --- smoke: attest / workload / hostile-reflect at $NODES nodes ----------
for threads in 1 8; do
  run attest "$threads" --attest --warm-boot \
      --transcript "$WORK/tx_attest_t${threads}.txt"
  run workload "$threads" --topology ring --quanta 64 --batch-quanta 4
  run hostile "$threads" --attest --warm-boot \
      --transcript "$WORK/tx_hostile_t${threads}.txt" \
      --hostile reflect --hostile-ppm 1000000
done

verdict attest "attestation: $NODES verified, 0 quarantined"
transcripts_match attest
digests_match attest
echo "ci_fleet_scale: attest ok"

digests_match workload
echo "ci_fleet_scale: workload ok"

verdict hostile "attestation: $NODES verified, 0 quarantined"
fired hostile reflected
transcripts_match hostile
digests_match hostile
echo "ci_fleet_scale: hostile ok"

echo "ci_fleet_scale: all checks passed"
