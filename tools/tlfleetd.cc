// Copyright 2026 The TrustLite Reproduction Authors.
//
// tlfleetd — fleet control-plane daemon (DESIGN.md §17, docs/FLEET.md).
//
//   tlfleetd run [guest.s] --nodes N [--seed S] [--threads T] [--epochs E]
//                [--quantum Q] [--batch-quanta K] [--warm-boot] [--tamper K]
//                [--config KEY=VAL]... [--scale-up K]
//                [--latency C] [--loss-ppm P] [--reorder-ppm P]
//                [--hostile corrupt|replay|reflect|all] [--hostile-ppm P]
//                [--corrupt-ppm P] [--replay-ppm P] [--reflect-ppm P]
//                [--idle-quanta Q] [--beacon-quanta K] [--phase-quanta Q]
//                [--halt-on-quarantine] [--status-json FILE] [--watch]
//                [--transcript FILE] [--quiet]
//
// Where tlfleet runs one attestation round and exits, tlfleetd owns the
// fleet across a whole operator session:
//
//   provision -> admission -> E re-attestation epochs -> config push ->
//   snapshot scale-up -> drain
//
// Every phase appends one JSON status epoch (--status-json writes them
// newline-delimited) and a --watch summary line. All verdicts, transcripts
// and the final fleet digest are bit-identical across --threads for a fixed
// seed; hostile-link modes and --halt-on-quarantine carry over from tlfleet
// unchanged. Star topology only: the control plane is hub-and-spoke by
// construction, and live scale-up cannot splice a ring.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/fleet/control.h"
#include "src/fleet/fleet.h"
#include "src/fleet/link.h"
#include "src/fleet/provision.h"
#include "src/harness/fleet_campaign.h"
#include "src/isa/assembler.h"

namespace trustlite {
namespace {

constexpr uint32_t kGuestOrigin = 0x0003'0000;

int Usage(bool help = false) {
  std::fprintf(
      help ? stdout : stderr,
      "usage:\n"
      "  tlfleetd run [guest.s] --nodes N [--seed S] [--threads T]\n"
      "               [--epochs E] [--quantum Q] [--batch-quanta K]\n"
      "               [--warm-boot] [--tamper K] [--config KEY=VAL]...\n"
      "               [--scale-up K] [--latency C] [--loss-ppm P]\n"
      "               [--reorder-ppm P] [--hostile MODE] [--hostile-ppm P]\n"
      "               [--corrupt-ppm P] [--replay-ppm P] [--reflect-ppm P]\n"
      "               [--idle-quanta Q] [--beacon-quanta K]\n"
      "               [--phase-quanta Q] [--halt-on-quarantine]\n"
      "               [--status-json FILE] [--watch] [--transcript FILE]\n"
      "               [--quiet]\n"
      "\n"
      "  lifecycle: provision -> attestation-gated admission -> E\n"
      "  re-attestation epochs -> config push (with --config) -> snapshot\n"
      "  scale-up (with --scale-up) -> drain (docs/FLEET.md)\n"
      "\n"
      "  --epochs E   periodic re-attestation epochs after admission\n"
      "               (default 3); each idles --idle-quanta quanta first\n"
      "  --config KEY=VAL  push this config entry to every admitted node\n"
      "               (repeatable; one CRC-framed 0xC6 push, digest-checked\n"
      "               acks, then a re-measuring attestation round)\n"
      "  --scale-up K  clone K new nodes from admitted sources by snapshot\n"
      "               restore + in-place re-key, then re-attest and admit\n"
      "  --beacon-quanta K  node health agents beacon every K quanta\n"
      "               (0 disables beacons; default 8)\n"
      "  --idle-quanta Q  idle quanta between epochs (default 32)\n"
      "  --phase-quanta Q  budget per phase before it fails closed\n"
      "               (default 4000)\n"
      "  --status-json FILE  write one JSON object per completed phase,\n"
      "               newline-delimited (stable schema: docs/FLEET.md)\n"
      "  --watch      print a one-line roster summary after every phase\n"
      "  --halt-on-quarantine  stop the session with an error as soon as\n"
      "               any phase quarantines a node\n"
      "  --transcript FILE  write the attestor + controller transcripts\n"
      "               (bit-identical across --threads for a fixed seed)\n");
  return help ? 0 : 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::string DigestHex(const Sha256Digest& digest) {
  std::string hex;
  char byte[4];
  for (uint8_t b : digest) {
    std::snprintf(byte, sizeof(byte), "%02x", b);
    hex += byte;
  }
  return hex;
}

struct Options {
  std::string guest;
  int nodes = 4;
  uint64_t seed = 1;
  int threads = 1;
  int epochs = 3;
  uint64_t quantum = 20'000;
  uint32_t batch_quanta = 1;
  bool warm_boot = false;
  int tamper = 0;
  std::vector<std::pair<std::string, std::string>> config_entries;
  int scale_up = 0;
  uint32_t latency = 1'000;
  uint32_t loss_ppm = 0;
  uint32_t reorder_ppm = 0;
  HostileMode hostile = HostileMode::kNone;
  uint32_t hostile_ppm = 150'000;
  uint32_t corrupt_ppm = 0;
  uint32_t replay_ppm = 0;
  uint32_t reflect_ppm = 0;
  uint64_t idle_quanta = 32;
  uint32_t beacon_quanta = 8;
  uint64_t phase_quanta = 4'000;
  bool halt_on_quarantine = false;
  std::string status_json;
  bool watch = false;
  std::string transcript;
  bool quiet = false;
};

bool ParseOptions(const std::vector<std::string>& args, Options* opt) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next_u64 = [&](uint64_t* out) {
      if (i + 1 >= args.size()) {
        return false;
      }
      *out = std::strtoull(args[++i].c_str(), nullptr, 0);
      return true;
    };
    uint64_t value = 0;
    if (arg == "--nodes" && next_u64(&value)) {
      opt->nodes = static_cast<int>(value);
    } else if (arg == "--seed" && next_u64(&value)) {
      opt->seed = value;
    } else if (arg == "--threads" && next_u64(&value)) {
      opt->threads = static_cast<int>(value);
    } else if (arg == "--epochs" && next_u64(&value)) {
      opt->epochs = static_cast<int>(value);
    } else if (arg == "--quantum" && next_u64(&value)) {
      opt->quantum = value;
    } else if (arg == "--batch-quanta" && next_u64(&value)) {
      opt->batch_quanta = static_cast<uint32_t>(value);
    } else if (arg == "--warm-boot") {
      opt->warm_boot = true;
    } else if (arg == "--tamper" && next_u64(&value)) {
      opt->tamper = static_cast<int>(value);
    } else if (arg == "--config" && i + 1 < args.size()) {
      const std::string& entry = args[++i];
      const size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "tlfleetd: --config needs KEY=VAL, got '%s'\n",
                     entry.c_str());
        return false;
      }
      opt->config_entries.emplace_back(entry.substr(0, eq),
                                       entry.substr(eq + 1));
    } else if (arg == "--scale-up" && next_u64(&value)) {
      opt->scale_up = static_cast<int>(value);
    } else if (arg == "--latency" && next_u64(&value)) {
      opt->latency = static_cast<uint32_t>(value);
    } else if (arg == "--loss-ppm" && next_u64(&value)) {
      opt->loss_ppm = static_cast<uint32_t>(value);
    } else if (arg == "--reorder-ppm" && next_u64(&value)) {
      opt->reorder_ppm = static_cast<uint32_t>(value);
    } else if (arg == "--hostile" && i + 1 < args.size()) {
      const std::string& name = args[++i];
      if (name == "corrupt") {
        opt->hostile = HostileMode::kCorrupt;
      } else if (name == "replay") {
        opt->hostile = HostileMode::kReplay;
      } else if (name == "reflect") {
        opt->hostile = HostileMode::kReflect;
      } else if (name == "all") {
        opt->hostile = HostileMode::kAll;
      } else {
        std::fprintf(stderr, "tlfleetd: unknown hostile mode '%s'\n",
                     name.c_str());
        return false;
      }
    } else if (arg == "--hostile-ppm" && next_u64(&value)) {
      opt->hostile_ppm = static_cast<uint32_t>(value);
    } else if (arg == "--corrupt-ppm" && next_u64(&value)) {
      opt->corrupt_ppm = static_cast<uint32_t>(value);
    } else if (arg == "--replay-ppm" && next_u64(&value)) {
      opt->replay_ppm = static_cast<uint32_t>(value);
    } else if (arg == "--reflect-ppm" && next_u64(&value)) {
      opt->reflect_ppm = static_cast<uint32_t>(value);
    } else if (arg == "--idle-quanta" && next_u64(&value)) {
      opt->idle_quanta = value;
    } else if (arg == "--beacon-quanta" && next_u64(&value)) {
      opt->beacon_quanta = static_cast<uint32_t>(value);
    } else if (arg == "--phase-quanta" && next_u64(&value)) {
      opt->phase_quanta = value;
    } else if (arg == "--halt-on-quarantine") {
      opt->halt_on_quarantine = true;
    } else if (arg == "--status-json" && i + 1 < args.size()) {
      opt->status_json = args[++i];
    } else if (arg == "--watch") {
      opt->watch = true;
    } else if (arg == "--transcript" && i + 1 < args.size()) {
      opt->transcript = args[++i];
    } else if (arg == "--quiet") {
      opt->quiet = true;
    } else if (arg.rfind("--", 0) != 0 && opt->guest.empty()) {
      opt->guest = arg;
    } else {
      std::fprintf(stderr, "tlfleetd: bad argument '%s'\n", arg.c_str());
      return false;
    }
  }
  if (opt->nodes < 1 || opt->quantum == 0) {
    std::fprintf(stderr, "tlfleetd: need --nodes >= 1 and --quantum > 0\n");
    return false;
  }
  if (opt->epochs < 0 || opt->scale_up < 0) {
    std::fprintf(stderr, "tlfleetd: --epochs and --scale-up must be >= 0\n");
    return false;
  }
  if (opt->phase_quanta == 0) {
    std::fprintf(stderr, "tlfleetd: --phase-quanta must be > 0\n");
    return false;
  }
  return true;
}

int CmdRun(const std::vector<std::string>& args) {
  Options opt;
  if (!ParseOptions(args, &opt)) {
    return 2;
  }

  // Optional guest payload, measured into every node's FW trustlet.
  std::vector<uint8_t> guest_image;
  if (!opt.guest.empty()) {
    std::string source;
    if (!ReadFile(opt.guest, &source)) {
      std::fprintf(stderr, "tlfleetd: cannot read %s\n", opt.guest.c_str());
      return 1;
    }
    Result<AsmOutput> guest = Assemble(source, kGuestOrigin);
    if (!guest.ok()) {
      std::fprintf(stderr, "tlfleetd: %s\n",
                   guest.status().ToString().c_str());
      return 1;
    }
    uint32_t base = 0;
    guest_image = guest->Flatten(&base);
  }

  FleetConfig config;
  config.nodes = opt.nodes;
  config.topology = Topology::kStar;
  config.seed = opt.seed;
  config.threads = opt.threads;
  config.quantum = opt.quantum;
  config.harvest_batch_quanta = opt.batch_quanta;
  config.link.latency_cycles = opt.latency;
  config.link.loss_ppm = opt.loss_ppm;
  config.link.reorder_ppm = opt.reorder_ppm;
  config.link = ApplyHostileMode(config.link, opt.hostile, opt.hostile_ppm);
  if (opt.corrupt_ppm != 0) {
    config.link.corrupt_ppm = opt.corrupt_ppm;
  }
  if (opt.replay_ppm != 0) {
    config.link.replay_ppm = opt.replay_ppm;
  }
  if (opt.reflect_ppm != 0) {
    config.link.reflect_ppm = opt.reflect_ppm;
  }
  Fleet fleet(config);

  FleetProvisionConfig prov;
  prov.payload = guest_image;
  prov.tamper_count = opt.tamper;
  prov.warm_boot = opt.warm_boot;
  Result<std::vector<NodeProvision>> provisioned =
      ProvisionAttestationFleet(&fleet, prov);
  if (!provisioned.ok()) {
    std::fprintf(stderr, "tlfleetd: provisioning failed: %s\n",
                 provisioned.status().ToString().c_str());
    return 1;
  }

  FleetdPolicy policy;
  policy.phase_quanta = opt.phase_quanta;
  policy.epoch_idle_quanta = opt.idle_quanta;
  policy.beacon_every_quanta = opt.beacon_quanta;
  policy.halt_on_quarantine = opt.halt_on_quarantine;
  FleetController controller(&fleet, std::move(*provisioned), policy);

  if (!opt.quiet) {
    std::printf("tlfleetd: %d node(s), seed %llu, %d thread(s), quantum "
                "%llu, %s-provisioned\n",
                fleet.num_nodes(), static_cast<unsigned long long>(opt.seed),
                opt.threads, static_cast<unsigned long long>(opt.quantum),
                opt.warm_boot ? "warm" : "cold");
  }

  auto phase_note = [&](const char* phase, const Status& status) {
    if (!status.ok()) {
      std::fprintf(stderr, "tlfleetd: %s: %s\n", phase,
                   status.ToString().c_str());
    }
    if (opt.watch) {
      std::printf("%s\n", controller.WatchSummary().c_str());
    }
    return status.ok();
  };

  // Lifecycle. A failing phase ends the session (the roster is no longer
  // what the operator asked for); status epochs and transcripts for the
  // phases that did run are still written below.
  bool ok = phase_note("admission", controller.RunAdmission());
  for (int epoch = 0; ok && epoch < opt.epochs; ++epoch) {
    ok = phase_note("reattest", controller.RunReattestEpoch());
  }
  if (ok && !opt.config_entries.empty()) {
    ok = phase_note("config-push", controller.PushConfig(opt.config_entries));
  }
  if (ok && opt.scale_up > 0) {
    ok = phase_note("scale-up", controller.ScaleUp(opt.scale_up));
  }
  if (ok) {
    controller.Drain();
    if (opt.watch) {
      std::printf("%s\n", controller.WatchSummary().c_str());
    }
  }

  if (!opt.quiet) {
    std::printf("session: %s — epochs=%d nodes=%d admitted=%zu "
                "quarantined=%zu gen=%u (%llu quanta, %llu cycles)\n",
                ok ? "complete" : "FAILED", controller.epochs(),
                controller.num_nodes(), controller.Admitted().size(),
                controller.Quarantined().size(),
                controller.config_generation(),
                static_cast<unsigned long long>(controller.quanta_run()),
                static_cast<unsigned long long>(fleet.now()));
  }
  std::printf("fleet-digest: %s\n", DigestHex(fleet.FleetDigest()).c_str());

  if (!opt.status_json.empty()) {
    std::ofstream out(opt.status_json, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "tlfleetd: cannot write %s\n",
                   opt.status_json.c_str());
      return 1;
    }
    for (const std::string& epoch : controller.status_epochs()) {
      out << epoch << '\n';
    }
    if (!opt.quiet) {
      std::printf("status-json: wrote %s (%zu epoch(s))\n",
                  opt.status_json.c_str(), controller.status_epochs().size());
    }
  }

  if (!opt.transcript.empty()) {
    std::ofstream out(opt.transcript, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "tlfleetd: cannot write %s\n",
                   opt.transcript.c_str());
      return 1;
    }
    std::string full = controller.attestor().transcript();
    full += "--- fleetd ---\n";
    full += controller.transcript();
    out << full;
    if (!opt.quiet) {
      std::printf("transcript: wrote %s (%zu bytes)\n",
                  opt.transcript.c_str(), full.size());
    }
  }

  return ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    return Usage(/*help=*/true);
  }
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "run") {
    return CmdRun(args);
  }
  return Usage();
}

}  // namespace
}  // namespace trustlite

int main(int argc, char** argv) { return trustlite::Main(argc, argv); }
