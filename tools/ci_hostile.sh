#!/usr/bin/env bash
# Hostile-link attestation gate (DESIGN.md §13): runs the attested fleet
# under every active link-attack mode — seeded corruption, stale-report
# replay, challenge reflection, and all three at once — at --threads 1 and
# --threads 8, and enforces:
#  * the verdicts match the tamper plan under every attack,
#  * the attack actually fired (per-mode hostile counter nonzero),
#  * the verifier transcript and the fleet digest are bit-identical across
#    thread counts (the determinism headline survives an active adversary).
#
# Replay needs at least two captured frames on a link before a stale copy
# can be re-delivered, so the replay/all stages tamper one node: its retry
# traffic populates the adversary's capture history.
#
# usage: tools/ci_hostile.sh <tlfleet-binary> [work-dir]
set -euo pipefail

TLFLEET="${1:?usage: ci_hostile.sh <tlfleet-binary> [work-dir]}"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"

fail() { echo "ci_hostile: FAIL: $*" >&2; exit 1; }

# run <tag> <threads> <extra tlfleet args...>
run() {
  local tag="$1" threads="$2"
  shift 2
  "$TLFLEET" run --attest --nodes 4 --seed 7 --threads "$threads" \
      --stats --transcript "$WORK/tx_${tag}_t${threads}.txt" "$@" \
      > "$WORK/out_${tag}_t${threads}.txt" \
      || fail "$tag --threads $threads exited nonzero"
}

# check <tag> <verdict regex> <counter name>
check() {
  local tag="$1" verdict="$2" counter="$3"
  local out="$WORK/out_${tag}_t1.txt"
  grep -q "$verdict" "$out" || fail "$tag: verdict mismatch (want: $verdict)"
  local count
  count="$(grep -o "$counter [0-9]*" "$out" | head -1 | cut -d' ' -f2)"
  [ "${count:-0}" -gt 0 ] || fail "$tag: attack never fired ($counter 0)"
  cmp -s "$WORK/tx_${tag}_t1.txt" "$WORK/tx_${tag}_t8.txt" \
      || fail "$tag: transcripts differ between --threads 1 and 8"
  [ "$(grep '^fleet-digest:' "$out")" = \
    "$(grep '^fleet-digest:' "$WORK/out_${tag}_t8.txt")" ] \
      || fail "$tag: fleet digests differ between --threads 1 and 8"
  echo "ci_hostile: $tag ok"
}

for threads in 1 8; do
  run corrupt "$threads" --hostile corrupt --hostile-ppm 150000
  run replay  "$threads" --hostile replay --hostile-ppm 1000000 --tamper 1
  run reflect "$threads" --hostile reflect --hostile-ppm 1000000
  run all     "$threads" --corrupt-ppm 150000 --replay-ppm 1000000 \
              --reflect-ppm 1000000 --tamper 1
done

check corrupt "attestation: 4 verified, 0 quarantined" corrupted
check replay  "attestation: 3 verified, 1 quarantined" replayed
check reflect "attestation: 4 verified, 0 quarantined" reflected
check all     "attestation: 3 verified, 1 quarantined" replayed

echo "ci_hostile: all checks passed"
